/**
 * @file
 * Extension experiments beyond the paper's evaluation:
 *
 *  1. The full model spectrum the literature discusses — linear
 *     (NN^T), multi-proxy linear (kNN^T), spline (SPL^T, per Lee &
 *     Brooks), neural network (MLP^T) — plus the GA-kNN prior art,
 *     under the paper's family cross-validation.
 *  2. Top-n shortlist robustness: the deficiency of buying the best
 *     *actual* machine among the predicted top-n, for n = 1..5 — how
 *     much a short audition list mitigates each method's top-1
 *     failures.
 *  3. PCA structure of the two data spaces (machine performance space
 *     and benchmark characteristic space), quantifying the effective
 *     dimensionality the methods exploit.
 */

#include <iostream>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/bench_options.h"
#include "experiments/family_cv.h"
#include "ml/pca.h"
#include "stats/error_metrics.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

int
main(int argc, char **argv)
{
    util::ArgParser args("bench_ext_models");
    args.addOption("seed", "dataset generator seed", "2011");
    args.addOption("epochs", "MLP training epochs", "500");
    args.addOption("threads", "worker threads (0 = all hardware threads)",
                   "0");
    args.addFlag("verbose", "print progress");
    experiments::addBenchOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    if (args.getFlag("verbose"))
        util::setLogLevel(util::LogLevel::Info);
    experiments::applyObservabilityOptions(args);

    const experiments::BenchDataset data = experiments::loadDatasetOption(
        args, static_cast<std::uint64_t>(args.getLong("seed")));
    const dataset::PerfDatabase &db = data.db;
    const linalg::Matrix &chars = data.characteristics;

    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs =
        static_cast<std::size_t>(args.getLong("epochs"));
    config.parallel.threads =
        static_cast<std::size_t>(args.getLong("threads"));
    const experiments::SplitEvaluator evaluator(db, chars, config);
    const experiments::FamilyCrossValidation cv(evaluator);

    std::cout << "== Extension 1: the full model spectrum under family "
                 "cross-validation ==\n\n";
    const auto results = cv.run(experiments::extendedMethods());

    util::TablePrinter spectrum(
        {"method", "rank avg", "rank worst", "top-1 avg %",
         "top-1 worst %", "mean err %"});
    for (experiments::Method m : experiments::extendedMethods()) {
        const auto rank = results.rankAggregate(m);
        const auto top1 = results.top1Aggregate(m);
        const auto err = results.meanErrorAggregate(m);
        spectrum.addRow({experiments::methodName(m),
                         util::formatFixed(rank.average, 3),
                         util::formatFixed(rank.worst, 3),
                         util::formatFixed(top1.average, 2),
                         util::formatFixed(top1.worst, 2),
                         util::formatFixed(err.average, 2)});
    }
    spectrum.print(std::cout);

    // ---- Extension 2: top-n shortlist robustness -----------------
    std::cout << "\n== Extension 2: worst-case deficiency of buying "
                 "the best machine in the predicted top-n ==\n\n";
    std::vector<std::string> header = {"method"};
    for (std::size_t n = 1; n <= 5; ++n)
        header.push_back("n=" + std::to_string(n));
    util::TablePrinter shortlist(header);

    for (experiments::Method m : experiments::extendedMethods()) {
        std::vector<std::string> row = {experiments::methodName(m)};
        for (std::size_t n = 1; n <= 5; ++n) {
            double worst = 0.0;
            for (const std::string &bench : results.benchmarks) {
                // Pool the full-study prediction per benchmark.
                std::vector<double> actual;
                std::vector<double> predicted;
                for (const auto &cell : results.cells.at(m)) {
                    if (cell.task.benchmark != bench)
                        continue;
                    experiments::appendObservedPairs(cell.task, actual,
                                                     predicted);
                }
                worst = std::max(worst, stats::topNDeficiencyPercent(
                                            actual, predicted, n));
            }
            row.push_back(util::formatFixed(worst, 1));
        }
        shortlist.addRow(row);
    }
    shortlist.print(std::cout);
    std::cout << "\n(An n-machine audition list caps the damage of a "
                 "mispredicted top-1: even the\nGA-kNN outlier "
                 "failures vanish once a handful of finalists are "
                 "benchmarked\nfor real.)\n";

    // ---- Extension 3: PCA structure of the data spaces ------------
    std::cout << "\n== Extension 3: effective dimensionality of the "
                 "data (PCA) ==\n\n";
    // Machine space: rows = machines, features = log2 benchmark scores.
    linalg::Matrix machine_space(db.machineCount(),
                                 db.benchmarkCount());
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        const auto scores = db.machineScores(m);
        for (std::size_t b = 0; b < scores.size(); ++b)
            machine_space(m, b) = std::log2(scores[b]);
    }
    ml::Pca machine_pca{};
    machine_pca.fit(machine_space);

    ml::Pca char_pca{};
    char_pca.fit(chars);

    util::TablePrinter pca_table({"space", "PC1 %", "PC2 %", "PC3 %",
                                  "dims for 95%"});
    auto pca_row = [&](const std::string &label, const ml::Pca &pca) {
        const auto ratios = pca.explainedVarianceRatio();
        pca_table.addRow(
            {label, util::formatFixed(ratios[0] * 100.0, 1),
             util::formatFixed(ratios[1] * 100.0, 1),
             util::formatFixed(ratios[2] * 100.0, 1),
             std::to_string(pca.componentsForVariance(0.95))});
    };
    pca_row("machines x log scores", machine_pca);
    pca_row("benchmarks x characteristics", char_pca);
    pca_table.print(std::cout);
    std::cout
        << "\n(The machine space is dominated by one overall-speed "
           "component plus a handful of\narchitectural axes — the "
           "low-rank structure that makes a few predictive machines\n"
           "sufficient, Section 6.4's finding.)\n";
    return 0;
}
