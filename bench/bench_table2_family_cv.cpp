/**
 * @file
 * Reproduces Table 2 of the paper: rank correlation, top-1 error and
 * mean error of NN^T, MLP^T and GA-10NN under processor-family
 * cross-validation on the 117-machine database. Prints the paper's
 * reported numbers next to our measured ones.
 */

#include <iostream>

#include "dataset/mica.h"
#include "obs/clock.h"
#include "dataset/synthetic_spec.h"
#include "experiments/bench_options.h"
#include "experiments/family_cv.h"
#include "experiments/paper_reference.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

int
main(int argc, char **argv)
{
    util::ArgParser args("bench_table2_family_cv");
    args.addOption("seed", "dataset generator seed", "2011");
    args.addOption("epochs", "MLP training epochs", "500");
    args.addOption("threads", "worker threads (0 = all hardware threads)",
                   "0");
    args.addFlag("verbose", "print per-family progress");
    experiments::addBenchOptions(args);
    if (!args.parse(argc, argv))
        return 0;
    if (args.getFlag("verbose"))
        util::setLogLevel(util::LogLevel::Info);
    experiments::applyObservabilityOptions(args);

    const experiments::BenchDataset data = experiments::loadDatasetOption(
        args, static_cast<std::uint64_t>(args.getLong("seed")));
    const dataset::PerfDatabase &db = data.db;
    const linalg::Matrix &chars = data.characteristics;

    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs =
        static_cast<std::size_t>(args.getLong("epochs"));
    config.parallel.threads =
        static_cast<std::size_t>(args.getLong("threads"));
    const auto cache = experiments::applyModelCacheOption(args, config);
    const experiments::SplitEvaluator evaluator(db, chars, config);
    const experiments::FamilyCrossValidation cv(evaluator);

    std::cout << "== Table 2: processor-family cross-validation ==\n"
              << "(measured on the synthetic SPEC database; paper values "
                 "in brackets refer to the\n real spec.org data, so only "
                 "the qualitative ordering is expected to match)\n\n";

    util::BenchJsonWriter json("table2_family_cv");
    experiments::applySimdOption(args, &json);
    const auto t0 = obs::monotonicNow();
    const auto results = cv.run(experiments::allMethods());
    json.addTimed("family_cv", t0,
                  {{"threads", args.get("threads")},
                   {"epochs", args.get("epochs")},
                   {"model_cache", cache ? "on" : "off"}});

    util::TablePrinter table({"metric", "NN^T", "MLP^T", "GA-10NN"});
    const auto &ref = experiments::paper::table2();

    auto row = [&](const std::string &label, auto measured_fn,
                   auto ref_fn, int decimals) {
        std::vector<std::string> cells = {label};
        for (experiments::Method m : experiments::allMethods()) {
            const experiments::MetricAggregate a = measured_fn(m);
            const auto &r = ref_fn(ref.at(m));
            cells.push_back(
                experiments::formatAggregate(a, decimals) + "  [paper " +
                util::formatFixed(r.average, decimals) + " (" +
                util::formatFixed(r.worst, decimals) + ")]");
        }
        table.addRow(cells);
    };

    row("Rank correlation",
        [&](experiments::Method m) { return results.rankAggregate(m); },
        [](const experiments::paper::Table2Column &c) -> const auto & {
            return c.rankCorrelation;
        },
        2);
    row("Top-1 error (%)",
        [&](experiments::Method m) { return results.top1Aggregate(m); },
        [](const experiments::paper::Table2Column &c) -> const auto & {
            return c.top1Error;
        },
        2);
    row("Mean error (%)",
        [&](experiments::Method m) {
            return results.meanErrorAggregate(m);
        },
        [](const experiments::paper::Table2Column &c) -> const auto & {
            return c.meanError;
        },
        2);

    table.print(std::cout);
    std::cout << "\nTarget families evaluated: "
              << results.families.size() << "\n";

    experiments::reportModelCacheStats(cache.get(), std::cout, &json);
    json.writeTo(args.get("json"));
    experiments::writeObservabilityOutputs(args);
    return 0;
}
