/**
 * @file
 * Google-benchmark microbenchmarks of the computational kernels the
 * reproduction is built on: simple/multiple regression fits, Spearman
 * rank correlation, MLP training and prediction, GA-kNN distance
 * evaluation, k-medoids clustering, the full NN^T predictor, the
 * cache-blocked matrix kernels against a naive reference, and the
 * parallel split evaluator at several thread counts.
 *
 * Also benchmarks every SIMD kernel-table entry once per available
 * dispatch tier ("BM_Kernel<name>/scalar", ".../avx2", ".../avx512"),
 * so the per-kernel speedup of each vector tier can be read off one
 * report. The dispatch tier the rest of the process uses and the CPU
 * feature flags are recorded as report-level context.
 *
 * Pass --benchmark_format=json for machine-readable output, or
 * --json <path> to write the google-benchmark JSON report to a file
 * (shorthand for --benchmark_out=<path> --benchmark_out_format=json),
 * and --simd scalar|avx2|avx512 to pin the dispatch tier the
 * non-kernel benchmarks run at.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/ga_knn.h"
#include "core/linear_transposition.h"
#include "core/mlp_transposition.h"
#include "core/transposition.h"
#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/harness.h"
#include "legacy_mlp.h"
#include "ml/kmedoids.h"
#include "ml/pca.h"
#include "ml/mlp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "stats/bootstrap.h"
#include "stats/correlation.h"
#include "stats/kendall.h"
#include "stats/spline.h"
#include "stats/regression.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace dtrank;

namespace
{

std::vector<double>
randomVector(std::size_t n, util::Rng &rng)
{
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(1.0, 100.0);
    return v;
}

const dataset::PerfDatabase &
paperDb()
{
    static const dataset::PerfDatabase db = dataset::makePaperDataset();
    return db;
}

core::TranspositionProblem
xeonProblem()
{
    const dataset::PerfDatabase &db = paperDb();
    const auto target = db.machineIndicesByFamily("Intel Xeon");
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (db.machine(m).family != "Intel Xeon")
            predictive.push_back(m);
    return core::makeProblemFromSplit(db, predictive, target,
                                      "libquantum");
}

void
BM_SimpleLinearRegression(benchmark::State &state)
{
    util::Rng rng(1);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto x = randomVector(n, rng);
    const auto y = randomVector(n, rng);
    for (auto _ : state) {
        stats::SimpleLinearRegression fit(x, y);
        benchmark::DoNotOptimize(fit.slope());
    }
}
BENCHMARK(BM_SimpleLinearRegression)->Arg(28)->Arg(280);

void
BM_Spearman(benchmark::State &state)
{
    util::Rng rng(2);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto x = randomVector(n, rng);
    const auto y = randomVector(n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::spearman(x, y));
    }
}
BENCHMARK(BM_Spearman)->Arg(39)->Arg(117);

void
BM_MultipleRegression(benchmark::State &state)
{
    util::Rng rng(3);
    const std::size_t rows = 100;
    const auto cols = static_cast<std::size_t>(state.range(0));
    linalg::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(0.0, 10.0);
    const auto y = randomVector(rows, rng);
    for (auto _ : state) {
        stats::MultipleLinearRegression fit(x, y);
        benchmark::DoNotOptimize(fit.rSquared());
    }
}
BENCHMARK(BM_MultipleRegression)->Arg(8)->Arg(28);

void
BM_MlpTrainEpochs(benchmark::State &state)
{
    util::Rng rng(4);
    const std::size_t rows = 100;
    const std::size_t cols = 28;
    linalg::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(1.0, 50.0);
    const auto y = randomVector(rows, rng);
    ml::MlpConfig config;
    config.epochs = static_cast<std::size_t>(state.range(0));
    ml::MlpWorkspace workspace;
    for (auto _ : state) {
        ml::Mlp net(config);
        net.fit(x, y, workspace);
        benchmark::DoNotOptimize(net.trainingMse());
    }
}
BENCHMARK(BM_MlpTrainEpochs)->Arg(10)->Arg(50);

/**
 * The PR 1 baseline the workspace engine is measured against:
 * bench/legacy_mlp.{h,cpp} carry the pre-workspace Mlp implementation
 * verbatim, compiled as its own translation unit exactly as it used to
 * be. Every sample of every epoch heap-allocates its input row, the
 * per-layer forward outputs and the per-layer delta vectors, and every
 * unit activation is an out-of-line call. Numerically identical to
 * Mlp::fit for the same seed at this benchmark's layer widths (the
 * canonical lane-blocked reduction degenerates to the legacy
 * sequential sum below 16 terms); only the memory and call behaviour
 * differ.
 */
void
BM_MlpTrainEpochsLegacy(benchmark::State &state)
{
    util::Rng rng(4);
    const std::size_t rows = 100;
    const std::size_t cols = 28;
    linalg::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(1.0, 50.0);
    const auto y = randomVector(rows, rng);
    bench_legacy::MlpConfig config;
    config.epochs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        bench_legacy::Mlp net(config);
        net.fit(x, y);
        benchmark::DoNotOptimize(net.trainingMse());
    }
}
BENCHMARK(BM_MlpTrainEpochsLegacy)->Arg(10)->Arg(50);

/**
 * The GEMM-backed minibatch engine at the exact shape of
 * BM_MlpTrainEpochs (100 x 28, WEKA-automatic hidden layer) trained
 * full-batch: the forward pass is one whole-batch mlpBatchNets call
 * per layer, the gradient sums one mlpGradAccum call, and the
 * momentum/weight read-modify-write traffic is paid once per epoch
 * instead of once per sample. The speedup of the minibatch
 * formulation is BM_MlpTrainEpochs / BM_MlpTrainEpochsMinibatch at the
 * same Arg (a different deterministic trajectory than per-sample SGD,
 * so the comparison is throughput, not bit-identity).
 */
void
BM_MlpTrainEpochsMinibatch(benchmark::State &state)
{
    util::Rng rng(4);
    const std::size_t rows = 100;
    const std::size_t cols = 28;
    linalg::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(1.0, 50.0);
    const auto y = randomVector(rows, rng);
    ml::MlpConfig config;
    config.epochs = static_cast<std::size_t>(state.range(0));
    config.batchSize = 0; // full batch
    ml::MlpWorkspace workspace;
    for (auto _ : state) {
        ml::Mlp net(config);
        net.fit(x, y, workspace);
        benchmark::DoNotOptimize(net.trainingMse());
    }
}
BENCHMARK(BM_MlpTrainEpochsMinibatch)->Arg(10)->Arg(50);

void
BM_MlpPredict(benchmark::State &state)
{
    util::Rng rng(5);
    const std::size_t rows = 50;
    const std::size_t cols = 28;
    linalg::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(1.0, 50.0);
    const auto y = randomVector(rows, rng);
    ml::MlpConfig config;
    config.epochs = 20;
    ml::Mlp net(config);
    net.fit(x, y);
    const auto query = randomVector(cols, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.predict(query));
    }
}
BENCHMARK(BM_MlpPredict);

void
BM_LinearTransposition(benchmark::State &state)
{
    const core::TranspositionProblem problem = xeonProblem();
    for (auto _ : state) {
        core::LinearTransposition predictor;
        benchmark::DoNotOptimize(predictor.predict(problem));
    }
}
BENCHMARK(BM_LinearTransposition);

void
BM_GaKnnTraining(benchmark::State &state)
{
    const dataset::PerfDatabase &db = paperDb();
    const linalg::Matrix chars =
        dataset::MicaGenerator().generateForCatalog();
    baseline::GaKnnConfig config;
    config.ga.populationSize = 20;
    config.ga.generations =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        baseline::GaKnnModel model(config);
        model.train(chars, db.scores());
        benchmark::DoNotOptimize(model.trainingFitness());
    }
}
BENCHMARK(BM_GaKnnTraining)->Arg(2)->Arg(5);

void
BM_KMedoids(benchmark::State &state)
{
    const dataset::PerfDatabase &db = paperDb();
    std::vector<std::size_t> machines(db.machineCount());
    for (std::size_t m = 0; m < machines.size(); ++m)
        machines[m] = m;
    std::vector<std::vector<double>> points;
    for (std::size_t m = 0; m < machines.size(); ++m)
        points.push_back(db.machineScores(m));
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    for (auto _ : state) {
        util::Rng rng(7);
        benchmark::DoNotOptimize(
            clusterer.cluster(points,
                              static_cast<std::size_t>(state.range(0)),
                              metric, rng));
    }
}
BENCHMARK(BM_KMedoids)->Arg(4)->Arg(10);

void
BM_SplineFit(benchmark::State &state)
{
    util::Rng rng(8);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto x = randomVector(n, rng);
    const auto y = randomVector(n, rng);
    for (auto _ : state) {
        stats::SplineRegression fit(x, y, 4);
        benchmark::DoNotOptimize(fit.rSquared());
    }
}
BENCHMARK(BM_SplineFit)->Arg(28)->Arg(280);

void
BM_KendallTau(benchmark::State &state)
{
    util::Rng rng(9);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto x = randomVector(n, rng);
    const auto y = randomVector(n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::kendallTau(x, y));
    }
}
BENCHMARK(BM_KendallTau)->Arg(39)->Arg(117);

void
BM_BootstrapSpearman(benchmark::State &state)
{
    util::Rng rng(10);
    const auto x = randomVector(100, rng);
    const auto y = randomVector(100, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stats::bootstrapSpearman(x, y, 0.95,
                                     static_cast<std::size_t>(
                                         state.range(0))));
    }
}
BENCHMARK(BM_BootstrapSpearman)->Arg(100)->Arg(1000);

void
BM_PcaFit(benchmark::State &state)
{
    util::Rng rng(11);
    const auto dims = static_cast<std::size_t>(state.range(0));
    linalg::Matrix x(117, dims);
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < dims; ++c)
            x(r, c) = rng.uniform(0.0, 10.0);
    for (auto _ : state) {
        ml::Pca pca{};
        pca.fit(x);
        benchmark::DoNotOptimize(pca.explainedVariance());
    }
}
BENCHMARK(BM_PcaFit)->Arg(12)->Arg(29);

void
BM_SyntheticDatasetGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(dataset::makePaperDataset(42));
    }
}
BENCHMARK(BM_SyntheticDatasetGeneration);

linalg::Matrix
randomMatrix(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    linalg::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniform(-1.0, 1.0);
    return m;
}

/** Textbook i/j/k multiply — the baseline the blocked kernel replaced. */
linalg::Matrix
naiveMultiply(const linalg::Matrix &a, const linalg::Matrix &b)
{
    linalg::Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k)
                sum += a(i, k) * b(k, j);
            out(i, j) = sum;
        }
    return out;
}

void
BM_MatrixMultiplyNaive(benchmark::State &state)
{
    util::Rng rng(12);
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Matrix a = randomMatrix(n, n, rng);
    const linalg::Matrix b = randomMatrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(naiveMultiply(a, b));
    }
}
BENCHMARK(BM_MatrixMultiplyNaive)->Arg(64)->Arg(256);

void
BM_MatrixMultiplyBlocked(benchmark::State &state)
{
    util::Rng rng(12);
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Matrix a = randomMatrix(n, n, rng);
    const linalg::Matrix b = randomMatrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.multiply(b));
    }
}
BENCHMARK(BM_MatrixMultiplyBlocked)->Arg(64)->Arg(256);

void
BM_MatrixMultiplyTransposed(benchmark::State &state)
{
    util::Rng rng(13);
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Matrix a = randomMatrix(n, n, rng);
    const linalg::Matrix b = randomMatrix(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.multiplyTransposed(b));
    }
}
BENCHMARK(BM_MatrixMultiplyTransposed)->Arg(64)->Arg(256);

/**
 * One family-CV split through the full method suite; Arg is the worker
 * thread count (1 = serial), so the parallel speedup can be read off a
 * single JSON report.
 */
void
BM_EvaluateSplit(benchmark::State &state)
{
    const dataset::PerfDatabase &db = paperDb();
    const linalg::Matrix chars =
        dataset::MicaGenerator().generateForCatalog();
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 30;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 3;
    config.parallel.threads = static_cast<std::size_t>(state.range(0));
    const experiments::SplitEvaluator evaluator(db, chars, config);

    const auto target = db.machineIndicesByFamily("Intel Xeon");
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (db.machine(m).family != "Intel Xeon")
            predictive.push_back(m);

    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluator.evaluateSplit(
            predictive, target, experiments::extendedMethods()));
    }
}
BENCHMARK(BM_EvaluateSplit)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * The same split with the trained-model cache installed. The cache
 * persists across iterations, so after the first (miss-dominated)
 * iteration the loop measures the hit path; hit/miss totals are
 * reported as counters.
 */
void
BM_EvaluateSplitCached(benchmark::State &state)
{
    const dataset::PerfDatabase &db = paperDb();
    const linalg::Matrix chars =
        dataset::MicaGenerator().generateForCatalog();
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 30;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 3;
    config.parallel.threads = static_cast<std::size_t>(state.range(0));
    config.modelCache =
        std::make_shared<experiments::TrainedModelCache>();
    const experiments::SplitEvaluator evaluator(db, chars, config);

    const auto target = db.machineIndicesByFamily("Intel Xeon");
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (db.machine(m).family != "Intel Xeon")
            predictive.push_back(m);

    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluator.evaluateSplit(
            predictive, target, experiments::extendedMethods()));
    }
    const auto stats = config.modelCache->stats();
    state.counters["cache_hits"] =
        static_cast<double>(stats.hits);
    state.counters["cache_misses"] =
        static_cast<double>(stats.misses);
}
BENCHMARK(BM_EvaluateSplitCached)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Observability primitives: the per-event cost instrumented code pays.
// The acceptance bar is that instrumentation stays in the noise of the
// protocol benches; these pin the primitive costs directly.

void
BM_ObsCounterInc(benchmark::State &state)
{
    obs::Counter &counter = obs::MetricsRegistry::global().counter(
        "dtrank_bench_obs_counter_total");
    for (auto _ : state) {
        counter.inc();
    }
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterInc);

void
BM_ObsHistogramObserve(benchmark::State &state)
{
    obs::Histogram &hist = obs::MetricsRegistry::global().histogram(
        "dtrank_bench_obs_seconds", obs::defaultLatencyBounds());
    double v = 1e-7;
    for (auto _ : state) {
        hist.observe(v);
        v = v < 1.0 ? v * 1.7 : 1e-7;
    }
    benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_ObsHistogramObserve);

/** A span when tracing is off: one relaxed load, no allocation. */
void
BM_ObsSpanDisabled(benchmark::State &state)
{
    obs::TraceCollector::global().disable();
    for (auto _ : state) {
        obs::TraceSpan span("bench_span", "bench");
        benchmark::DoNotOptimize(span.active());
    }
}
BENCHMARK(BM_ObsSpanDisabled);

/** The full span lifecycle with the collector recording. */
void
BM_ObsSpanEnabled(benchmark::State &state)
{
    obs::TraceCollector &collector = obs::TraceCollector::global();
    collector.enable();
    for (auto _ : state) {
        obs::TraceSpan span("bench_span", "bench");
        benchmark::DoNotOptimize(span.active());
    }
    collector.disable();
    collector.clear();
}
BENCHMARK(BM_ObsSpanEnabled);

/**
 * Work-stealing scheduler under a deliberately unbalanced load: every
 * 8th task is two orders of magnitude bigger, so the round-robin deal
 * drains most deques early and the steady state exercises the steal
 * path. Arg is the worker count; compare against Arg(1) for the
 * scheduling overhead and scaling.
 */
void
BM_ThreadPoolUnbalanced(benchmark::State &state)
{
    const auto workers = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        util::ThreadPool pool(workers);
        util::TaskGroup group(pool);
        for (std::size_t i = 0; i < 256; ++i)
            group.run([i] {
                volatile double sink = 0.0;
                const int spins = i % 8 == 0 ? 20000 : 200;
                for (int s = 0; s < spins; ++s)
                    sink = sink + 1.0;
            });
        group.wait();
    }
}
BENCHMARK(BM_ThreadPoolUnbalanced)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Per-kernel tier benchmarks: each operates directly on one kernel
// table (scalar, avx2 or avx512), bypassing dispatch, so the
// registrations of a kernel differ only in the code executed. A vector
// tier's variants are registered at startup only when the tier is
// compiled in and the CPU reports the feature.

/** Kernel table per tier index: 0 scalar, 1 avx2, 2 avx512. */
const simd::KernelTable &
kernelTable(int tier)
{
    if (tier == 2)
        return *simd::avx512Kernels();
    if (tier == 1)
        return *simd::avx2Kernels();
    return simd::scalarKernels();
}

void
BM_KernelDot(benchmark::State &state, int tier)
{
    util::Rng rng(20);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = randomVector(n, rng);
    const auto b = randomVector(n, rng);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kt.dot(a.data(), b.data(), n));
    }
}

void
BM_KernelAxpy(benchmark::State &state, int tier)
{
    util::Rng rng(21);
    const auto n = static_cast<std::size_t>(state.range(0));
    auto out = randomVector(n, rng);
    const auto b = randomVector(n, rng);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        kt.axpy(out.data(), b.data(), 1.0000001, n);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
}

void
BM_KernelSquaredDistance(benchmark::State &state, int tier)
{
    util::Rng rng(22);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = randomVector(n, rng);
    const auto b = randomVector(n, rng);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kt.squaredDistance(a.data(), b.data(), n));
    }
}

void
BM_KernelGemmMicro(benchmark::State &state, int tier)
{
    util::Rng rng(23);
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Matrix a = randomMatrix(1, n, rng);
    const linalg::Matrix b = randomMatrix(n, n, rng);
    linalg::Matrix out(1, n);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        kt.gemmMicro(n, n, a.rowData(0), b.rowData(0), n,
                     out.rowData(0));
        benchmark::DoNotOptimize(out.rowData(0));
        benchmark::ClobberMemory();
    }
}

void
BM_KernelMlpForward(benchmark::State &state, int tier)
{
    util::Rng rng(24);
    const auto width = static_cast<std::size_t>(state.range(0));
    const auto wt = randomVector(width * width, rng);
    const auto bias = randomVector(width, rng);
    const auto a_in = randomVector(width, rng);
    std::vector<double> a_out(width, 0.0);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        kt.mlpLayerNets(width, width, wt.data(), bias.data(),
                        a_in.data(), a_out.data());
        benchmark::DoNotOptimize(a_out.data());
        benchmark::ClobberMemory();
    }
}

void
BM_KernelMlpUpdate(benchmark::State &state, int tier)
{
    util::Rng rng(25);
    const auto width = static_cast<std::size_t>(state.range(0));
    const auto in_act = randomVector(width, rng);
    auto d = randomVector(width, rng);
    auto wt = randomVector(width * width, rng);
    std::vector<double> pwt(width * width, 0.0);
    auto bias = randomVector(width, rng);
    std::vector<double> pb(width, 0.0);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        kt.mlpUpdateLayer(width, width, 1e-9, 0.2, in_act.data(),
                          d.data(), wt.data(), pwt.data(), bias.data(),
                          pb.data());
        benchmark::DoNotOptimize(wt.data());
        benchmark::ClobberMemory();
    }
}

/** The blocked canonical-dot GEMM the batched Mlp::predict(Matrix)
 *  serve path runs on: C (n x n) = bias + A (n x n) * B^T. */
void
BM_KernelGemmDot(benchmark::State &state, int tier)
{
    util::Rng rng(26);
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Matrix a = randomMatrix(n, n, rng);
    const linalg::Matrix b = randomMatrix(n, n, rng);
    const auto bias = randomVector(n, rng);
    linalg::Matrix out(n, n);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        simd::gemmDot(kt, n, n, n, a.rowData(0), n, b.rowData(0), n,
                      bias.data(), out.rowData(0), n);
        benchmark::DoNotOptimize(out.rowData(0));
        benchmark::ClobberMemory();
    }
}

/** The whole-minibatch layer forward at the paper-scale L1 shape
 *  (bn x out x in = 100 x width/2 x width). */
void
BM_KernelBatchNets(benchmark::State &state, int tier)
{
    util::Rng rng(27);
    const std::size_t bn = 100;
    const auto in = static_cast<std::size_t>(state.range(0));
    const std::size_t out = in / 2;
    const auto a = randomVector(bn * in, rng);
    const auto wt = randomVector(in * out, rng);
    const auto bias = randomVector(out, rng);
    std::vector<double> nets(bn * out, 0.0);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        kt.mlpBatchNets(bn, in, out, a.data(), in, wt.data(),
                        bias.data(), nets.data(), out);
        benchmark::DoNotOptimize(nets.data());
        benchmark::ClobberMemory();
    }
}

/** The whole-minibatch gradient accumulation at the matching shape. */
void
BM_KernelGradAccum(benchmark::State &state, int tier)
{
    util::Rng rng(28);
    const std::size_t bn = 100;
    const auto in = static_cast<std::size_t>(state.range(0));
    const std::size_t out = in / 2;
    const auto d = randomVector(bn * out, rng);
    const auto a = randomVector(bn * in, rng);
    std::vector<double> gw(out * in, 0.0);
    const simd::KernelTable &kt = kernelTable(tier);
    for (auto _ : state) {
        kt.mlpGradAccum(bn, out, in, d.data(), out, a.data(), in,
                        gw.data());
        benchmark::DoNotOptimize(gw.data());
        benchmark::ClobberMemory();
    }
}

/**
 * Registers one kernel benchmark under "BM_<name>/<tier>" for the
 * scalar tier and every available vector tier.
 */
void
registerKernelBenchmark(const char *name,
                        void (*fn)(benchmark::State &, int),
                        std::initializer_list<long> args)
{
    static const char *const tier_names[] = {"scalar", "avx2",
                                             "avx512"};
    for (int tier = 0; tier < 3; ++tier) {
        if (tier == 1 && (simd::avx2Kernels() == nullptr ||
                          !simd::cpuSupportsAvx2()))
            continue;
        if (tier == 2 && (simd::avx512Kernels() == nullptr ||
                          !simd::cpuSupportsAvx512()))
            continue;
        auto *bench = benchmark::RegisterBenchmark(
            (std::string(name) + "/" + tier_names[tier]).c_str(), fn,
            tier);
        for (long arg : args)
            bench->Arg(arg);
    }
}

void
registerKernelBenchmarks()
{
    registerKernelBenchmark("BM_KernelDot", BM_KernelDot, {256, 1024});
    registerKernelBenchmark("BM_KernelAxpy", BM_KernelAxpy, {256, 1024});
    registerKernelBenchmark("BM_KernelSquaredDistance",
                            BM_KernelSquaredDistance, {256, 1024});
    registerKernelBenchmark("BM_KernelGemmMicro", BM_KernelGemmMicro,
                            {64, 256});
    registerKernelBenchmark("BM_KernelGemmDot", BM_KernelGemmDot,
                            {64, 256});
    // MLP layer widths stay L2-resident (128^2 weights = 128 KiB):
    // beyond that both tiers are bandwidth-bound and the comparison
    // stops measuring the kernels.
    registerKernelBenchmark("BM_KernelMlpForward", BM_KernelMlpForward,
                            {64, 128});
    registerKernelBenchmark("BM_KernelMlpUpdate", BM_KernelMlpUpdate,
                            {64, 128});
    // Paper-scale minibatch shapes: 28 is the MICA feature width, 128
    // a comfortably wider layer that still stays cache-resident.
    registerKernelBenchmark("BM_KernelBatchNets", BM_KernelBatchNets,
                            {28, 128});
    registerKernelBenchmark("BM_KernelGradAccum", BM_KernelGradAccum,
                            {28, 128});
}

} // namespace

int
main(int argc, char **argv)
{
    // Translate --json <path> (the flag every dtrank bench binary
    // understands) into google-benchmark's file-output flags, and
    // apply --simd <tier> to the process-wide dispatch before any
    // benchmark runs.
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    args.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            args.push_back(std::string("--benchmark_out=") + argv[++i]);
            args.emplace_back("--benchmark_out_format=json");
        } else if (arg.rfind("--json=", 0) == 0) {
            args.push_back("--benchmark_out=" + arg.substr(7));
            args.emplace_back("--benchmark_out_format=json");
        } else if (arg == "--simd" && i + 1 < argc) {
            simd::requestTier(simd::parseTier(argv[++i]));
        } else if (arg.rfind("--simd=", 0) == 0) {
            simd::requestTier(simd::parseTier(arg.substr(7)));
        } else {
            args.push_back(arg);
        }
    }
    std::vector<char *> argv2;
    argv2.reserve(args.size());
    for (std::string &a : args)
        argv2.push_back(a.data());
    int argc2 = static_cast<int>(argv2.size());

    registerKernelBenchmarks();
    benchmark::Initialize(&argc2, argv2.data());
    if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data()))
        return 1;
    benchmark::AddCustomContext("simd_tier",
                                simd::tierName(simd::activeTier()));
    benchmark::AddCustomContext("cpu_features", simd::cpuFeatureString());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
