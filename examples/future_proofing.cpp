/**
 * @file
 * Performance prediction for unavailable hardware: the paper's
 * Section 4 applications "performance prediction of unavailable
 * hardware" and "fast design space exploration".
 *
 * A team in 2008 owns that year's machines and wants to know how their
 * application will perform on next year's (2009) processors, whose SPEC
 * numbers have just been published but which they cannot buy yet. The
 * example predicts with NN^T and MLP^T and compares against the actual
 * scores, showing the Table 3 "one year into the future" scenario as a
 * user-facing workflow.
 */

#include <iostream>

#include "core/linear_transposition.h"
#include "core/metrics.h"
#include "core/mlp_transposition.h"
#include "core/ranking.h"
#include "core/transposition.h"
#include "dataset/synthetic_spec.h"
#include "util/cli.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

int
main(int argc, char **argv)
{
    util::ArgParser args("future_proofing");
    args.addOption("app", "application of interest", "soplex");
    args.addOption("seed", "dataset generator seed", "2011");
    if (!args.parse(argc, argv))
        return 0;

    const dataset::PerfDatabase db = dataset::makePaperDataset(
        static_cast<std::uint64_t>(args.getLong("seed")));
    const std::string app = args.get("app");

    const auto owned = db.machineIndicesByYear(2008);
    const auto future = db.machineIndicesByYear(2009);
    std::cout << "Owned 2008 machines: " << owned.size()
              << "; upcoming 2009 machines: " << future.size() << "\n\n";

    const auto problem =
        core::makeProblemFromSplit(db, owned, future, app);
    const auto future_db = db.selectMachines(future);
    const auto actual =
        future_db.benchmarkScores(future_db.benchmarkIndex(app));

    core::LinearTransposition nn{};
    core::MlpTransposition mlp{};
    const auto pred_nn = nn.predict(problem);
    const auto pred_mlp = mlp.predict(problem);

    util::TablePrinter table({"2009 machine", "actual", "NN^T",
                              "MLP^T"});
    for (std::size_t t = 0; t < future.size(); ++t) {
        table.addRow({future_db.machine(t).name(),
                      util::formatFixed(actual[t], 2),
                      util::formatFixed(pred_nn[t], 2),
                      util::formatFixed(pred_mlp[t], 2)});
    }
    table.print(std::cout);

    const auto m_nn = core::evaluatePrediction(actual, pred_nn);
    const auto m_mlp = core::evaluatePrediction(actual, pred_mlp);
    std::cout << "\nAccuracy for '" << app << "' one year out:\n"
              << "  NN^T : rank corr "
              << util::formatFixed(m_nn.rankCorrelation, 3)
              << ", mean error "
              << util::formatFixed(m_nn.meanErrorPercent, 1) << "%\n"
              << "  MLP^T: rank corr "
              << util::formatFixed(m_mlp.rankCorrelation, 3)
              << ", mean error "
              << util::formatFixed(m_mlp.meanErrorPercent, 1) << "%\n";

    const core::MachineRanking ranking(pred_mlp);
    std::cout << "\nPredicted best 2009 machine: "
              << future_db.machine(ranking.best()).name() << "\n";
    return 0;
}
