/**
 * @file
 * Quickstart: the data-transposition workflow in ~40 lines.
 *
 * 1. Load (here: generate) a published performance database.
 * 2. Pick the machines you own (the predictive machines).
 * 3. Measure your application of interest on them (here: a held-out
 *    benchmark plays that role).
 * 4. Predict its performance on every machine you do NOT own, and rank
 *    them.
 */

#include <iostream>

#include "core/mlp_transposition.h"
#include "core/ranking.h"
#include "core/transposition.h"
#include "dataset/synthetic_spec.h"
#include "util/cli.h"

using namespace dtrank;

int
main(int argc, char **argv)
{
    util::ArgParser args("quickstart");
    args.addOption("app", "application of interest (a benchmark name)",
                   "omnetpp");
    args.addOption("seed", "dataset generator seed", "2011");
    args.addOption("top", "how many machines to print", "10");
    if (!args.parse(argc, argv))
        return 0;

    // 1. The published database: 29 benchmarks x 117 machines.
    const dataset::PerfDatabase db = dataset::makePaperDataset(
        static_cast<std::uint64_t>(args.getLong("seed")));

    // 2. Suppose we own the first machine of six different families.
    std::vector<std::size_t> predictive;
    std::vector<std::size_t> targets;
    std::string last_family;
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        const auto &info = db.machine(m);
        if (predictive.size() < 6 && info.family != last_family) {
            predictive.push_back(m);
            last_family = info.family;
        } else {
            targets.push_back(m);
        }
    }

    // 3 + 4. Build the transposition problem and predict with MLP^T.
    const std::string app = args.get("app");
    const auto problem =
        core::makeProblemFromSplit(db, predictive, targets, app);
    core::MlpTransposition predictor{};
    const auto predicted = predictor.predict(problem);

    // Rank the machines we do not own.
    const core::MachineRanking ranking(predicted);
    std::cout << "Predicted best machines for '" << app << "':\n\n"
              << ranking.toTable(
                     db.selectMachines(targets),
                     static_cast<std::size_t>(args.getLong("top")));
    return 0;
}
