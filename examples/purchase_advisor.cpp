/**
 * @file
 * Purchase advisor: the paper's "guiding purchasing decisions"
 * application (Section 4).
 *
 * A customer owns a handful of machines chosen by k-medoid clustering
 * (Section 6.5), measures their application on them, and asks which
 * commercial machine to buy. The example compares the recommendation of
 * all three predictors (NN^T, MLP^T, GA-10NN) against the oracle choice
 * and reports the performance deficiency of each purchase.
 */

#include <iostream>

#include "baseline/ga_knn.h"
#include "core/linear_transposition.h"
#include "core/metrics.h"
#include "core/mlp_transposition.h"
#include "core/ranking.h"
#include "core/selection.h"
#include "core/transposition.h"
#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "stats/descriptive.h"
#include "util/cli.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

int
main(int argc, char **argv)
{
    util::ArgParser args("purchase_advisor");
    args.addOption("app", "application of interest", "sphinx3");
    args.addOption("owned", "number of machines the customer owns", "5");
    args.addOption("seed", "dataset generator seed", "2011");
    if (!args.parse(argc, argv))
        return 0;

    const dataset::PerfDatabase db = dataset::makePaperDataset(
        static_cast<std::uint64_t>(args.getLong("seed")));
    const std::string app = args.get("app");

    // Choose the owned machines by k-medoid clustering over the whole
    // catalog — the diverse predictive set the paper recommends.
    std::vector<std::size_t> all(db.machineCount());
    for (std::size_t m = 0; m < all.size(); ++m)
        all[m] = m;
    util::Rng rng(1);
    const auto owned = core::selectMachinesByKMedoids(
        db, all, static_cast<std::size_t>(args.getLong("owned")), rng);

    std::cout << "Customer owns:\n";
    for (std::size_t m : owned)
        std::cout << "  * " << db.machine(m).name() << "\n";

    std::vector<std::size_t> market;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (std::find(owned.begin(), owned.end(), m) == owned.end())
            market.push_back(m);

    const auto problem =
        core::makeProblemFromSplit(db, owned, market, app);
    const auto market_db = db.selectMachines(market);
    const auto actual =
        market_db.benchmarkScores(market_db.benchmarkIndex(app));

    // Run all three advisors.
    core::LinearTransposition nn{};
    core::MlpTransposition mlp{};

    const linalg::Matrix chars =
        dataset::MicaGenerator().generateForCatalog();
    baseline::GaKnnModel ga_model{};
    ga_model.train(chars, db.selectMachines(owned).scores());
    const std::size_t app_row = db.benchmarkIndex(app);
    std::vector<std::size_t> other_rows;
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b)
        if (b != app_row)
            other_rows.push_back(b);

    struct Advisor
    {
        std::string name;
        std::vector<double> predicted;
    };
    std::vector<Advisor> advisors;
    advisors.push_back({nn.name(), nn.predict(problem)});
    advisors.push_back({mlp.name(), mlp.predict(problem)});
    advisors.push_back(
        {"GA-10NN",
         ga_model.predictApp(chars.row(app_row),
                             chars.selectRows(other_rows),
                             market_db.scores().selectRows(other_rows))});

    const std::size_t oracle = stats::argMax(actual);
    std::cout << "\nOracle purchase for '" << app
              << "': " << market_db.machine(oracle).name() << " (score "
              << util::formatFixed(actual[oracle], 2) << ")\n\n";

    util::TablePrinter table({"advisor", "recommended machine",
                              "actual score", "deficiency %",
                              "rank corr"});
    for (const Advisor &advisor : advisors) {
        const core::MachineRanking ranking(advisor.predicted);
        const auto metrics =
            core::evaluatePrediction(actual, advisor.predicted);
        table.addRow(
            {advisor.name, market_db.machine(ranking.best()).name(),
             util::formatFixed(actual[ranking.best()], 2),
             util::formatFixed(metrics.top1ErrorPercent, 2),
             util::formatFixed(metrics.rankCorrelation, 3)});
    }
    table.print(std::cout);
    return 0;
}
