/**
 * @file
 * Heterogeneous task scheduling: the paper's Section 4 application
 * "task scheduling on heterogeneous systems".
 *
 * A data center owns a heterogeneous pool of nodes. For a batch of
 * applications (held-out benchmarks standing in for proprietary jobs),
 * data transposition predicts each job's performance on each node; a
 * greedy scheduler then assigns jobs to the node where their predicted
 * performance is highest, balancing load round-robin within ties. The
 * example reports the throughput of the prediction-driven schedule
 * against an oracle schedule (true scores) and a naive schedule that
 * sends every job to the machine with the best average SPEC score.
 */

#include <iostream>
#include <map>

#include "core/mlp_transposition.h"
#include "core/transposition.h"
#include "dataset/synthetic_spec.h"
#include "stats/descriptive.h"
#include "util/cli.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

namespace
{

/** Assigns each job to its per-job best node under the given scores. */
std::vector<std::size_t>
greedyAssign(const std::vector<std::vector<double>> &scores)
{
    std::vector<std::size_t> assignment;
    assignment.reserve(scores.size());
    for (const auto &job_scores : scores)
        assignment.push_back(stats::argMax(job_scores));
    return assignment;
}

/** Sum of actual per-job throughput under an assignment. */
double
throughput(const std::vector<std::vector<double>> &actual,
           const std::vector<std::size_t> &assignment)
{
    double acc = 0.0;
    for (std::size_t j = 0; j < actual.size(); ++j)
        acc += actual[j][assignment[j]];
    return acc;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("hetero_scheduler");
    args.addOption("seed", "dataset generator seed", "2011");
    if (!args.parse(argc, argv))
        return 0;

    const dataset::PerfDatabase db = dataset::makePaperDataset(
        static_cast<std::uint64_t>(args.getLong("seed")));

    // The node pool: one of each archetype.
    std::vector<std::size_t> nodes;
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        const auto &info = db.machine(m);
        if (info.variant != 0)
            continue;
        if (info.nickname == "Gainestown" ||   // bandwidth monster
            info.nickname == "Wolfdale-DP" ||  // clock monster
            info.nickname == "Montecito" ||    // cache monster
            info.nickname == "Istanbul")       // balanced AMD
            nodes.push_back(m);
    }

    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (std::find(nodes.begin(), nodes.end(), m) == nodes.end())
            predictive.push_back(m);

    // The job batch: a slice of the suite standing in for proprietary
    // applications.
    const std::vector<std::string> jobs = {
        "lbm", "povray", "namd", "mcf", "gamess", "libquantum",
        "hmmer", "gcc"};

    std::vector<std::vector<double>> predicted;
    std::vector<std::vector<double>> actual;
    for (const std::string &job : jobs) {
        const auto problem =
            core::makeProblemFromSplit(db, predictive, nodes, job);
        core::MlpTransposition predictor{};
        predicted.push_back(predictor.predict(problem));
        actual.push_back(db.selectMachines(nodes).benchmarkScores(
            db.benchmarkIndex(job)));
    }

    const auto predicted_schedule = greedyAssign(predicted);
    const auto oracle_schedule = greedyAssign(actual);

    // Naive policy: send everything to the best-average machine.
    const auto node_db = db.selectMachines(nodes);
    const auto means = node_db.machineGeometricMeans();
    const std::size_t best_avg = stats::argMax(means);
    std::vector<std::size_t> naive_schedule(jobs.size(), best_avg);

    util::TablePrinter table(
        {"job", "predicted node", "oracle node", "agree"});
    std::size_t agreements = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const bool agree =
            predicted_schedule[j] == oracle_schedule[j];
        agreements += agree ? 1 : 0;
        table.addRow({jobs[j],
                      node_db.machine(predicted_schedule[j]).name(),
                      node_db.machine(oracle_schedule[j]).name(),
                      agree ? "yes" : "no"});
    }
    table.print(std::cout);

    const double t_pred = throughput(actual, predicted_schedule);
    const double t_oracle = throughput(actual, oracle_schedule);
    const double t_naive = throughput(actual, naive_schedule);
    std::cout << "\nSchedule throughput (sum of per-job speed ratios):\n"
              << "  prediction-driven: "
              << util::formatFixed(t_pred, 2) << " ("
              << util::formatFixed(t_pred / t_oracle * 100.0, 1)
              << "% of oracle)\n"
              << "  oracle:            "
              << util::formatFixed(t_oracle, 2) << "\n"
              << "  naive best-average: "
              << util::formatFixed(t_naive, 2) << " ("
              << util::formatFixed(t_naive / t_oracle * 100.0, 1)
              << "% of oracle)\n"
              << "\nJobs scheduled onto their oracle node: " << agreements
              << "/" << jobs.size() << "\n";
    return 0;
}
