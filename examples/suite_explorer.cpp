/**
 * @file
 * Suite explorer: the program-similarity analysis of the paper's
 * related work (Section 7.2) applied to our synthetic suite.
 *
 * PCA over the benchmark characteristics reveals the suite's
 * structure; k-medoids in the projected space proposes a reduced
 * representative suite; and the explorer flags the benchmarks that sit
 * far from everything — the outliers on which workload-similarity
 * methods fail (Section 6.2).
 */

#include <cmath>
#include <iostream>

#include "dataset/mica.h"
#include "linalg/vector_ops.h"
#include "ml/kmedoids.h"
#include "ml/pca.h"
#include "util/cli.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

int
main(int argc, char **argv)
{
    util::ArgParser args("suite_explorer");
    args.addOption("reduced", "size of the proposed reduced suite", "8");
    if (!args.parse(argc, argv))
        return 0;

    const auto &catalog = dataset::benchmarkCatalog();
    const linalg::Matrix chars =
        dataset::MicaGenerator().generateForCatalog();

    // 1. PCA of the characteristic space.
    ml::Pca pca{};
    pca.fit(chars);
    const auto ratios = pca.explainedVarianceRatio();
    std::cout << "Characteristic space: "
              << chars.cols() << " metrics, effective dimensionality "
              << pca.componentsForVariance(0.95) << " (95% variance)\n"
              << "Leading components: "
              << util::formatFixed(ratios[0] * 100, 1) << "%, "
              << util::formatFixed(ratios[1] * 100, 1) << "%, "
              << util::formatFixed(ratios[2] * 100, 1) << "%\n\n";

    // 2. Benchmark map: first two principal components + isolation.
    const linalg::Matrix projected = pca.transform(chars, 2);
    std::vector<double> isolation(catalog.size(), 0.0);
    for (std::size_t b = 0; b < catalog.size(); ++b) {
        double nearest = 1e300;
        for (std::size_t j = 0; j < catalog.size(); ++j) {
            if (j == b)
                continue;
            nearest = std::min(
                nearest, linalg::squaredDistance(chars.row(b),
                                                 chars.row(j)));
        }
        isolation[b] = std::sqrt(nearest);
    }

    util::TablePrinter map({"benchmark", "domain", "PC1", "PC2",
                            "nearest-neighbour distance"});
    for (std::size_t b = 0; b < catalog.size(); ++b) {
        map.addRow({catalog[b].info.name,
                    catalog[b].info.domain ==
                            dataset::BenchmarkDomain::Integer
                        ? "int"
                        : "fp",
                    util::formatFixed(projected(b, 0), 2),
                    util::formatFixed(projected(b, 1), 2),
                    util::formatFixed(isolation[b], 2)});
    }
    map.print(std::cout);

    // 3. Flag the isolated benchmarks (top quartile of isolation).
    std::vector<double> sorted_iso = isolation;
    std::sort(sorted_iso.begin(), sorted_iso.end());
    const double cutoff = sorted_iso[catalog.size() * 3 / 4];
    std::cout << "\nIsolated benchmarks (no near neighbour — "
                 "workload-similarity methods will\nstruggle on "
                 "these):";
    for (std::size_t b = 0; b < catalog.size(); ++b)
        if (isolation[b] > cutoff + 1e-12)
            std::cout << " " << catalog[b].info.name;
    std::cout << "\n";

    // 4. Propose a reduced representative suite by k-medoids in the
    //    characteristic space.
    const auto k = static_cast<std::size_t>(args.getLong("reduced"));
    std::vector<std::vector<double>> points;
    for (std::size_t b = 0; b < catalog.size(); ++b)
        points.push_back(chars.row(b));
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(5);
    const auto clusters = clusterer.cluster(points, k, metric, rng);

    std::cout << "\nProposed reduced suite (" << k
              << " representatives):\n";
    for (std::size_t c = 0; c < k; ++c) {
        std::cout << "  * " << catalog[clusters.medoids[c]].info.name
                  << " (represents";
        for (std::size_t b = 0; b < catalog.size(); ++b)
            if (clusters.assignment[b] == c && b != clusters.medoids[c])
                std::cout << " " << catalog[b].info.name;
        std::cout << ")\n";
    }
    return 0;
}
