/**
 * @file
 * Predictive machine selection: which machines should a lab buy so
 * that future predictions are as accurate as possible? (Section 6.5.)
 *
 * The example clusters the machine catalog with k-medoids over the
 * architectural-signature features, prints the resulting clusters, and
 * shows how prediction quality grows with the number of owned machines
 * for clustered versus random shopping lists.
 */

#include <iostream>
#include <map>

#include "core/metrics.h"
#include "core/mlp_transposition.h"
#include "core/selection.h"
#include "core/transposition.h"
#include "dataset/synthetic_spec.h"
#include "ml/distance.h"
#include "ml/kmedoids.h"
#include "util/cli.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

namespace
{

/** Mean rank correlation over a few held-out benchmarks. */
double
predictionQuality(const dataset::PerfDatabase &db,
                  const std::vector<std::size_t> &owned)
{
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (std::find(owned.begin(), owned.end(), m) == owned.end())
            targets.push_back(m);

    const std::vector<std::string> probes = {"gcc", "lbm", "povray",
                                             "mcf"};
    double acc = 0.0;
    for (const std::string &probe : probes) {
        const auto problem =
            core::makeProblemFromSplit(db, owned, targets, probe);
        core::MlpTranspositionConfig config;
        config.mlp.epochs = 150;
        core::MlpTransposition predictor(config);
        const auto predicted = predictor.predict(problem);
        const auto target_db = db.selectMachines(targets);
        const auto actual = target_db.benchmarkScores(
            target_db.benchmarkIndex(probe));
        acc += core::evaluatePrediction(actual, predicted)
                   .rankCorrelation;
    }
    return acc / static_cast<double>(probes.size());
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("machine_selection");
    args.addOption("clusters", "number of machine clusters to show", "5");
    args.addOption("seed", "dataset generator seed", "2011");
    if (!args.parse(argc, argv))
        return 0;

    const dataset::PerfDatabase db = dataset::makePaperDataset(
        static_cast<std::uint64_t>(args.getLong("seed")));

    std::vector<std::size_t> all(db.machineCount());
    for (std::size_t m = 0; m < all.size(); ++m)
        all[m] = m;

    // Show the cluster structure of the catalog.
    const auto k =
        static_cast<std::size_t>(args.getLong("clusters"));
    const auto points = core::machineFeatureVectors(db, all);
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(3);
    const auto clusters = clusterer.cluster(points, k, metric, rng);

    std::cout << "Architectural clusters of the catalog (medoid "
                 "first):\n";
    for (std::size_t c = 0; c < k; ++c) {
        std::map<std::string, int> families;
        for (std::size_t m = 0; m < all.size(); ++m)
            if (clusters.assignment[m] == c)
                ++families[db.machine(m).family];
        std::cout << "  cluster " << c + 1 << " ["
                  << db.machine(clusters.medoids[c]).name() << "]: ";
        bool first = true;
        for (const auto &[family, count] : families) {
            std::cout << (first ? "" : ", ") << family << " x" << count;
            first = false;
        }
        std::cout << "\n";
    }

    // Shopping-list quality: clustered vs random, growing budget.
    std::cout << "\nPrediction quality (mean rank correlation over 4 "
                 "probe apps):\n";
    util::TablePrinter table(
        {"machines owned", "k-medoids picks", "random picks"});
    util::Rng shop_rng(17);
    for (std::size_t budget : {2u, 4u, 6u}) {
        const auto smart =
            core::selectMachinesByKMedoids(db, all, budget, shop_rng);
        const auto lucky =
            core::selectRandomMachines(all, budget, shop_rng);
        table.addRow({std::to_string(budget),
                      util::formatFixed(predictionQuality(db, smart), 3),
                      util::formatFixed(predictionQuality(db, lucky),
                                        3)});
    }
    table.print(std::cout);
    return 0;
}
