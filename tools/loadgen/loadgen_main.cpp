/**
 * @file
 * loadgen: open-loop load generator for the dtrank_serve daemon.
 *
 * Pre-generates a fixed schedule of rank requests (mixed model types,
 * a bounded pool of sessions so MLP^T requests can coalesce, partial
 * vectors taken from the same --dataset the daemon loaded, so every
 * request is satisfiable and bit-identical to the offline path),
 * then sends them at the target rate regardless of response latency —
 * the open-loop discipline that exposes queueing delay instead of
 * hiding it behind a stalled closed loop.
 *
 * Latency is measured from each request's *scheduled* send time to its
 * response, so sender stalls count against the server (no coordinated
 * omission). Reports throughput and p50/p99/p999 per run, appends
 * BenchJsonWriter records for bench_compare, and can scrape the
 * daemon's Prometheus text (--scrape-out) for obs_check.
 *
 *   loadgen --port 7411 --dataset scaled:2000 --qps 2000 --duration 3 \
 *           --methods mlp --json BENCH_serve_loadgen.json
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "experiments/bench_options.h"
#include "obs/clock.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace dtrank;

namespace
{

experiments::Method
parseMethod(const std::string &name)
{
    if (name == "nn")
        return experiments::Method::NnT;
    if (name == "mlp")
        return experiments::Method::MlpT;
    if (name == "gaknn")
        return experiments::Method::GaKnn;
    if (name == "spl")
        return experiments::Method::SplT;
    if (name == "knn")
        return experiments::Method::MultiNnT;
    throw util::InvalidArgument(
        "--methods: unknown method \"" + name +
        "\" (expected nn|mlp|gaknn|spl|knn)");
}

/** Sorted-sample quantile: the ceil(q*N)-th smallest value. */
double
quantileOf(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::min(sorted.size() - 1,
                           rank == 0 ? 0 : rank - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("loadgen");
    args.addOption("host", "daemon address (IPv4)", "127.0.0.1");
    args.addOption("port", "daemon TCP port", "0");
    args.addOption("qps", "target request rate (open loop)", "2000");
    args.addOption("duration", "send window in seconds", "3");
    args.addOption("connections", "parallel TCP connections", "4");
    args.addOption("methods",
                   "comma-separated round-robin model mix "
                   "(nn|mlp|gaknn|spl|knn)",
                   "mlp");
    args.addOption("sessions",
                   "distinct (app, partial-vector) sessions cycled "
                   "through; fewer sessions = more coalescing",
                   "4");
    args.addOption("owned", "machines per partial vector", "10");
    args.addOption("targets",
                   "candidate machines per request (0 = all "
                   "non-predictive)",
                   "64");
    args.addOption("top", "topK truncation (0 = all)", "10");
    args.addOption("seed", "request-sampling seed", "7");
    args.addOption("drain-ms",
                   "grace period for trailing responses after the "
                   "send window",
                   "5000");
    args.addOption("scrape-out",
                   "write the daemon's Prometheus scrape here", "");
    experiments::addBenchOptions(args);
    if (!args.parse(argc, argv))
        return 0;

    try {
        const auto port =
            static_cast<std::uint16_t>(args.getLong("port"));
        util::require(port != 0, "--port is required");
        const double qps = args.getDouble("qps");
        util::require(qps > 0.0, "--qps must be > 0");
        const double duration = args.getDouble("duration");
        util::require(duration > 0.0, "--duration must be > 0");
        const auto n_conns =
            static_cast<std::size_t>(args.getLong("connections"));
        util::require(n_conns >= 1, "--connections must be >= 1");

        std::vector<experiments::Method> mix;
        for (const std::string &field :
             util::split(args.get("methods"), ','))
            mix.push_back(parseMethod(util::trim(field)));
        util::require(!mix.empty(), "--methods: need >= 1 method");

        util::BenchJsonWriter json("serve");
        const auto seed =
            static_cast<std::uint64_t>(args.getLong("seed"));
        const experiments::BenchDataset data =
            experiments::loadDatasetOption(args, seed, &json);
        const linalg::Matrix &scores = data.db.scores();
        const std::size_t n_machines = data.db.machineCount();
        const std::size_t n_bench = data.db.benchmarkCount();

        // ---- pre-generate sessions and the request schedule --------
        const auto n_sessions =
            static_cast<std::size_t>(args.getLong("sessions"));
        const auto n_owned =
            static_cast<std::size_t>(args.getLong("owned"));
        const auto n_targets =
            static_cast<std::size_t>(args.getLong("targets"));
        util::require(n_sessions >= 1, "--sessions must be >= 1");
        util::require(n_owned >= 1 && n_owned < n_machines,
                      "--owned must leave target machines");
        util::Rng rng(seed);

        struct SessionSpec
        {
            std::uint32_t app = 0;
            std::vector<std::pair<std::uint32_t, double>> predictive;
            std::vector<std::uint32_t> complement;
        };
        std::vector<SessionSpec> sessions(n_sessions);
        for (std::size_t s = 0; s < n_sessions; ++s) {
            SessionSpec &spec = sessions[s];
            spec.app = static_cast<std::uint32_t>(s % n_bench);
            std::vector<std::size_t> owned =
                rng.sampleWithoutReplacement(n_machines, n_owned);
            std::sort(owned.begin(), owned.end());
            std::vector<char> is_owned(n_machines, 0);
            for (std::size_t m : owned) {
                is_owned[m] = 1;
                // The database's own score: satisfiable by
                // construction and byte-identical to the offline
                // harness's predictive matrix.
                spec.predictive.emplace_back(
                    static_cast<std::uint32_t>(m),
                    scores(spec.app, m));
            }
            for (std::size_t m = 0; m < n_machines; ++m)
                if (!is_owned[m])
                    spec.complement.push_back(
                        static_cast<std::uint32_t>(m));
        }

        const auto total = static_cast<std::size_t>(qps * duration);
        util::require(total >= 1,
                      "qps * duration must cover >= 1 request");
        const auto top_k =
            static_cast<std::uint32_t>(args.getLong("top"));

        std::vector<std::vector<std::uint8_t>> frames(total);
        std::vector<std::uint8_t> method_of(total);
        for (std::size_t i = 0; i < total; ++i) {
            const SessionSpec &spec = sessions[i % n_sessions];
            serve::Request request;
            request.type = serve::MessageType::Rank;
            request.id = i;
            request.rank.method = mix[i % mix.size()];
            request.rank.app = spec.app;
            request.rank.topK = top_k;
            request.rank.predictive = spec.predictive;
            if (n_targets != 0 && n_targets < spec.complement.size()) {
                std::vector<std::size_t> pick =
                    rng.sampleWithoutReplacement(spec.complement.size(),
                                                 n_targets);
                std::sort(pick.begin(), pick.end());
                for (std::size_t p : pick)
                    request.rank.targets.push_back(spec.complement[p]);
            }
            method_of[i] =
                static_cast<std::uint8_t>(request.rank.method);
            serve::appendFrame(frames[i],
                               serve::encodeRequest(request));
        }

        // ---- open-loop send + receive ------------------------------
        const std::string host = args.get("host");
        std::vector<serve::BlockingClient> clients(n_conns);
        for (serve::BlockingClient &client : clients)
            client.connect(host, port);

        const auto period = std::chrono::nanoseconds(
            static_cast<std::int64_t>(1e9 / qps));
        const int drain_ms =
            static_cast<int>(args.getLong("drain-ms"));
        const auto t0 = obs::monotonicNow() +
                        std::chrono::milliseconds(50); // ramp slack

        // Written racelessly: latencies/status slots are per request
        // id, each id handled by exactly one receiver; sent counts are
        // per connection.
        std::vector<double> latencies(total, -1.0);
        std::vector<std::uint8_t> status_of(total, 255);
        std::vector<std::size_t> sent_on(n_conns, 0);

        util::ThreadPool pool(2 * n_conns);
        util::TaskGroup group(pool);
        for (std::size_t c = 0; c < n_conns; ++c) {
            group.run([&, c] { // sender: fire at the schedule
                for (std::size_t i = c; i < total; i += n_conns) {
                    const auto due =
                        t0 + std::chrono::nanoseconds(
                                 period.count() *
                                 static_cast<std::int64_t>(i));
                    for (;;) {
                        const auto now = obs::monotonicNow();
                        if (now >= due)
                            break;
                        const auto gap = std::chrono::duration_cast<
                            std::chrono::nanoseconds>(due - now);
                        std::this_thread::sleep_for(std::min<
                            std::chrono::nanoseconds>(
                            gap, std::chrono::microseconds(200)));
                    }
                    clients[c].sendBytes(frames[i].data(),
                                         frames[i].size());
                    ++sent_on[c];
                }
            });
            group.run([&, c] { // receiver: match on echoed id
                const auto deadline =
                    t0 +
                    std::chrono::nanoseconds(static_cast<std::int64_t>(
                        duration * 1e9)) +
                    std::chrono::milliseconds(drain_ms);
                std::size_t received = 0;
                const std::size_t expected =
                    total / n_conns + (c < total % n_conns ? 1 : 0);
                serve::Response response;
                while (received < expected) {
                    const auto now = obs::monotonicNow();
                    if (now >= deadline)
                        break;
                    const int wait_ms = static_cast<int>(
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline - now)
                            .count() +
                        1);
                    bool got = false;
                    try {
                        got = clients[c].tryReadResponse(
                            response, std::min(wait_ms, 100));
                    } catch (const util::Error &) {
                        break; // connection lost; count what we have
                    }
                    if (!got)
                        continue;
                    const std::size_t id =
                        static_cast<std::size_t>(response.id);
                    if (id >= total)
                        continue;
                    const auto scheduled =
                        t0 + std::chrono::nanoseconds(
                                 period.count() *
                                 static_cast<std::int64_t>(id));
                    latencies[id] = std::chrono::duration<double>(
                                        obs::monotonicNow() -
                                        scheduled)
                                        .count();
                    status_of[id] =
                        static_cast<std::uint8_t>(response.status);
                    ++received;
                }
            });
        }
        group.wait();

        // ---- aggregate ---------------------------------------------
        const double elapsed =
            std::chrono::duration<double>(obs::monotonicNow() - t0)
                .count();
        std::size_t n_ok = 0, n_error = 0, n_overloaded = 0,
                    n_lost = 0;
        std::vector<double> ok_lat;
        ok_lat.reserve(total);
        for (std::size_t i = 0; i < total; ++i) {
            switch (status_of[i]) {
              case 0:
                ++n_ok;
                ok_lat.push_back(latencies[i]);
                break;
              case 1:
                ++n_error;
                break;
              case 2:
                ++n_overloaded;
                break;
              default:
                ++n_lost;
                break;
            }
        }
        std::sort(ok_lat.begin(), ok_lat.end());
        const double p50 = quantileOf(ok_lat, 0.50) * 1e3;
        const double p99 = quantileOf(ok_lat, 0.99) * 1e3;
        const double p999 = quantileOf(ok_lat, 0.999) * 1e3;
        const double throughput =
            elapsed > 0.0 ? static_cast<double>(n_ok) / elapsed : 0.0;

        util::TablePrinter table({"sent", "ok", "error", "overloaded",
                                  "lost", "rps", "p50 ms", "p99 ms",
                                  "p999 ms"});
        table.addRow({std::to_string(total), std::to_string(n_ok),
                      std::to_string(n_error),
                      std::to_string(n_overloaded),
                      std::to_string(n_lost),
                      util::formatFixed(throughput, 0),
                      util::formatFixed(p50, 3),
                      util::formatFixed(p99, 3),
                      util::formatFixed(p999, 3)});
        table.print(std::cout);

        json.addContext("methods", args.get("methods"));
        json.addContext("qps", args.get("qps"));
        json.addContext("connections", args.get("connections"));
        auto record = [&json](const std::string &name, double ms,
                              std::vector<std::pair<std::string,
                                                    std::string>>
                                  extra) {
            util::BenchRecord rec;
            rec.name = "BENCH_serve.loadgen_" + name;
            rec.realTimeMs = ms;
            for (auto &kv : extra)
                rec.context.push_back(std::move(kv));
            json.add(std::move(rec));
        };
        record("p50", p50, {});
        record("p99", p99, {});
        record("p999", p999, {});
        record("window", elapsed * 1e3,
               {{"rps", util::formatFixed(throughput, 1)},
                {"ok", std::to_string(n_ok)},
                {"error", std::to_string(n_error)},
                {"overloaded", std::to_string(n_overloaded)},
                {"lost", std::to_string(n_lost)}});

        // ---- optional Prometheus scrape ----------------------------
        const std::string scrape_out = args.get("scrape-out");
        if (!scrape_out.empty()) {
            serve::Request scrape;
            scrape.type = serve::MessageType::Metrics;
            scrape.id = total;
            clients[0].sendRequest(scrape);
            serve::Response response;
            // Responses to earlier rank requests may still be in
            // flight on this connection; skip until the scrape id.
            while (clients[0].tryReadResponse(response, 2000) &&
                   response.id != scrape.id) {
            }
            util::require(response.id == scrape.id,
                          "loadgen: metrics scrape timed out");
            std::ofstream out(scrape_out);
            if (!out)
                throw util::IoError("loadgen: cannot write " +
                                    scrape_out);
            out << response.text;
            std::cout << "wrote " << scrape_out << "\n";
        }

        json.writeTo(args.get("json"));
        const bool any_ok = n_ok > 0;
        if (!any_ok)
            std::cerr << "loadgen: no successful responses\n";
        return any_ok ? 0 : 1;
    } catch (const util::Error &e) {
        std::cerr << "loadgen: " << e.what() << "\n";
        return 1;
    }
}
