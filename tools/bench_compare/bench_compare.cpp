#include "bench_compare.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace dtrank::bench_compare
{

namespace
{

/**
 * Recursive-descent JSON parser over the two well-formed report
 * dialects this tool consumes. Strict enough to reject truncated or
 * mis-quoted documents with a useful offset; \uXXXX escapes are decoded
 * for the ASCII range only (report names and context values are ASCII).
 */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue parseDocument()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after the JSON document");
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("bench_compare: JSON error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
            ++pos_;
    }

    char peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expectLiteral(const char *literal)
    {
        for (const char *p = literal; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected literal '") + literal + "'");
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                const unsigned long code = std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                out.push_back(code < 128
                                  ? static_cast<char>(code)
                                  : '?'); // non-ASCII: placeholder
                break;
              }
              default:
                fail("unknown escape sequence");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                    0 ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        value.number = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            fail("malformed number '" + token + "'");
        return value;
    }

    JsonValue parseValue()
    {
        const char c = peek();
        JsonValue value;
        if (c == '{') {
            ++pos_;
            value.kind = JsonValue::Kind::Object;
            if (!consumeIf('}')) {
                do {
                    value.keys.push_back(parseString());
                    expect(':');
                    value.values.push_back(parseValue());
                } while (consumeIf(','));
                expect('}');
            }
        } else if (c == '[') {
            ++pos_;
            value.kind = JsonValue::Kind::Array;
            if (!consumeIf(']')) {
                do {
                    value.array.push_back(parseValue());
                } while (consumeIf(','));
                expect(']');
            }
        } else if (c == '"') {
            value.kind = JsonValue::Kind::String;
            value.text = parseString();
        } else if (c == 't') {
            expectLiteral("true");
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
        } else if (c == 'f') {
            expectLiteral("false");
            value.kind = JsonValue::Kind::Bool;
        } else if (c == 'n') {
            expectLiteral("null");
        } else {
            value = parseNumber();
        }
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Factor from `time_unit` to milliseconds. */
double
unitToMs(const std::string &unit)
{
    if (unit == "ns")
        return 1e-6;
    if (unit == "us")
        return 1e-3;
    if (unit == "ms")
        return 1.0;
    if (unit == "s")
        return 1e3;
    throw std::runtime_error("bench_compare: unknown time_unit '" +
                             unit + "'");
}

const JsonValue *
findString(const JsonValue &object, const std::string &key)
{
    const JsonValue *value = object.find(key);
    return value != nullptr && value->kind == JsonValue::Kind::String
               ? value
               : nullptr;
}

std::string
readTier(const JsonValue &root)
{
    const JsonValue *context = root.find("context");
    if (context == nullptr)
        return "";
    const JsonValue *tier = findString(*context, "simd_tier");
    return tier != nullptr ? tier->text : "";
}

/**
 * The dispatch tiers a report may legitimately carry (empty = the
 * pre-dispatch report format). An unknown value means a corrupted,
 * hand-edited or future-format report whose timings this tool cannot
 * reason about — reject it instead of silently comparing.
 */
bool
isKnownTier(const std::string &tier)
{
    return tier.empty() || tier == "scalar" || tier == "avx2" ||
           tier == "avx512";
}

/** google-benchmark dialect: the "benchmarks" array. */
void
readGoogleBenchmarks(const JsonValue &benchmarks, Report &report)
{
    for (const JsonValue &row : benchmarks.array) {
        // Aggregate rows (mean/median/stddev of repetitions) would
        // double-count the underlying iterations; compare those only.
        const JsonValue *run_type = findString(row, "run_type");
        if (run_type != nullptr && run_type->text != "iteration")
            continue;
        const JsonValue *name = findString(row, "name");
        const JsonValue *real_time = row.find("real_time");
        if (name == nullptr || real_time == nullptr ||
            real_time->kind != JsonValue::Kind::Number)
            throw std::runtime_error(
                "bench_compare: benchmark row without name/real_time "
                "in " + report.label);
        const JsonValue *unit = findString(row, "time_unit");
        const double to_ms =
            unitToMs(unit != nullptr ? unit->text : "ns");
        report.entries.push_back(
            {name->text, real_time->number * to_ms});
    }
}

/** util::BenchJsonWriter dialect: the "records" array. */
void
readBenchJsonRecords(const JsonValue &records, Report &report)
{
    for (const JsonValue &row : records.array) {
        const JsonValue *name = findString(row, "name");
        const JsonValue *ms = row.find("real_time_ms");
        if (name == nullptr || ms == nullptr ||
            ms->kind != JsonValue::Kind::Number)
            throw std::runtime_error(
                "bench_compare: record without name/real_time_ms in " +
                report.label);
        report.entries.push_back({name->text, ms->number});
    }
}

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == key)
            return &values[i];
    }
    return nullptr;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parseDocument();
}

Report
parseReport(const std::string &label, const std::string &json)
{
    const JsonValue root = parseJson(json);
    if (root.kind != JsonValue::Kind::Object)
        throw std::runtime_error(
            "bench_compare: top-level JSON value in " + label +
            " is not an object");
    Report report;
    report.label = label;
    report.simdTier = readTier(root);
    if (!isKnownTier(report.simdTier))
        throw std::runtime_error(
            "bench_compare: " + label + " reports unknown simd_tier '" +
            report.simdTier + "' (known: scalar, avx2, avx512)");
    if (const JsonValue *benchmarks = root.find("benchmarks"))
        readGoogleBenchmarks(*benchmarks, report);
    else if (const JsonValue *records = root.find("records"))
        readBenchJsonRecords(*records, report);
    else
        throw std::runtime_error(
            "bench_compare: " + label +
            " has neither a \"benchmarks\" nor a \"records\" array");
    return report;
}

CompareResult
compareReports(const Report &baseline, const Report &current,
               double max_regress_pct)
{
    CompareResult result;
    result.baselineTier = baseline.simdTier;
    result.currentTier = current.simdTier;
    // Scalar-vs-AVX2 timing gaps are the dispatch layer working as
    // designed, not a code regression: refuse to compare across tiers.
    result.tierMismatch = !baseline.simdTier.empty() &&
                          !current.simdTier.empty() &&
                          baseline.simdTier != current.simdTier;
    if (result.tierMismatch)
        return result;

    std::unordered_map<std::string, double> current_ms;
    for (const BenchEntry &entry : current.entries)
        current_ms.emplace(entry.name, entry.realTimeMs);

    for (const BenchEntry &entry : baseline.entries) {
        const auto it = current_ms.find(entry.name);
        if (it == current_ms.end()) {
            result.onlyBaseline.push_back(entry.name);
            continue;
        }
        Delta delta;
        delta.name = entry.name;
        delta.baselineMs = entry.realTimeMs;
        delta.currentMs = it->second;
        delta.changePct =
            entry.realTimeMs > 0.0
                ? (it->second - entry.realTimeMs) / entry.realTimeMs *
                      100.0
                : 0.0;
        delta.regression = delta.changePct > max_regress_pct;
        if (delta.regression)
            ++result.regressions;
        result.deltas.push_back(std::move(delta));
        current_ms.erase(it);
    }
    for (const BenchEntry &entry : current.entries) {
        if (current_ms.count(entry.name) != 0)
            result.onlyCurrent.push_back(entry.name);
    }
    return result;
}

std::string
formatResult(const CompareResult &result, double max_regress_pct)
{
    std::ostringstream out;
    if (result.tierMismatch) {
        out << "bench_compare: dispatch tier mismatch (baseline="
            << result.baselineTier << ", current=" << result.currentTier
            << "); timings are not comparable across tiers, skipping\n";
        return out.str();
    }
    out.setf(std::ios::fixed);
    out.precision(3);
    for (const Delta &delta : result.deltas) {
        out << (delta.regression ? "REGRESSION " : "ok         ")
            << delta.name << ": " << delta.baselineMs << " ms -> "
            << delta.currentMs << " ms (" << (delta.changePct >= 0 ? "+" : "")
            << delta.changePct << "%)\n";
    }
    for (const std::string &name : result.onlyBaseline)
        out << "removed    " << name << " (present only in baseline)\n";
    for (const std::string &name : result.onlyCurrent)
        out << "added      " << name << " (present only in current)\n";
    out << "bench_compare: " << result.deltas.size() << " compared, "
        << result.regressions << " regression(s) over "
        << max_regress_pct << "%\n";
    return out.str();
}

} // namespace dtrank::bench_compare
