/**
 * @file
 * CLI wrapper for the bench_compare library, the perf-regression gate
 * CI runs between a stored baseline benchmark report and the current
 * run:
 *
 *   bench_compare <baseline.json> <current.json> [--max-regress-pct N]
 *
 * Exit status: 0 when no benchmark regressed beyond the threshold (or
 * the reports were recorded at different dispatch tiers, which makes
 * the timings incomparable and the comparison a no-op), 1 when at
 * least one regressed, 2 on usage or parse errors.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_compare.h"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("bench_compare: cannot read '" + path +
                                 "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
printUsage(std::ostream &out)
{
    out << "usage: bench_compare <baseline.json> <current.json> "
           "[--max-regress-pct N]\n"
           "  Compares two benchmark JSON reports (google-benchmark or "
           "BenchJsonWriter\n"
           "  format) and fails when a benchmark got more than N% "
           "slower (default 25).\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dtrank::bench_compare;

    std::string baseline_path;
    std::string current_path;
    double max_regress_pct = 25.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            return 0;
        }
        if (arg == "--max-regress-pct") {
            if (i + 1 >= argc) {
                std::cerr << "bench_compare: --max-regress-pct needs a "
                             "value\n";
                return 2;
            }
            max_regress_pct = std::strtod(argv[++i], nullptr);
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            printUsage(std::cerr);
            return 2;
        }
    }
    if (baseline_path.empty() || current_path.empty()) {
        printUsage(std::cerr);
        return 2;
    }

    try {
        const Report baseline =
            parseReport(baseline_path, readFile(baseline_path));
        const Report current =
            parseReport(current_path, readFile(current_path));
        const CompareResult result =
            compareReports(baseline, current, max_regress_pct);
        std::cout << formatResult(result, max_regress_pct);
        return result.regressions > 0 ? 1 : 0;
    } catch (const std::exception &error) {
        std::cerr << error.what() << "\n";
        return 2;
    }
}
