/**
 * @file
 * bench_compare: the perf-regression gate between two benchmark JSON
 * reports. Understands both report dialects the tree produces — the
 * google-benchmark file written by `bench_micro_kernels --json` and the
 * util::BenchJsonWriter file written by the protocol benches — and
 * fails when any benchmark present in both reports slowed down by more
 * than the allowed percentage.
 *
 * Timings are only comparable at an equal kernel dispatch tier: when
 * both reports carry a `simd_tier` context entry and the tiers differ
 * (say a baseline recorded on an AVX2 runner against a scalar-only
 * current run), the comparison is skipped and reported as such rather
 * than flagging the tier gap as a code regression.
 *
 * Split into a library plus a thin main (tools/bench_compare) so the
 * parser, the unit normalization and the regression rule are unit
 * tested in-process against fixture documents.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dtrank::bench_compare
{

/**
 * A minimal JSON value, parsed by parseJson(). Objects keep insertion
 * order in parallel key/value vectors (std::vector supports the
 * incomplete element type this recursion needs; std::map does not).
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> array;
    std::vector<std::string> keys;    ///< Object member names.
    std::vector<JsonValue> values;    ///< Object member values.

    /** First member named `key`, or nullptr (also for non-objects). */
    const JsonValue *find(const std::string &key) const;
};

/** Parses one JSON document. @throws std::runtime_error on malformed
 *  input (with a character offset in the message). */
JsonValue parseJson(const std::string &text);

/** One benchmark timing extracted from a report. */
struct BenchEntry
{
    std::string name;
    double realTimeMs = 0.0;
};

/** A benchmark report normalized to milliseconds. */
struct Report
{
    std::string label;          ///< Where it came from (for messages).
    std::string simdTier;       ///< `simd_tier` context, "" if absent.
    std::vector<BenchEntry> entries;
};

/**
 * Parses either report dialect: a top-level "benchmarks" array selects
 * the google-benchmark format (aggregate rows are skipped, `real_time`
 * is converted from its `time_unit`), a top-level "records" array
 * selects the BenchJsonWriter format (`real_time_ms`). The `simd_tier`
 * key is read from the "context" object in both.
 * @throws std::runtime_error on malformed or unrecognized documents.
 */
Report parseReport(const std::string &label, const std::string &json);

/** One baseline/current pair for a benchmark present in both reports. */
struct Delta
{
    std::string name;
    double baselineMs = 0.0;
    double currentMs = 0.0;
    double changePct = 0.0; ///< Positive = current is slower.
    bool regression = false;
};

/** The full outcome of comparing two reports. */
struct CompareResult
{
    bool tierMismatch = false;  ///< Tiers differ: deltas are empty.
    std::string baselineTier;
    std::string currentTier;
    std::vector<Delta> deltas;              ///< Benchmarks in both.
    std::vector<std::string> onlyBaseline;  ///< Dropped benchmarks.
    std::vector<std::string> onlyCurrent;   ///< New benchmarks.
    std::size_t regressions = 0;            ///< Deltas over threshold.
};

/**
 * Compares `current` against `baseline`; a benchmark regresses when it
 * got more than `max_regress_pct` percent slower. Benchmarks only
 * present on one side are listed, never failed: renames and additions
 * are not perf regressions.
 */
CompareResult compareReports(const Report &baseline,
                             const Report &current,
                             double max_regress_pct);

/** Human-readable (and CI-log-friendly) rendering of a comparison. */
std::string formatResult(const CompareResult &result,
                         double max_regress_pct);

} // namespace dtrank::bench_compare
