/**
 * @file
 * dtrank_serve: the batched ranking-as-a-service daemon.
 *
 * Loads the score database once, keeps the trained-model cache warm
 * across requests, and answers rank queries over the length-prefixed
 * binary protocol (src/serve/protocol.h) with the exact arithmetic of
 * the offline experiment harness. Concurrent MLP^T requests sharing a
 * session are coalesced into one GEMM; a bounded admission queue sheds
 * the oldest request with an explicit OVERLOADED response when the
 * daemon falls behind.
 *
 *   dtrank_serve --dataset scaled:10000 --port 7411 --workers 4
 *   dtrank_serve --db machines.dtc --port 7411
 *
 * Runs in the foreground until SIGINT/SIGTERM, then shuts down
 * gracefully (queued requests get OVERLOADED, in-flight batches
 * finish) and writes --metrics-out.
 */

#include <iostream>
#include <optional>
#include <string>

#include "dataset/columnar_io.h"
#include "experiments/bench_options.h"
#include "serve/rank_engine.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <pthread.h>
#endif

using namespace dtrank;

int
main(int argc, char **argv)
{
    util::ArgParser args("dtrank_serve");
    args.addOption("port", "TCP port (0 = ephemeral, printed)", "0");
    args.addOption("workers", "worker tasks executing rank batches",
                   "4");
    args.addOption("batch-max",
                   "most requests one coalesced batch may carry "
                   "(1 disables coalescing)",
                   "64");
    args.addOption("batch-hold-us",
                   "microseconds a worker holds a partial batch open "
                   "for stragglers",
                   "500");
    args.addOption("queue-depth",
                   "admission-control bound; the oldest queued request "
                   "is shed beyond it",
                   "256");
    args.addOption("session-capacity",
                   "rank sessions kept warm (FIFO eviction)", "128");
    args.addOption("db",
                   "score database file (CSV or columnar); overrides "
                   "--dataset and disables GA-kNN (no benchmark "
                   "characteristics)",
                   "");
    args.addOption("seed", "scaled dataset seed", "2011");
    args.addOption("missing-policy",
                   "ragged database handling: reject (refuse to serve) "
                   "or impute (fill unobserved cells with their "
                   "benchmark's observed mean)",
                   "reject");
    args.addFlag("verbose", "log per-connection progress");
    experiments::addBenchOptions(args);
    if (!args.parse(argc, argv))
        return 0;

#if defined(__unix__) || defined(__APPLE__)
    try {
        if (args.getFlag("verbose"))
            util::setLogLevel(util::LogLevel::Info);
        experiments::applyObservabilityOptions(args);
        experiments::applySimdOption(args);

        serve::RankEngineConfig engine_config;
        engine_config.sessionCapacity = static_cast<std::size_t>(
            args.getLong("session-capacity"));
        experiments::applyModelCacheOption(args, engine_config.suite);

        std::optional<linalg::Matrix> characteristics;
        std::optional<dataset::PerfDatabase> db;
        const std::string db_path = args.get("db");
        if (!db_path.empty()) {
            db = dataset::loadDatabaseAuto(db_path);
            std::cout << "loaded " << db_path << ": "
                      << db->machineCount() << " machines x "
                      << db->benchmarkCount() << " benchmarks"
                      << " (GA-kNN disabled: no characteristics)\n";
        } else {
            const auto seed =
                static_cast<std::uint64_t>(args.getLong("seed"));
            experiments::BenchDataset data =
                experiments::loadDatasetOption(args, seed);
            std::cout << "loaded " << data.description << ": "
                      << data.db.machineCount() << " machines x "
                      << data.db.benchmarkCount() << " benchmarks\n";
            characteristics = std::move(data.characteristics);
            db = std::move(data.db);
        }

        // The engine serves dense arithmetic; a ragged database is
        // either refused outright or imputed once at startup.
        const std::string missing_policy = args.get("missing-policy");
        util::require(missing_policy == "reject" ||
                          missing_policy == "impute",
                      "--missing-policy must be 'reject' or 'impute'");
        if (db->masked()) {
            util::require(missing_policy == "impute",
                          "database has unobserved score cells; rerun "
                          "with --missing-policy impute or serve a "
                          "fully observed database");
            db = dataset::imputeObserved(*db);
            std::cout << "imputed unobserved cells with per-benchmark "
                         "observed means (--missing-policy impute)\n";
        }

        serve::RankEngine engine(std::move(*db),
                                 std::move(characteristics),
                                 std::move(engine_config));

        serve::ServerConfig server_config;
        server_config.port =
            static_cast<std::uint16_t>(args.getLong("port"));
        server_config.workers =
            static_cast<std::size_t>(args.getLong("workers"));
        server_config.coalescer.queueDepth =
            static_cast<std::size_t>(args.getLong("queue-depth"));
        server_config.coalescer.batchMax =
            static_cast<std::size_t>(args.getLong("batch-max"));
        server_config.coalescer.batchHold =
            std::chrono::microseconds(args.getLong("batch-hold-us"));

        // Block the shutdown signals before the server spawns its
        // threads so every thread inherits the mask and sigwait() is
        // the only consumer.
        sigset_t signals;
        sigemptyset(&signals);
        sigaddset(&signals, SIGINT);
        sigaddset(&signals, SIGTERM);
        pthread_sigmask(SIG_BLOCK, &signals, nullptr);

        serve::Server server(engine, server_config);
        server.start();
        // Machine-parseable so scripts can discover an ephemeral port.
        std::cout << "LISTENING port=" << server.port() << std::endl;

        int received = 0;
        sigwait(&signals, &received);
        std::cout << "signal " << received
                  << " received, shutting down\n";
        server.stop();
        experiments::writeObservabilityOutputs(args);
        return 0;
    } catch (const util::Error &e) {
        std::cerr << "dtrank_serve: " << e.what() << "\n";
        return 1;
    }
#else
    std::cerr << "dtrank_serve requires POSIX sockets\n";
    return 1;
#endif
}
