/**
 * @file
 * dtrank_analyze: token-level static analysis engine.
 *
 * Successor to the line/regex dtrank_lint (tools/lint is now a
 * compatibility shim over this engine). Rules run over the token
 * stream produced by lexer.h — so comments, string bodies, raw
 * strings and preprocessor lines are classified correctly — and over
 * the project include graph extracted by include_graph.h, which
 * regex rules could never see.
 *
 * Rule catalog (see DESIGN.md "Static analysis & determinism
 * contracts" for rationale):
 *
 * Ported line rules (token-accurate, same IDs and scopes as the old
 * linter):
 *   no-raw-rand, no-cout-in-src, no-float-kernel, no-naked-new,
 *   no-std-mutex, no-raw-intrinsics, no-raw-clock, pragma-once
 *
 * Cross-file rules (include graph):
 *   layering          an #include that points from a module to one
 *                     above it in the module DAG
 *                     util -> obs -> simd -> linalg -> stats ->
 *                     ml/dataset -> baseline/core -> experiments,
 *                     or a mutual include between same-layer modules
 *   include-cycle     a cycle among project headers
 *   unused-include    a direct include of a project header none of
 *                     whose declared names the includer mentions
 *
 * Determinism-contract rules:
 *   no-fp-accumulate  `+=`/`-=` onto a double scalar inside a loop in
 *                     src/ outside src/simd — scalar reductions
 *                     reorder under vectorization/threading and must
 *                     go through the KernelTable canonical reductions
 *   no-unordered-iteration
 *                     iteration over std::unordered_{map,set,...} —
 *                     iteration order is nondeterministic, so results
 *                     that feed arithmetic or output drift across
 *                     platforms and runs
 *   no-unguarded-static
 *                     mutable file-scope/static state in src/ with no
 *                     const/constexpr, no std::atomic, no
 *                     DTRANK_GUARDED_BY annotation and no util::Mutex
 *
 * Suppression: append `// dtrank-analyze-ignore` (all rules) or
 * `// dtrank-analyze-ignore(rule-id)` to the offending line, or put
 * the comment alone on the line directly above it. The historical
 * `dtrank-lint-ignore` spelling is honored too, so existing
 * suppressions keep working.
 *
 * Baseline: legacy findings are tracked in a checked-in baseline file
 * (tools/analyze/baseline.txt, one `rule path:line` entry per line,
 * `#` comments allowed). Findings whose key appears in the baseline
 * are filtered out; anything new fails. `--write-baseline`
 * regenerates the file.
 */

#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace dtrank::analyze
{

/** One rule violation at a specific source location. */
struct Finding
{
    std::string rule;    ///< Rule ID, e.g. "layering".
    std::string file;    ///< Repo-relative path as given to the engine.
    std::size_t line;    ///< 1-based line number.
    std::string message; ///< Human-readable explanation.
};

/** One in-memory source file (paths are repo-relative, '/'-separated). */
struct SourceFile
{
    std::string path;
    std::string content;
};

/** Which rules to run. */
enum class RuleSet
{
    Legacy, ///< Only the rules ported from dtrank_lint (shim mode).
    All,    ///< Ported + include-graph + determinism-contract rules.
};

/** `file:line: [rule] message` — the format CI and editors parse. */
std::string formatFinding(const Finding &finding);

/** The IDs of every rule in `set`, in report order. */
std::vector<std::string> ruleIds(RuleSet set);

/**
 * Analyzes a set of sources together: per-file rules on each file,
 * include-graph rules across the set (project includes that resolve
 * to files outside the set are layer-checked by path but skipped by
 * unused-include, which needs the header's contents). Findings are
 * sorted by file, then line, then rule.
 */
std::vector<Finding> analyzeSources(const std::vector<SourceFile> &files,
                                    RuleSet set);

/** Analyzes one in-memory file (include-graph rules see only it). */
std::vector<Finding> analyzeContent(const std::string &path,
                                    const std::string &content,
                                    RuleSet set);

/**
 * Walks root/<dir> for every dir in `top_dirs` (default: src, tools,
 * bench), reads every .h/.hpp/.cpp/.cc file — skipping directories
 * named "fixtures" or "build" — and analyzes them together.
 * @throws util::IoError when a file cannot be read.
 */
std::vector<Finding>
analyzeTree(const std::string &root,
            const std::vector<std::string> &top_dirs = {},
            RuleSet set = RuleSet::All);

/** Findings as a JSON document `{"findings": [...], "count": N}`. */
std::string toJson(const std::vector<Finding> &findings);

/** Findings as a SARIF 2.1.0 document (one run, one result each). */
std::string toSarif(const std::vector<Finding> &findings);

/** The baseline key of a finding: `rule path:line`. */
std::string baselineKey(const Finding &finding);

/** Parses a baseline document (one key per line, `#` comments). */
std::set<std::string> parseBaseline(const std::string &text);

/** Renders findings as a baseline document (sorted, commented). */
std::string renderBaseline(const std::vector<Finding> &findings);

/** Drops findings whose baselineKey appears in `baseline`. */
std::vector<Finding>
filterBaselined(const std::vector<Finding> &findings,
                const std::set<std::string> &baseline);

} // namespace dtrank::analyze
