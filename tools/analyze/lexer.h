/**
 * @file
 * Token-stream lexer for the dtrank static analysis engine.
 *
 * The predecessor linter matched regexes against blanked-out source
 * lines, which cannot tell an identifier from a string body once raw
 * strings, line continuations or digit separators appear. This lexer
 * produces a real C++ token stream — identifiers, numbers, string /
 * char / raw-string literals, punctuation, comments, and preprocessor
 * material classified as such — with 1-based source lines attached,
 * so every rule in tools/analyze matches tokens, never text.
 *
 * It is a lexer for analysis, not compilation: tokens keep their
 * spelling, keywords are identifiers (rules compare spellings), and
 * broken input (unterminated literals) resyncs at the next newline
 * instead of failing, so the engine can lint deliberately-broken test
 * fixtures.
 *
 * Handled precisely because rules depend on it:
 *  - `//` and `/ * * /` comments (comment text is kept: suppression
 *    directives live there); block comments do not nest.
 *  - string/char literals with escapes, encoding prefixes (L, u, U,
 *    u8) and raw strings `R"delim(...)delim"` of any delimiter.
 *  - backslash-newline splices anywhere, including inside literals,
 *    comments and preprocessor directives.
 *  - digit separators (`1'000'000`) inside pp-numbers, so the `'` is
 *    not mistaken for a char literal.
 *  - preprocessor lines: every token on one carries `preprocessor =
 *    true`, and the operand of `#include` is lexed as a HeaderName
 *    token (`<vector>` or `"util/rng.h"`, delimiters included) rather
 *    than as comparison operators or a string literal.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dtrank::analyze
{

enum class TokenKind
{
    Identifier, ///< Identifiers and keywords, spelling preserved.
    Number,     ///< pp-number: integers, floats, separators, exponents.
    String,     ///< Ordinary (possibly prefixed) string literal body.
    RawString,  ///< Raw string literal body (between the delimiters).
    CharLiteral, ///< Character literal body.
    Punct,       ///< Operators and punctuation, maximal munch.
    HeaderName,  ///< `#include` operand, delimiters included.
    Comment,     ///< Comment body, `//`/`/*` delimiters stripped.
};

/** One lexed token. */
struct Token
{
    TokenKind kind = TokenKind::Punct;
    /** The token's spelling (literal kinds: the body, no quotes). */
    std::string text;
    /** 1-based line the token starts on. */
    std::size_t line = 1;
    /** True for tokens belonging to a preprocessor directive line. */
    bool preprocessor = false;
};

/** Lexes a whole source file. Never throws on malformed input. */
std::vector<Token> lex(const std::string &content);

/** Number of lines in `content` (a trailing newline adds no line). */
std::size_t lineCount(const std::string &content);

/** True when the token is an identifier spelled `text`. */
bool isIdent(const Token &token, const std::string &text);

/** True when the token is punctuation spelled `text`. */
bool isPunct(const Token &token, const std::string &text);

} // namespace dtrank::analyze
