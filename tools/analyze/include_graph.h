/**
 * @file
 * Project include-graph extraction and layering rules.
 *
 * dtrank's modules form a strict DAG; the build system cannot enforce
 * it (every static library sees the whole src/ include path), so the
 * analyzer does. Edges are the `#include "..."` operands lexed as
 * HeaderName tokens; angle-bracket includes are system headers and are
 * never edges.
 *
 * The enforced order (lower may never include higher):
 *
 *     layer 0  util
 *     layer 1  obs
 *     layer 2  simd
 *     layer 3  linalg
 *     layer 4  stats
 *     layer 5  ml, dataset
 *     layer 6  baseline, core
 *     layer 7  experiments
 *     layer 8  serve
 *     layer 9  applications: tools/, tests/, bench/, examples/
 *
 * Note the deliberate departure from "simd at the top": the SIMD
 * kernels are a leaf provider (linalg dispatches into them through the
 * KernelTable), so simd sits *below* linalg — an include from simd up
 * into linalg would be the real layering bug.
 *
 * Same-layer modules (ml/dataset, baseline/core) may include each
 * other in one direction; a mutual pair is reported as a module cycle.
 * File-level include cycles are reported separately (they can exist
 * even inside a single module).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"

namespace dtrank::analyze
{

/** One `#include "..."` edge from a project file to a project path. */
struct IncludeEdge
{
    std::string from;   ///< Repo-relative path of the including file.
    std::string target; ///< Include operand as written, e.g. "util/rng.h".
    std::size_t line;   ///< 1-based line of the directive.
};

/**
 * The module of a repo-relative path: "util" for src/util/...,
 * "tools" for tools/..., "" when the path matches no known module.
 */
std::string moduleOf(const std::string &path);

/** The DAG layer of a module; -1 when the module is unknown. */
int moduleLayer(const std::string &module);

/** Extracts every project (quoted) include edge of one file. */
std::vector<IncludeEdge> includeEdges(const SourceFile &file);

/**
 * Runs the cross-file rules over a source set:
 *  - "layering": edges whose target module sits above the including
 *    module, or in a different module of the same layer when the
 *    reverse edge also exists elsewhere in the set (module cycle).
 *  - "include-cycle": file-level cycles among the set's headers.
 *  - "unused-include": direct includes of a header present in the set
 *    none of whose provided names appear in the including file.
 *
 * `sources` is the whole analysis set; findings refer to files in it.
 */
std::vector<Finding>
includeGraphFindings(const std::vector<SourceFile> &sources);

} // namespace dtrank::analyze
