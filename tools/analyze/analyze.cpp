#include "tools/analyze/analyze.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "tools/analyze/include_graph.h"
#include "tools/analyze/lexer.h"
#include "util/error.h"

namespace dtrank::analyze
{

namespace
{

/** True when `path` (repo-relative, '/'-separated) is under `dir`. */
bool
underDir(const std::string &path, std::string_view dir)
{
    return path.size() > dir.size() &&
           path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/';
}

bool
isHeaderPath(const std::string &path)
{
    return path.ends_with(".h") || path.ends_with(".hpp");
}

bool
startsWith(const std::string &text, std::string_view prefix)
{
    return text.compare(0, prefix.size(), prefix) == 0;
}

/** `prefix + quoted + suffix` with the middle part single-quoted. */
std::string
quotedMessage(std::string_view prefix, std::string_view quoted,
              std::string_view suffix)
{
    std::string message(prefix);
    message.append("'").append(quoted).append("' ").append(suffix);
    return message;
}

/**
 * One source line as the line rules see it: the code tokens starting
 * on it, and the comment text attached to it (the channel suppression
 * directives live in). Multi-line block comments contribute each of
 * their text lines to the corresponding source line, exactly like the
 * old line lexer did.
 */
struct LineView
{
    std::vector<const Token *> code;
    std::string comment;
};

std::vector<LineView>
buildLineViews(const std::vector<Token> &tokens, std::size_t lines)
{
    std::vector<LineView> views(std::max<std::size_t>(lines, 1));
    for (const Token &token : tokens) {
        if (token.kind == TokenKind::Comment) {
            std::size_t line = token.line;
            std::size_t start = 0;
            while (true) {
                const std::size_t newline =
                    token.text.find('\n', start);
                const std::size_t end = newline == std::string::npos
                                            ? token.text.size()
                                            : newline;
                if (line - 1 < views.size())
                    views[line - 1].comment.append(token.text, start,
                                                   end - start);
                if (newline == std::string::npos)
                    break;
                start = newline + 1;
                ++line;
            }
            continue;
        }
        if (token.line - 1 < views.size())
            views[token.line - 1].code.push_back(&token);
    }
    return views;
}

/** True when the comment carries a suppression that covers `rule`. */
bool
suppresses(const std::string &comment, const std::string &rule)
{
    static constexpr std::string_view kDirectives[] = {
        "dtrank-analyze-ignore",
        "dtrank-lint-ignore", // historical spelling, still honored
    };
    for (const std::string_view directive : kDirectives) {
        std::size_t pos = 0;
        while ((pos = comment.find(directive, pos)) !=
               std::string::npos) {
            const std::size_t after = pos + directive.size();
            if (after >= comment.size() || comment[after] != '(')
                return true; // bare directive: ignore every rule
            const std::size_t close = comment.find(')', after);
            if (close == std::string::npos)
                return true; // malformed; err toward the author
            const std::string listed =
                comment.substr(after + 1, close - after - 1);
            if (listed == rule)
                return true;
            pos = close;
        }
    }
    return false;
}

/** Suppression check for a finding on 1-based line `line`: its own
 *  comment, or a comment-only line directly above. */
bool
suppressedAt(const std::vector<LineView> &views, std::size_t line,
             const std::string &rule)
{
    const std::size_t index = line - 1;
    if (index >= views.size())
        return false;
    if (suppresses(views[index].comment, rule))
        return true;
    if (index > 0 && views[index - 1].code.empty() &&
        suppresses(views[index - 1].comment, rule))
        return true;
    return false;
}

// --------------------------------------------------------------------
// Ported line rules. Each matcher sees one LineView and returns a
// message ("" = clean); at most one finding per rule per line, the
// same contract the regex linter had.

const Token *
tokenAfter(const LineView &line, std::size_t index)
{
    return index + 1 < line.code.size() ? line.code[index + 1]
                                        : nullptr;
}

std::string
matchRawRand(const LineView &line)
{
    static constexpr std::string_view kEngines[] = {
        "srand", "random_device", "mt19937", "mt19937_64",
        "minstd_rand", "minstd_rand0", "default_random_engine",
        "ranlux24", "ranlux48", "knuth_b",
    };
    for (const std::string_view engine : kEngines) {
        for (const Token *token : line.code) {
            if (token->kind == TokenKind::Identifier &&
                token->text == engine)
                return quotedMessage(
                    "raw random source ", engine,
                    "bypasses util::Rng; all randomness must flow "
                    "through an explicitly seeded util::Rng");
        }
    }
    for (std::size_t i = 0; i < line.code.size(); ++i) {
        if (!isIdent(*line.code[i], "rand"))
            continue;
        const Token *next = tokenAfter(line, i);
        if (next != nullptr && isPunct(*next, "("))
            return "rand() is non-deterministic across platforms; use "
                   "util::Rng with an explicit seed";
    }
    for (std::size_t i = 0; i < line.code.size(); ++i) {
        if (!isIdent(*line.code[i], "time"))
            continue;
        const Token *paren = tokenAfter(line, i);
        if (paren == nullptr || !isPunct(*paren, "("))
            continue;
        const Token *arg = tokenAfter(line, i + 1);
        if (arg == nullptr || arg->text.empty())
            continue;
        if ((arg->kind == TokenKind::Identifier ||
             arg->kind == TokenKind::Number) &&
            (arg->text[0] == 'n' || arg->text[0] == 'N' ||
             arg->text[0] == '0'))
            return "wall-clock seeding breaks reproducibility; derive "
                   "seeds from util::Rng streams";
    }
    return "";
}

/** Index of the first `std::<name>` sequence with name in `names`,
 *  or npos; `*matched` receives the name. */
std::size_t
findStdQualified(const LineView &line,
                 const std::vector<std::string_view> &names,
                 std::string_view *matched)
{
    for (std::size_t i = 0; i + 2 < line.code.size(); ++i) {
        if (!isIdent(*line.code[i], "std") ||
            !isPunct(*line.code[i + 1], "::") ||
            line.code[i + 2]->kind != TokenKind::Identifier)
            continue;
        for (const std::string_view name : names) {
            if (line.code[i + 2]->text == name) {
                *matched = name;
                return i;
            }
        }
    }
    return std::string::npos;
}

std::string
matchCoutInSrc(const LineView &line)
{
    std::string_view matched;
    if (findStdQualified(line, {"cout"}, &matched) !=
        std::string::npos)
        return "library code must not write to stdout; use "
               "util::logging (inform/warn/debug) or take an ostream";
    static constexpr std::string_view kWriters[] = {
        "printf", "fprintf", "puts", "putchar",
    };
    for (const std::string_view writer : kWriters) {
        for (const Token *token : line.code) {
            if (token->kind == TokenKind::Identifier &&
                token->text == writer)
                return quotedMessage(
                    "", writer,
                    "in library code; use util::logging or an ostream "
                    "parameter");
        }
    }
    return "";
}

std::string
matchFloatKernel(const LineView &line)
{
    for (const Token *token : line.code) {
        if (isIdent(*token, "float"))
            return "numeric kernels are double-precision only: float "
                   "changes rounding and breaks bit-identical "
                   "reproduction of the paper tables";
    }
    return "";
}

std::string
matchRawIntrinsics(const LineView &line)
{
    for (const Token *token : line.code) {
        // Covers the header family: immintrin, xmmintrin, emmintrin...
        if ((token->kind == TokenKind::HeaderName ||
             token->kind == TokenKind::Identifier) &&
            token->text.find("mmintrin") != std::string::npos)
            return "vendor intrinsic headers may only be included "
                   "under src/simd/; call the runtime-dispatched "
                   "simd:: kernels instead";
    }
    for (const Token *token : line.code) {
        if (token->kind != TokenKind::Identifier)
            continue;
        const std::string &ident = token->text;
        const bool vector_type = startsWith(ident, "__m128") ||
                                 startsWith(ident, "__m256") ||
                                 startsWith(ident, "__m512");
        if (vector_type || startsWith(ident, "_mm"))
            return quotedMessage(
                "raw SIMD intrinsic ", ident,
                "outside src/simd/; hand-written vector code bypasses "
                "the dispatch layer's bit-identical canonical "
                "reductions — use the simd:: kernel API");
    }
    return "";
}

std::string
matchNakedNew(const LineView &line)
{
    for (const Token *token : line.code) {
        if (isIdent(*token, "new"))
            return "naked 'new' in library code; use containers, "
                   "std::make_unique or std::make_shared";
    }
    for (std::size_t i = 0; i < line.code.size(); ++i) {
        if (!isIdent(*line.code[i], "delete"))
            continue;
        if (i > 0 && isPunct(*line.code[i - 1], "="))
            continue; // `= delete` special member functions
        return "naked 'delete' in library code; ownership must be "
               "RAII-managed";
    }
    return "";
}

std::string
matchStdMutex(const LineView &line)
{
    static const std::vector<std::string_view> kPrimitives = {
        "condition_variable_any", "condition_variable",
        "recursive_timed_mutex",  "recursive_mutex",
        "shared_timed_mutex",     "shared_mutex",
        "timed_mutex",            "mutex",
        "lock_guard",             "unique_lock",
        "scoped_lock",            "shared_lock",
    };
    std::string_view matched;
    if (findStdQualified(line, kPrimitives, &matched) !=
        std::string::npos) {
        std::string qualified = "std::";
        qualified.append(matched);
        return quotedMessage(
            "", qualified,
            "bypasses the thread-safety-annotated wrappers; use "
            "util::Mutex / util::LockGuard / util::CondVar "
            "(util/mutex.h)");
    }
    return "";
}

std::string
matchRawClock(const LineView &line)
{
    static constexpr std::string_view kClocks[] = {
        "steady_clock", "high_resolution_clock",
    };
    for (const std::string_view clock : kClocks) {
        for (const Token *token : line.code) {
            if (token->kind == TokenKind::Identifier &&
                token->text == clock)
                return quotedMessage(
                    "raw monotonic clock ", clock,
                    "outside src/obs/ and bench/; read time through "
                    "the obs clock shim (obs/clock.h: monotonicNow, "
                    "monotonicNanos) so traces, metrics and bench "
                    "timings share one epoch");
        }
    }
    return "";
}

bool
appliesEverywhere(const std::string &path)
{
    return path != "src/util/rng.h";
}

bool
appliesSrcOnly(const std::string &path)
{
    return underDir(path, "src") && path != "src/util/logging.cpp";
}

bool
appliesKernels(const std::string &path)
{
    return underDir(path, "src/linalg") ||
           underDir(path, "src/stats") || underDir(path, "src/ml") ||
           underDir(path, "src/simd");
}

bool
appliesOutsideSimd(const std::string &path)
{
    return !underDir(path, "src/simd");
}

bool
appliesSrc(const std::string &path)
{
    return underDir(path, "src");
}

bool
appliesOutsideMutexWrapper(const std::string &path)
{
    return path != "src/util/mutex.h";
}

bool
appliesOutsideObsAndBench(const std::string &path)
{
    // util/clock.h is the shim itself; obs/clock.h re-exports it.
    return !underDir(path, "src/obs") && !underDir(path, "bench") &&
           path != "src/util/clock.h";
}

struct LineRule
{
    std::string id;
    bool (*applies)(const std::string &path);
    std::string (*match)(const LineView &line);
};

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> kRules = {
        {"no-raw-rand", appliesEverywhere, matchRawRand},
        {"no-cout-in-src", appliesSrcOnly, matchCoutInSrc},
        {"no-float-kernel", appliesKernels, matchFloatKernel},
        {"no-naked-new", appliesSrc, matchNakedNew},
        {"no-std-mutex", appliesOutsideMutexWrapper, matchStdMutex},
        {"no-raw-intrinsics", appliesOutsideSimd, matchRawIntrinsics},
        {"no-raw-clock", appliesOutsideObsAndBench, matchRawClock},
    };
    return kRules;
}

// --------------------------------------------------------------------
// Determinism-contract rules. These walk the whole token stream (a
// loop body or a declaration does not respect line boundaries), with
// comments and preprocessor material filtered out up front.

std::vector<const Token *>
codeTokens(const std::vector<Token> &tokens)
{
    std::vector<const Token *> code;
    for (const Token &token : tokens)
        if (token.kind != TokenKind::Comment && !token.preprocessor)
            code.push_back(&token);
    return code;
}

/** Names of scalars declared `double <name>` anywhere in the file,
 *  including the later declarators of `double a = 0.0, b = 0.0;`. */
std::unordered_set<std::string>
doubleScalars(const std::vector<const Token *> &code)
{
    std::unordered_set<std::string> names;
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (!isIdent(*code[i], "double") ||
            code[i + 1]->kind != TokenKind::Identifier)
            continue;
        names.insert(code[i + 1]->text);
        // Follow `, name` declarators at the same nesting depth; the
        // name must be followed by `,`/`;`/`=`/`[`/`{` so that
        // commas in template or call argument lists never match.
        int depth = 0;
        for (std::size_t j = i + 2; j < code.size(); ++j) {
            const Token &token = *code[j];
            if (token.kind != TokenKind::Punct)
                continue;
            if (token.text == "(" || token.text == "[" ||
                token.text == "{") {
                ++depth;
            } else if (token.text == ")" || token.text == "]" ||
                       token.text == "}") {
                if (depth == 0)
                    break;
                --depth;
            } else if (token.text == ";" && depth == 0) {
                break;
            } else if (token.text == "," && depth == 0 &&
                       j + 2 < code.size() &&
                       code[j + 1]->kind == TokenKind::Identifier &&
                       code[j + 2]->kind == TokenKind::Punct) {
                const std::string &next = code[j + 2]->text;
                if (next == "," || next == ";" || next == "=" ||
                    next == "[" || next == "{")
                    names.insert(code[j + 1]->text);
            }
        }
    }
    return names;
}

/**
 * no-fp-accumulate: `x += ...` / `x -= ...` on a double scalar inside
 * a for/while/do body. Scalar reduction order is exactly what the
 * KernelTable pins down; ad-hoc accumulation loops re-introduce
 * tier-dependent rounding. Indexed stores (`a[i] += ...`) are
 * element-wise, not reductions, and do not match (the token before
 * `+=` is `]`, not the declared scalar).
 */
void
checkFpAccumulate(const std::string &path,
                  const std::vector<const Token *> &code,
                  std::vector<Finding> &findings)
{
    const std::unordered_set<std::string> doubles =
        doubleScalars(code);
    if (doubles.empty())
        return;

    // Loop-body tracking: brace-delimited bodies as a stack of brace
    // depths, plus single-statement bodies (`for (...) x += v;`).
    int paren_depth = 0;
    int brace_depth = 0;
    std::vector<int> loop_braces;
    int inline_loops = 0; // single-statement bodies awaiting `;`
    enum class Await
    {
        None,
        Paren, // saw for/while, waiting for the control clause
        Body,  // control clause closed, next token starts the body
    };
    Await await = Await::None;
    int await_paren_depth = 0;

    for (std::size_t i = 0; i < code.size(); ++i) {
        const Token &token = *code[i];
        if (await == Await::Body) {
            await = Await::None;
            if (isPunct(token, "{")) {
                loop_braces.push_back(brace_depth);
            } else {
                ++inline_loops;
            }
        }
        if (token.kind == TokenKind::Identifier) {
            if (token.text == "for" || token.text == "while") {
                await = Await::Paren;
                await_paren_depth = paren_depth;
            } else if (token.text == "do") {
                await = Await::Body;
                continue;
            }
        } else if (token.kind == TokenKind::Punct) {
            if (token.text == "(") {
                ++paren_depth;
            } else if (token.text == ")") {
                --paren_depth;
                if (await == Await::Paren &&
                    paren_depth == await_paren_depth)
                    await = Await::Body;
            } else if (token.text == "{") {
                ++brace_depth;
            } else if (token.text == "}") {
                --brace_depth;
                while (!loop_braces.empty() &&
                       loop_braces.back() >= brace_depth)
                    loop_braces.pop_back();
            } else if (token.text == ";" && paren_depth == 0) {
                inline_loops = 0;
            }
        }

        const bool in_loop = !loop_braces.empty() || inline_loops > 0;
        if (!in_loop || token.kind != TokenKind::Identifier)
            continue;
        if (i + 1 >= code.size() ||
            code[i + 1]->kind != TokenKind::Punct)
            continue;
        const std::string &op = code[i + 1]->text;
        if (op != "+=" && op != "-=")
            continue;
        if (doubles.count(token.text) == 0)
            continue;
        findings.push_back(
            {"no-fp-accumulate", path, token.line,
             quotedMessage(
                 "scalar floating-point accumulation ", token.text,
                 "inside a loop; its rounding order changes with "
                 "vectorization and threading — route reductions "
                 "through the simd:: kernel table")});
    }
}

/**
 * no-unordered-iteration: range-for over, or begin()/cbegin() on, a
 * variable declared as an unordered associative container. Bucket
 * order varies with libstdc++ version, hash seed and insertion
 * history, so anything order-sensitive downstream drifts.
 */
void
checkUnorderedIteration(const std::string &path,
                        const std::vector<const Token *> &code,
                        std::vector<Finding> &findings)
{
    static const std::unordered_set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };

    // Variables declared with an unordered type: skip the template
    // argument list, then take the next identifier as the name.
    std::unordered_set<std::string> variables;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i]->kind != TokenKind::Identifier ||
            kUnorderedTypes.count(code[i]->text) == 0)
            continue;
        std::size_t j = i + 1;
        if (j < code.size() && isPunct(*code[j], "<")) {
            int depth = 0;
            for (; j < code.size(); ++j) {
                if (code[j]->kind != TokenKind::Punct)
                    continue;
                if (code[j]->text == "<")
                    ++depth;
                else if (code[j]->text == ">")
                    --depth;
                else if (code[j]->text == ">>")
                    depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        // Reference/pointer declarators and trailing cv-qualifiers
        // sit between the type and the name: `unordered_map<K, V>
        // &m`, `const unordered_set<T> *s`.
        while (j < code.size() &&
               (isPunct(*code[j], "&") || isPunct(*code[j], "&&") ||
                isPunct(*code[j], "*") ||
                isIdent(*code[j], "const")))
            ++j;
        if (j < code.size() && code[j]->kind == TokenKind::Identifier)
            variables.insert(code[j]->text);
    }
    if (variables.empty())
        return;

    for (std::size_t i = 0; i < code.size(); ++i) {
        // `x.begin()` / `x.cbegin()` on an unordered variable.
        if (code[i]->kind == TokenKind::Identifier &&
            variables.count(code[i]->text) != 0 &&
            i + 2 < code.size() && isPunct(*code[i + 1], ".") &&
            (isIdent(*code[i + 2], "begin") ||
             isIdent(*code[i + 2], "cbegin"))) {
            findings.push_back(
                {"no-unordered-iteration", path, code[i]->line,
                 quotedMessage(
                     "iteration over unordered container ",
                     code[i]->text,
                     "is order-nondeterministic; iterate a sorted "
                     "copy or use an ordered container")});
            continue;
        }
        // Range-for whose range expression mentions such a variable.
        if (!isIdent(*code[i], "for") || i + 1 >= code.size() ||
            !isPunct(*code[i + 1], "("))
            continue;
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < code.size(); ++j) {
            if (code[j]->kind != TokenKind::Punct)
                continue;
            if (code[j]->text == "(") {
                ++depth;
            } else if (code[j]->text == ")") {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (code[j]->text == ":" && depth == 1 &&
                       colon == 0) {
                colon = j;
            }
        }
        if (colon == 0 || close == 0)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (code[j]->kind == TokenKind::Identifier &&
                variables.count(code[j]->text) != 0) {
                findings.push_back(
                    {"no-unordered-iteration", path, code[i]->line,
                     quotedMessage(
                         "range-for over unordered container ",
                         code[j]->text,
                         "is order-nondeterministic; iterate a "
                         "sorted copy or use an ordered container")});
                break;
            }
        }
    }
}

/** Identifiers that mark a declaration as immutable, synchronized, or
 *  not state at all. */
bool
isStaticGuard(const std::string &text)
{
    static const std::unordered_set<std::string> kGuards = {
        "const",       "constexpr", "constinit", "thread_local",
        "atomic",      "once_flag", "Mutex",     "CondVar",
        "DTRANK_GUARDED_BY",        "using",     "typedef",
        "struct",      "class",     "enum",      "union",
        "extern",      "template",  "friend",    "concept",
        "static_assert",            "requires",  "operator",
        "namespace",
    };
    return kGuards.count(text) != 0;
}

/**
 * no-unguarded-static: mutable static or file-scope state with no
 * const/constexpr/constinit, no thread_local, no std::atomic, no
 * util::Mutex/CondVar being declared, and no DTRANK_GUARDED_BY
 * annotation. Two independent passes:
 *   (a) every `static` declaration, wherever it sits (file scope,
 *       function-local, class member) — if `(` appears before
 *       `;`/`{`/`=` it declares a function and is exempt;
 *   (b) namespace-scope declarations without `static` (anonymous
 *       namespaces make the keyword optional): statements whose every
 *       enclosing brace belongs to a namespace, skipping function
 *       bodies wholesale (pass (a) still sees inside them).
 */
void
checkUnguardedStatic(const std::string &path,
                     const std::vector<const Token *> &code,
                     std::vector<Finding> &findings)
{
    const char *const kAdvice =
        " without a guard: mark it const/constexpr/constinit, make "
        "it std::atomic or thread_local, or protect it with an "
        "annotated util::Mutex (DTRANK_GUARDED_BY)";

    // Pass (a): `static` declarations anywhere.
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (!isIdent(*code[i], "static"))
            continue;
        bool guarded = false;
        bool is_function = false;
        for (std::size_t j = i + 1; j < code.size(); ++j) {
            const Token &t = *code[j];
            if (t.kind == TokenKind::Identifier) {
                if (isStaticGuard(t.text))
                    guarded = true;
                continue;
            }
            if (t.kind != TokenKind::Punct)
                continue;
            if (t.text == "(") {
                is_function = true;
                break;
            }
            if (t.text == ";" || t.text == "{" || t.text == "=")
                break;
        }
        if (!guarded && !is_function)
            findings.push_back({"no-unguarded-static", path,
                                code[i]->line,
                                std::string("mutable static state") +
                                    kAdvice});
    }

    // Pass (b): namespace-scope declarations without `static`.

    // Brace kinds: true = namespace-like (namespace X {, extern "C" {).
    std::vector<bool> brace_is_namespace;

    auto namespaceBraceAt = [&](std::size_t open) {
        std::size_t j = open;
        while (j > 0) {
            const Token &prev = *code[j - 1];
            if (isIdent(prev, "namespace"))
                return true;
            if (prev.kind == TokenKind::Identifier ||
                isPunct(prev, "::")) {
                --j;
                continue;
            }
            if (prev.kind == TokenKind::String && j >= 2 &&
                isIdent(*code[j - 2], "extern"))
                return true; // extern "C" { ... }
            return false;
        }
        return false;
    };

    auto atNamespaceScope = [&]() {
        return std::all_of(brace_is_namespace.begin(),
                           brace_is_namespace.end(),
                           [](bool ns) { return ns; });
    };

    // Skips a balanced region starting at an open token index;
    // returns the index of the matching close (or the end).
    auto skipBalanced = [&](std::size_t open, const char *open_text,
                            const char *close_text) {
        int depth = 0;
        std::size_t j = open;
        for (; j < code.size(); ++j) {
            if (isPunct(*code[j], open_text))
                ++depth;
            else if (isPunct(*code[j], close_text) && --depth == 0)
                break;
        }
        return j;
    };

    std::size_t i = 0;
    while (i < code.size()) {
        const Token &token = *code[i];
        if (isPunct(token, "{")) {
            brace_is_namespace.push_back(namespaceBraceAt(i));
            ++i;
            continue;
        }
        if (isPunct(token, "}")) {
            if (!brace_is_namespace.empty())
                brace_is_namespace.pop_back();
            ++i;
            continue;
        }

        // A statement starts at an identifier directly after `;`,
        // `{`, `}` or the file start — never mid-declaration (that
        // exempts `namespace fs = ...` aliases and qualified names).
        const Token *prev = i > 0 ? code[i - 1] : nullptr;
        const bool at_boundary =
            prev == nullptr || isPunct(*prev, ";") ||
            isPunct(*prev, "{") || isPunct(*prev, "}");
        const bool statement_start =
            at_boundary && atNamespaceScope() &&
            token.kind == TokenKind::Identifier &&
            !isStaticGuard(token.text) && token.text != "static";
        if (!statement_start) {
            ++i;
            continue;
        }

        // Scan the declaration up to its first structural token.
        bool guarded = false;
        bool has_static = false;
        bool is_function = false;
        std::size_t j = i;
        for (; j < code.size(); ++j) {
            const Token &t = *code[j];
            if (t.kind == TokenKind::Identifier) {
                if (t.text == "static")
                    has_static = true;
                else if (isStaticGuard(t.text))
                    guarded = true;
                continue;
            }
            if (t.kind != TokenKind::Punct)
                continue;
            if (t.text == "(") {
                is_function = true;
                break;
            }
            if (t.text == ";" || t.text == "{" || t.text == "=")
                break;
        }

        if (!is_function && !guarded && !has_static &&
            j < code.size())
            findings.push_back(
                {"no-unguarded-static", path, token.line,
                 std::string("mutable file-scope state") + kAdvice});

        // Move past the whole statement: balanced init braces or the
        // function's parameter list and body.
        for (; j < code.size(); ++j) {
            const Token &t = *code[j];
            if (isPunct(t, "(")) {
                j = skipBalanced(j, "(", ")");
                continue;
            }
            if (isPunct(t, "{")) {
                j = skipBalanced(j, "{", "}");
                // A definition body may end without `;`.
                if (j + 1 < code.size() && isPunct(*code[j + 1], ";"))
                    ++j;
                break;
            }
            if (isPunct(t, ";"))
                break;
        }
        i = j + 1;
    }
}

// --------------------------------------------------------------------

struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<LineView> lines;
};

LexedFile
lexFile(const std::string &content)
{
    LexedFile file;
    file.tokens = lex(content);
    file.lines = buildLineViews(file.tokens, lineCount(content));
    return file;
}

void
runLineRules(const std::string &path, const LexedFile &file,
             std::vector<Finding> &findings)
{
    for (const LineRule &rule : lineRules()) {
        if (!rule.applies(path))
            continue;
        for (std::size_t i = 0; i < file.lines.size(); ++i) {
            const std::string message = rule.match(file.lines[i]);
            if (message.empty() ||
                suppressedAt(file.lines, i + 1, rule.id))
                continue;
            findings.push_back({rule.id, path, i + 1, message});
        }
    }

    if (isHeaderPath(path)) {
        bool has_pragma = false;
        for (const LineView &line : file.lines) {
            for (std::size_t i = 0; i + 2 < line.code.size(); ++i) {
                if (isPunct(*line.code[i], "#") &&
                    isIdent(*line.code[i + 1], "pragma") &&
                    isIdent(*line.code[i + 2], "once")) {
                    has_pragma = true;
                    break;
                }
            }
            if (has_pragma)
                break;
        }
        if (!has_pragma &&
            !suppresses(file.lines.front().comment, "pragma-once"))
            findings.push_back(
                {"pragma-once", path, 1,
                 "header must contain #pragma once (include-guard "
                 "macros drift when files move)"});
    }
}

void
runDeterminismRules(const std::string &path, const LexedFile &file,
                    std::vector<Finding> &findings)
{
    if (!underDir(path, "src"))
        return;
    const std::vector<const Token *> code = codeTokens(file.tokens);
    std::vector<Finding> raw;
    if (!underDir(path, "src/simd"))
        checkFpAccumulate(path, code, raw);
    checkUnorderedIteration(path, code, raw);
    checkUnguardedStatic(path, code, raw);
    for (Finding &finding : raw)
        if (!suppressedAt(file.lines, finding.line, finding.rule))
            findings.push_back(std::move(finding));
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static constexpr char kHex[] = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xF];
                out += kHex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
formatFinding(const Finding &finding)
{
    std::ostringstream out;
    out << finding.file << ":" << finding.line << ": ["
        << finding.rule << "] " << finding.message;
    return out.str();
}

std::vector<std::string>
ruleIds(RuleSet set)
{
    std::vector<std::string> ids;
    for (const LineRule &rule : lineRules())
        ids.push_back(rule.id);
    ids.push_back("pragma-once");
    if (set == RuleSet::All) {
        ids.push_back("layering");
        ids.push_back("include-cycle");
        ids.push_back("unused-include");
        ids.push_back("no-fp-accumulate");
        ids.push_back("no-unordered-iteration");
        ids.push_back("no-unguarded-static");
    }
    return ids;
}

std::vector<Finding>
analyzeSources(const std::vector<SourceFile> &files, RuleSet set)
{
    std::vector<Finding> findings;
    // Line views per path, kept for suppression of cross-file rules.
    std::vector<std::pair<std::string, LexedFile>> lexed;
    lexed.reserve(files.size());
    for (const SourceFile &file : files)
        lexed.emplace_back(file.path, lexFile(file.content));

    for (const auto &[path, file] : lexed) {
        runLineRules(path, file, findings);
        if (set == RuleSet::All)
            runDeterminismRules(path, file, findings);
    }

    if (set == RuleSet::All) {
        for (Finding &finding : includeGraphFindings(files)) {
            const auto it = std::find_if(
                lexed.begin(), lexed.end(),
                [&](const auto &entry) {
                    return entry.first == finding.file;
                });
            if (it != lexed.end() &&
                suppressedAt(it->second.lines, finding.line,
                             finding.rule))
                continue;
            findings.push_back(std::move(finding));
        }
    }

    sortFindings(findings);
    return findings;
}

std::vector<Finding>
analyzeContent(const std::string &path, const std::string &content,
               RuleSet set)
{
    return analyzeSources({{path, content}}, set);
}

std::vector<Finding>
analyzeTree(const std::string &root,
            const std::vector<std::string> &top_dirs, RuleSet set)
{
    namespace fs = std::filesystem;
    static const std::vector<std::string> kDefaultDirs = {
        "src", "tools", "bench"};
    static constexpr std::string_view kExtensions[] = {
        ".h", ".hpp", ".cpp", ".cc",
    };

    const std::vector<std::string> &dirs =
        top_dirs.empty() ? kDefaultDirs : top_dirs;
    std::vector<std::string> paths;
    for (const std::string &top : dirs) {
        const fs::path dir = fs::path(root) / top;
        if (fs::is_regular_file(dir)) {
            paths.push_back(top); // an explicit file target
            continue;
        }
        if (!fs::is_directory(dir))
            throw util::IoError("no such file or directory: " +
                                dir.string());
        auto it = fs::recursive_directory_iterator(dir);
        for (const fs::directory_entry &entry : it) {
            const std::string name = entry.path().filename().string();
            if (entry.is_directory() &&
                (name == "fixtures" || name == "build")) {
                it.disable_recursion_pending();
                continue;
            }
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (std::find(std::begin(kExtensions),
                          std::end(kExtensions),
                          ext) == std::end(kExtensions))
                continue;
            paths.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const std::string &path : paths) {
        const fs::path full = fs::path(root) / path;
        std::ifstream in(full, std::ios::binary);
        if (!in)
            throw util::IoError("cannot read " + full.string());
        std::ostringstream buffer;
        buffer << in.rdbuf();
        files.push_back({path, buffer.str()});
    }
    return analyzeSources(files, set);
}

std::string
toJson(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    out << "{\n  \"count\": " << findings.size()
        << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &finding = findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"rule\": \"" << jsonEscape(finding.rule)
            << "\", \"file\": \"" << jsonEscape(finding.file)
            << "\", \"line\": " << finding.line
            << ", \"message\": \"" << jsonEscape(finding.message)
            << "\"}";
    }
    out << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

std::string
toSarif(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"dtrank_analyze\",\n"
        << "          \"rules\": [";
    const std::vector<std::string> ids = ruleIds(RuleSet::All);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n");
        out << "            {\"id\": \"" << jsonEscape(ids[i])
            << "\"}";
    }
    out << "\n          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &finding = findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "        {\"ruleId\": \"" << jsonEscape(finding.rule)
            << "\", \"level\": \"error\", \"message\": {\"text\": \""
            << jsonEscape(finding.message)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(finding.file)
            << "\"}, \"region\": {\"startLine\": " << finding.line
            << "}}}]}";
    }
    out << (findings.empty() ? "]\n" : "\n      ]\n")
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

std::string
baselineKey(const Finding &finding)
{
    return finding.rule + " " + finding.file + ":" +
           std::to_string(finding.line);
}

std::set<std::string>
parseBaseline(const std::string &text)
{
    std::set<std::string> keys;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos || line[begin] == '#')
            continue;
        const std::size_t end = line.find_last_not_of(" \t\r");
        keys.insert(line.substr(begin, end - begin + 1));
    }
    return keys;
}

std::string
renderBaseline(const std::vector<Finding> &findings)
{
    std::set<std::string> keys;
    for (const Finding &finding : findings)
        keys.insert(baselineKey(finding));
    std::ostringstream out;
    out << "# dtrank_analyze baseline: tracked legacy findings.\n"
        << "# One `rule path:line` per line; new findings fail the "
           "build.\n"
        << "# Regenerate with: dtrank_analyze --write-baseline\n";
    for (const std::string &key : keys)
        out << key << "\n";
    return out.str();
}

std::vector<Finding>
filterBaselined(const std::vector<Finding> &findings,
                const std::set<std::string> &baseline)
{
    std::vector<Finding> kept;
    for (const Finding &finding : findings)
        if (baseline.count(baselineKey(finding)) == 0)
            kept.push_back(finding);
    return kept;
}

} // namespace dtrank::analyze
