#include "lexer.h"

#include <array>
#include <cctype>
#include <string_view>

namespace dtrank::analyze
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/** String/char literal encoding prefixes ("" handles the bare case). */
bool
isLiteralPrefix(std::string_view ident)
{
    return ident == "L" || ident == "u" || ident == "U" || ident == "u8";
}

/** Raw string prefixes: R plus any encoding prefix before it. */
bool
isRawStringPrefix(std::string_view ident)
{
    return ident == "R" || ident == "LR" || ident == "uR" ||
           ident == "UR" || ident == "u8R";
}

/**
 * Multi-character punctuators, longest first so maximal munch finds
 * `+=` before `+` and `...` before `..`/`.`.
 */
constexpr std::array<std::string_view, 21> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "<<", ">>", "<=", ">=",
    "==",
};

/**
 * Cursor over the source that makes backslash-newline splices
 * invisible to token scanning while still counting the lines they
 * consume, and that tracks the current 1-based line.
 */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text)
    {
        skipSplices();
    }

    bool done() const { return pos_ >= text_.size(); }

    /** Current character ('\0' at end). Never a splice backslash. */
    char peek() const { return done() ? '\0' : text_[pos_]; }

    /** Character `ahead` positions forward, splice-aware. */
    char
    peekAhead(std::size_t ahead) const
    {
        std::size_t p = pos_; // already splice-free
        for (std::size_t k = 0; k < ahead && p < text_.size(); ++k)
            p = skipSplicesFrom(p + 1);
        return p < text_.size() ? text_[p] : '\0';
    }

    /** Consumes the current character, maintaining the line count. */
    void
    advance()
    {
        if (done())
            return;
        if (text_[pos_] == '\n')
            ++line_;
        ++pos_;
        skipSplices();
    }

    std::size_t line() const { return line_; }

  private:
    /** Skips any run of backslash-newline splices at `p`. */
    std::size_t
    skipSplicesFrom(std::size_t p) const
    {
        while (p + 1 < text_.size() && text_[p] == '\\') {
            if (text_[p + 1] == '\n') {
                p += 2;
            } else if (text_[p + 1] == '\r' && p + 2 < text_.size() &&
                       text_[p + 2] == '\n') {
                p += 3;
            } else {
                break;
            }
        }
        return p;
    }

    void
    skipSplices()
    {
        for (;;) {
            const std::size_t next = skipSplicesFrom(pos_);
            if (next == pos_)
                return;
            // Each consumed splice swallowed one newline.
            for (std::size_t p = pos_; p < next; ++p)
                if (text_[p] == '\n')
                    ++line_;
            pos_ = next;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &content) : cursor_(content) {}

    std::vector<Token>
    run()
    {
        while (!cursor_.done())
            next();
        return std::move(tokens_);
    }

  private:
    void
    emit(TokenKind kind, std::string text, std::size_t line)
    {
        Token token;
        token.kind = kind;
        token.text = std::move(text);
        token.line = line;
        token.preprocessor = in_pp_;
        tokens_.push_back(std::move(token));
    }

    void
    next()
    {
        const char c = cursor_.peek();
        if (c == '\n') {
            // A real (unspliced) newline terminates the directive.
            in_pp_ = false;
            pp_directive_.clear();
            at_line_start_ = true;
            cursor_.advance();
            return;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            cursor_.advance();
            return;
        }
        if (c == '/' && cursor_.peekAhead(1) == '/') {
            lexLineComment();
            return;
        }
        if (c == '/' && cursor_.peekAhead(1) == '*') {
            lexBlockComment();
            return;
        }
        if (c == '#' && at_line_start_) {
            in_pp_ = true;
            pp_directive_.clear();
            at_line_start_ = false;
            emit(TokenKind::Punct, "#", cursor_.line());
            cursor_.advance();
            return;
        }
        at_line_start_ = false;
        if (isIdentStart(c)) {
            lexIdentifier();
            return;
        }
        if (isDigit(c) || (c == '.' && isDigit(cursor_.peekAhead(1)))) {
            lexNumber();
            return;
        }
        if (c == '"') {
            if (in_pp_ && pp_directive_ == "include") {
                lexHeaderName('"', '"');
            } else {
                lexString("");
            }
            return;
        }
        if (c == '\'') {
            lexCharLiteral();
            return;
        }
        if (c == '<' && in_pp_ && pp_directive_ == "include") {
            lexHeaderName('<', '>');
            return;
        }
        lexPunct();
    }

    void
    lexLineComment()
    {
        const std::size_t line = cursor_.line();
        cursor_.advance(); // '/'
        cursor_.advance(); // '/'
        std::string text;
        // A spliced newline continues the comment; the Cursor already
        // hides splices, so we stop at the first real newline.
        while (!cursor_.done() && cursor_.peek() != '\n') {
            text.push_back(cursor_.peek());
            cursor_.advance();
        }
        emit(TokenKind::Comment, std::move(text), line);
    }

    void
    lexBlockComment()
    {
        const std::size_t line = cursor_.line();
        cursor_.advance(); // '/'
        cursor_.advance(); // '*'
        std::string text;
        // Block comments do not nest: the first */ ends the comment,
        // no matter how many /* appeared inside.
        while (!cursor_.done()) {
            if (cursor_.peek() == '*' && cursor_.peekAhead(1) == '/') {
                cursor_.advance();
                cursor_.advance();
                break;
            }
            text.push_back(cursor_.peek());
            cursor_.advance();
        }
        emit(TokenKind::Comment, std::move(text), line);
    }

    void
    lexIdentifier()
    {
        const std::size_t line = cursor_.line();
        std::string text;
        while (!cursor_.done() && isIdentChar(cursor_.peek())) {
            text.push_back(cursor_.peek());
            cursor_.advance();
        }
        // String-literal prefixes glue onto the following quote:
        // u8"x", L'c', R"(body)", u8R"(body)".
        if (cursor_.peek() == '"' && isRawStringPrefix(text)) {
            lexRawString(line);
            return;
        }
        if (cursor_.peek() == '"' && isLiteralPrefix(text)) {
            lexString(text);
            return;
        }
        if (cursor_.peek() == '\'' && isLiteralPrefix(text)) {
            lexCharLiteral();
            return;
        }
        if (in_pp_ && pp_directive_.empty())
            pp_directive_ = text;
        emit(TokenKind::Identifier, std::move(text), line);
    }

    void
    lexNumber()
    {
        const std::size_t line = cursor_.line();
        std::string text;
        while (!cursor_.done()) {
            const char c = cursor_.peek();
            if (isIdentChar(c) || c == '.') {
                text.push_back(c);
                cursor_.advance();
                // Exponent signs belong to the pp-number.
                if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
                    (cursor_.peek() == '+' || cursor_.peek() == '-') &&
                    text.find("0x") != 0 && text.find("0X") != 0) {
                    text.push_back(cursor_.peek());
                    cursor_.advance();
                }
                continue;
            }
            // Digit separator: 1'000'000 (quote between digit-likes).
            if (c == '\'' && !text.empty() &&
                isIdentChar(cursor_.peekAhead(1))) {
                text.push_back(c);
                cursor_.advance();
                continue;
            }
            break;
        }
        emit(TokenKind::Number, std::move(text), line);
    }

    void
    lexString(const std::string &prefix)
    {
        const std::size_t line = cursor_.line();
        (void)prefix; // encoding does not matter to the rules
        cursor_.advance(); // opening '"'
        std::string text;
        while (!cursor_.done()) {
            const char c = cursor_.peek();
            if (c == '"') {
                cursor_.advance();
                break;
            }
            if (c == '\n')
                break; // unterminated: resync at the newline
            if (c == '\\') {
                text.push_back(c);
                cursor_.advance();
                if (!cursor_.done() && cursor_.peek() != '\n') {
                    text.push_back(cursor_.peek());
                    cursor_.advance();
                }
                continue;
            }
            text.push_back(c);
            cursor_.advance();
        }
        emit(TokenKind::String, std::move(text), line);
    }

    void
    lexRawString(std::size_t line)
    {
        cursor_.advance(); // opening '"'
        std::string delim;
        while (!cursor_.done() && cursor_.peek() != '(' &&
               cursor_.peek() != '\n' && delim.size() < 16) {
            delim.push_back(cursor_.peek());
            cursor_.advance();
        }
        if (cursor_.peek() != '(') {
            // Malformed raw string: treat what we have as a string.
            emit(TokenKind::String, std::move(delim), line);
            return;
        }
        cursor_.advance(); // '('
        const std::string closer = ")" + delim + "\"";
        std::string text;
        while (!cursor_.done()) {
            if (cursor_.peek() == ')') {
                // Check for the full `)delim"` closer.
                bool matches = true;
                for (std::size_t k = 1; k < closer.size() && matches;
                     ++k)
                    matches = cursor_.peekAhead(k) == closer[k];
                if (matches) {
                    for (std::size_t k = 0; k < closer.size(); ++k)
                        cursor_.advance();
                    break;
                }
            }
            text.push_back(cursor_.peek());
            cursor_.advance();
        }
        emit(TokenKind::RawString, std::move(text), line);
    }

    void
    lexCharLiteral()
    {
        const std::size_t line = cursor_.line();
        cursor_.advance(); // opening '\''
        std::string text;
        while (!cursor_.done()) {
            const char c = cursor_.peek();
            if (c == '\'') {
                cursor_.advance();
                break;
            }
            if (c == '\n')
                break; // unterminated: resync
            if (c == '\\') {
                text.push_back(c);
                cursor_.advance();
                if (!cursor_.done() && cursor_.peek() != '\n') {
                    text.push_back(cursor_.peek());
                    cursor_.advance();
                }
                continue;
            }
            text.push_back(c);
            cursor_.advance();
        }
        emit(TokenKind::CharLiteral, std::move(text), line);
    }

    void
    lexHeaderName(char open, char close)
    {
        const std::size_t line = cursor_.line();
        std::string text(1, open);
        cursor_.advance();
        while (!cursor_.done() && cursor_.peek() != close &&
               cursor_.peek() != '\n') {
            text.push_back(cursor_.peek());
            cursor_.advance();
        }
        if (cursor_.peek() == close) {
            text.push_back(close);
            cursor_.advance();
        }
        emit(TokenKind::HeaderName, std::move(text), line);
    }

    void
    lexPunct()
    {
        const std::size_t line = cursor_.line();
        for (const std::string_view punct : kPuncts) {
            bool matches = true;
            for (std::size_t k = 0; k < punct.size() && matches; ++k)
                matches = cursor_.peekAhead(k) == punct[k];
            if (matches) {
                for (std::size_t k = 0; k < punct.size(); ++k)
                    cursor_.advance();
                emit(TokenKind::Punct, std::string(punct), line);
                return;
            }
        }
        emit(TokenKind::Punct, std::string(1, cursor_.peek()), line);
        cursor_.advance();
    }

    Cursor cursor_;
    std::vector<Token> tokens_;
    bool in_pp_ = false;
    bool at_line_start_ = true;
    std::string pp_directive_;
};

} // namespace

std::vector<Token>
lex(const std::string &content)
{
    return Lexer(content).run();
}

std::size_t
lineCount(const std::string &content)
{
    std::size_t lines = 1;
    for (const char c : content)
        if (c == '\n')
            ++lines;
    if (!content.empty() && content.back() == '\n')
        --lines;
    return lines;
}

bool
isIdent(const Token &token, const std::string &text)
{
    return token.kind == TokenKind::Identifier && token.text == text;
}

bool
isPunct(const Token &token, const std::string &text)
{
    return token.kind == TokenKind::Punct && token.text == text;
}

} // namespace dtrank::analyze
