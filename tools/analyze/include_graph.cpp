#include "tools/analyze/include_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tools/analyze/lexer.h"

namespace dtrank::analyze
{

namespace
{

/** Module -> DAG layer. See include_graph.h for the rationale. */
const std::map<std::string, int> &
layerTable()
{
    static const std::map<std::string, int> layers = {
        {"util", 0},     {"obs", 1},         {"simd", 2},
        {"linalg", 3},   {"stats", 4},       {"ml", 5},
        {"dataset", 5},  {"baseline", 6},    {"core", 6},
        {"experiments", 7},
        // The serving layer wraps the experiment harness in a daemon.
        {"serve", 8},
        // Applications sit on top and may depend on everything.
        {"tools", 9},    {"tests", 9},       {"bench", 9},
        {"examples", 9},
    };
    return layers;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.compare(0, prefix.size(), prefix) == 0;
}

/**
 * Resolves an include operand to a repo-relative path. src/ modules
 * include each other relative to src/ ("util/rng.h"); application
 * code includes itself repo-relative ("tools/lint/lint.h").
 */
std::string
resolveTarget(const std::string &target)
{
    for (const char *top : {"src/", "tools/", "tests/", "bench/",
                            "examples/"})
        if (startsWith(target, top))
            return target;
    return "src/" + target;
}

/** Identifiers that precede `(` without declaring anything. */
bool
isNonDeclaringKeyword(const std::string &text)
{
    static const std::set<std::string> keywords = {
        "if",       "for",       "while",    "switch",   "return",
        "sizeof",   "catch",     "decltype", "alignas",  "alignof",
        "defined",  "noexcept",  "throw",    "new",      "delete",
        "this",     "operator",  "requires", "explicit", "typename",
        "template", "else",      "do",       "case",     "goto",
        "static_assert",         "assert",   "co_await", "co_return",
        "co_yield", "static_cast",           "const_cast",
        "dynamic_cast",          "reinterpret_cast",
    };
    return keywords.count(text) != 0;
}

/**
 * The names a header plausibly provides to its includers. Generous by
 * design — the unused-include rule only fires when *none* of these
 * appear in the includer — so it collects:
 *   - type names: the identifier after class/struct/enum/union/concept
 *     (skipping an `enum class`/`enum struct` head);
 *   - macro names: the identifier after a preprocessor `define`;
 *   - alias names: the identifier after `using` (not `using
 *     namespace`);
 *   - function and variable names: any identifier directly followed
 *     by `(` or `=`, minus control-flow keywords.
 * Namespace names are deliberately excluded: every project header
 * opens `namespace dtrank`, which would mark all of them used
 * everywhere.
 */
std::set<std::string>
providedNames(const std::vector<Token> &tokens)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &token = tokens[i];
        if (token.kind != TokenKind::Identifier)
            continue;
        auto nextIdent = [&](std::size_t from) -> const Token * {
            for (std::size_t j = from; j < tokens.size(); ++j) {
                if (tokens[j].kind == TokenKind::Comment)
                    continue;
                if (tokens[j].kind == TokenKind::Identifier)
                    return &tokens[j];
                return nullptr;
            }
            return nullptr;
        };
        if (token.text == "class" || token.text == "struct" ||
            token.text == "union" || token.text == "concept") {
            if (const Token *name = nextIdent(i + 1))
                names.insert(name->text);
            continue;
        }
        if (token.text == "enum") {
            const Token *name = nextIdent(i + 1);
            if (name != nullptr &&
                (name->text == "class" || name->text == "struct")) {
                std::size_t at = i + 1;
                while (at < tokens.size() && &tokens[at] != name)
                    ++at;
                name = nextIdent(at + 1);
            }
            if (name != nullptr)
                names.insert(name->text);
            continue;
        }
        if (token.preprocessor && token.text == "define") {
            if (const Token *name = nextIdent(i + 1))
                names.insert(name->text);
            continue;
        }
        if (token.text == "using") {
            const Token *name = nextIdent(i + 1);
            if (name != nullptr && name->text != "namespace")
                names.insert(name->text);
            continue;
        }
        if (token.text == "namespace") {
            // Skip the name (see the doc comment above).
            continue;
        }
        if (i + 1 < tokens.size() &&
            tokens[i + 1].kind == TokenKind::Punct &&
            (tokens[i + 1].text == "(" || tokens[i + 1].text == "=") &&
            !isNonDeclaringKeyword(token.text))
            names.insert(token.text);
    }
    return names;
}

/** Every identifier spelling appearing in a token stream. */
std::unordered_set<std::string>
usedNames(const std::vector<Token> &tokens)
{
    std::unordered_set<std::string> names;
    for (const Token &token : tokens)
        if (token.kind == TokenKind::Identifier)
            names.insert(token.text);
    return names;
}

/** True when `file` is the implementation file of header `header`
 *  (same directory, same stem — foo.cpp legitimately includes foo.h
 *  regardless of whether it repeats any declared name). */
bool
isOwnHeader(const std::string &file, const std::string &header)
{
    auto stem = [](const std::string &path) {
        const std::size_t dot = path.rfind('.');
        return dot == std::string::npos ? path : path.substr(0, dot);
    };
    return stem(file) == stem(header);
}

struct GraphState
{
    /// path -> lexed tokens, for every file in the set.
    std::unordered_map<std::string, std::vector<Token>> tokens;
    /// path -> outgoing edges with resolved targets.
    std::unordered_map<std::string, std::vector<IncludeEdge>> edges;
    std::vector<std::string> ordered_paths;
};

void
checkLayering(const GraphState &graph, std::vector<Finding> &findings)
{
    // Module-level directed edges, with the first file:line exhibiting
    // each, so mutual same-layer includes can be reported as cycles.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::string, std::size_t>>
        module_edges;

    for (const std::string &path : graph.ordered_paths) {
        const std::string from_module = moduleOf(path);
        const int from_layer = moduleLayer(from_module);
        if (from_layer < 0)
            continue;
        for (const IncludeEdge &edge : graph.edges.at(path)) {
            const std::string to_module = moduleOf(edge.target);
            const int to_layer = moduleLayer(to_module);
            if (to_layer < 0 || to_module == from_module)
                continue;
            if (to_layer > from_layer) {
                findings.push_back(
                    {"layering", path, edge.line,
                     "include of \"" + edge.target +
                         "\" reaches up the module DAG: " +
                         from_module + " (layer " +
                         std::to_string(from_layer) +
                         ") may not depend on " + to_module +
                         " (layer " + std::to_string(to_layer) + ")"});
                continue;
            }
            if (to_layer == from_layer)
                module_edges.emplace(
                    std::make_pair(from_module, to_module),
                    std::make_pair(path, edge.line));
        }
    }

    for (const auto &[pair, site] : module_edges) {
        if (module_edges.count({pair.second, pair.first}) == 0)
            continue;
        findings.push_back(
            {"layering", site.first, site.second,
             "module cycle: " + pair.first + " and " + pair.second +
                 " are same-layer modules that include each other; "
                 "one direction must go"});
    }
}

void
checkFileCycles(const GraphState &graph, std::vector<Finding> &findings)
{
    enum class Color
    {
        White,
        Gray,
        Black
    };
    std::unordered_map<std::string, Color> color;
    for (const std::string &path : graph.ordered_paths)
        color[path] = Color::White;
    // One finding per distinct cycle, keyed by its sorted members.
    std::set<std::vector<std::string>> reported;

    std::vector<std::string> stack;
    // Explicit DFS; (node, next-edge-index) frames.
    struct Frame
    {
        std::string node;
        std::size_t next = 0;
    };
    for (const std::string &root : graph.ordered_paths) {
        if (color[root] != Color::White)
            continue;
        std::vector<Frame> frames{{root}};
        color[root] = Color::Gray;
        stack.push_back(root);
        while (!frames.empty()) {
            Frame &frame = frames.back();
            const auto &out = graph.edges.at(frame.node);
            if (frame.next >= out.size()) {
                color[frame.node] = Color::Black;
                stack.pop_back();
                frames.pop_back();
                continue;
            }
            const IncludeEdge &edge = out[frame.next++];
            if (graph.tokens.count(edge.target) == 0)
                continue; // Target outside the analysis set.
            const Color target_color = color[edge.target];
            if (target_color == Color::Gray) {
                auto start = std::find(stack.begin(), stack.end(),
                                       edge.target);
                std::vector<std::string> members(start, stack.end());
                std::vector<std::string> key = members;
                std::sort(key.begin(), key.end());
                if (reported.insert(key).second) {
                    std::string chain;
                    for (const std::string &member : members)
                        chain += member + " -> ";
                    chain += edge.target;
                    findings.push_back({"include-cycle", frame.node,
                                        edge.line,
                                        "include cycle: " + chain});
                }
                continue;
            }
            if (target_color == Color::White) {
                color[edge.target] = Color::Gray;
                stack.push_back(edge.target);
                frames.push_back({edge.target});
            }
        }
    }
}

void
checkUnusedIncludes(const GraphState &graph,
                    std::vector<Finding> &findings)
{
    std::unordered_map<std::string, std::set<std::string>> provided;
    for (const std::string &path : graph.ordered_paths) {
        const auto it = graph.edges.find(path);
        if (it == graph.edges.end())
            continue;
        const std::unordered_set<std::string> used =
            usedNames(graph.tokens.at(path));
        for (const IncludeEdge &edge : it->second) {
            const auto target = graph.tokens.find(edge.target);
            if (target == graph.tokens.end())
                continue; // Header contents unavailable: no verdict.
            if (isOwnHeader(path, edge.target))
                continue;
            auto cached = provided.find(edge.target);
            if (cached == provided.end())
                cached = provided
                             .emplace(edge.target,
                                      providedNames(target->second))
                             .first;
            const std::set<std::string> &names = cached->second;
            if (names.empty())
                continue; // Umbrella / macro-free header: no verdict.
            const bool any_used =
                std::any_of(names.begin(), names.end(),
                            [&](const std::string &name) {
                                return used.count(name) != 0;
                            });
            if (!any_used)
                findings.push_back(
                    {"unused-include", path, edge.line,
                     "unused include: nothing declared in \"" +
                         edge.target + "\" is referenced here"});
        }
    }
}

} // namespace

std::string
moduleOf(const std::string &path)
{
    for (const char *top : {"tools", "tests", "bench", "examples"})
        if (startsWith(path, std::string(top) + "/"))
            return top;
    if (!startsWith(path, "src/"))
        return "";
    const std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return "";
    const std::string module = path.substr(4, slash - 4);
    return layerTable().count(module) != 0 ? module : "";
}

int
moduleLayer(const std::string &module)
{
    const auto it = layerTable().find(module);
    return it == layerTable().end() ? -1 : it->second;
}

std::vector<IncludeEdge>
includeEdges(const SourceFile &file)
{
    std::vector<IncludeEdge> edges;
    for (const Token &token : lex(file.content)) {
        if (token.kind != TokenKind::HeaderName)
            continue;
        // Angle-bracket operands are system headers, never edges.
        if (token.text.size() < 2 || token.text.front() != '"')
            continue;
        const std::string operand =
            token.text.substr(1, token.text.size() - 2);
        edges.push_back({file.path, resolveTarget(operand), token.line});
    }
    return edges;
}

std::vector<Finding>
includeGraphFindings(const std::vector<SourceFile> &sources)
{
    GraphState graph;
    for (const SourceFile &file : sources) {
        graph.tokens.emplace(file.path, lex(file.content));
        graph.edges.emplace(file.path, includeEdges(file));
        graph.ordered_paths.push_back(file.path);
    }
    std::sort(graph.ordered_paths.begin(), graph.ordered_paths.end());

    std::vector<Finding> findings;
    checkLayering(graph, findings);
    checkFileCycles(graph, findings);
    checkUnusedIncludes(graph, findings);
    return findings;
}

} // namespace dtrank::analyze
