/**
 * @file
 * Command-line driver for the dtrank static analysis engine.
 *
 * Usage:
 *   dtrank_analyze [--root <repo-root>] [--format text|json|sarif]
 *                  [--baseline <file>] [--write-baseline]
 *                  [--list-rules] [dir-or-file...]
 *
 * Positional arguments are repo-root-relative top directories (or
 * individual files) to analyze; the default set is `src tools bench`.
 * `--baseline` filters out the tracked legacy findings before
 * reporting; `--write-baseline` rewrites that file from the current
 * findings instead of reporting them. Exit status is 0 when clean
 * (after baseline filtering), 1 when findings remain, 2 on usage or
 * I/O errors.
 */

#include <exception>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"

namespace
{

constexpr const char *kUsage =
    "usage: dtrank_analyze [--root <repo-root>] "
    "[--format text|json|sarif]\n"
    "                      [--baseline <file>] [--write-baseline]\n"
    "                      [--list-rules] [dir-or-file...]\n";

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string format = "text";
    std::string baseline_path;
    bool write_baseline = false;
    std::vector<std::string> targets;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &id :
                 dtrank::analyze::ruleIds(dtrank::analyze::RuleSet::All))
                std::cout << id << "\n";
            return 0;
        }
        if (arg == "--root" || arg == "--format" ||
            arg == "--baseline") {
            if (i + 1 >= argc) {
                std::cerr << "dtrank_analyze: " << arg
                          << " needs a value\n";
                return 2;
            }
            const std::string value = argv[++i];
            if (arg == "--root")
                root = value;
            else if (arg == "--format")
                format = value;
            else
                baseline_path = value;
            continue;
        }
        if (arg == "--write-baseline") {
            write_baseline = true;
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "dtrank_analyze: unknown option " << arg
                      << "\n"
                      << kUsage;
            return 2;
        }
        targets.push_back(arg);
    }
    if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "dtrank_analyze: --format must be text, json or "
                     "sarif (got '"
                  << format << "')\n";
        return 2;
    }
    if (write_baseline && baseline_path.empty()) {
        std::cerr << "dtrank_analyze: --write-baseline needs "
                     "--baseline <file>\n";
        return 2;
    }

    try {
        using dtrank::analyze::Finding;
        std::vector<Finding> findings = dtrank::analyze::analyzeTree(
            root, targets, dtrank::analyze::RuleSet::All);

        if (write_baseline) {
            std::ofstream out(baseline_path);
            if (!out)
                throw std::runtime_error("cannot write " +
                                         baseline_path);
            out << dtrank::analyze::renderBaseline(findings);
            std::cout << "dtrank_analyze: wrote " << findings.size()
                      << " finding(s) to " << baseline_path << "\n";
            return 0;
        }

        if (!baseline_path.empty())
            findings = dtrank::analyze::filterBaselined(
                findings, dtrank::analyze::parseBaseline(
                              readFileOrDie(baseline_path)));

        if (format == "json") {
            std::cout << dtrank::analyze::toJson(findings);
        } else if (format == "sarif") {
            std::cout << dtrank::analyze::toSarif(findings);
        } else {
            for (const Finding &finding : findings)
                std::cout << dtrank::analyze::formatFinding(finding)
                          << "\n";
            if (!findings.empty())
                std::cout
                    << findings.size()
                    << " finding(s); suppress a line with "
                       "// dtrank-analyze-ignore(rule-id) or track "
                       "legacy debt in the baseline\n";
        }
        return findings.empty() ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "dtrank_analyze: " << e.what() << "\n";
        return 2;
    }
}
