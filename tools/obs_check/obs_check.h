/**
 * @file
 * obs_check: schema validator for the observability artifacts the
 * instrumented binaries write — Prometheus text exposition files
 * (`--metrics-out x.prom`), BenchJsonWriter metrics documents
 * (`--metrics-out x.json`) and Chrome trace_event JSON
 * (`--trace-out x.json`). The CI observability-smoke job runs it over
 * freshly produced outputs so a malformed exporter fails the build
 * rather than a downstream dashboard.
 *
 * Split into a library plus a thin main (tools/obs_check) so every
 * checker is unit tested in-process against fixture documents,
 * including checked-in malformed ones.
 */

#pragma once

#include <string>
#include <vector>

namespace dtrank::obs_check
{

/**
 * Validates one Prometheus text exposition document: every line must
 * be a `# HELP`/`# TYPE` comment or a `name{labels} value` sample,
 * every sample's family must carry a preceding `# TYPE` of a known
 * kind, counter samples must be non-negative, and histogram families
 * must expose strictly-ordered cumulative `_bucket` series ending in
 * `le="+Inf"` whose total matches `_count`.
 * @return One message per violation; empty means the document is valid.
 */
std::vector<std::string> checkPrometheusText(const std::string &text);

/**
 * Validates one Chrome trace_event JSON document: a top-level object
 * with a `traceEvents` array whose members are complete events — a
 * string `name`, a known `ph` phase, non-negative numeric `ts`/`dur`,
 * numeric `pid`/`tid`, and (when present) a string `cat` plus an
 * object `args`.
 * @return One message per violation; empty means the document is valid.
 */
std::vector<std::string> checkChromeTrace(const std::string &json);

/**
 * Validates one BenchJsonWriter metrics document (`--metrics-out` with
 * a `.json` path): a top-level object with a string `benchmark` and a
 * `records` array whose members carry a string `name`, a numeric
 * `real_time_ms` and a known `metric_type`.
 * @return One message per violation; empty means the document is valid.
 */
std::vector<std::string> checkMetricsJson(const std::string &json);

/**
 * Dispatches `content` to the matching checker: `.json` paths are
 * parsed and routed by their top-level key (`traceEvents` → trace,
 * `records` → metrics document), anything else is checked as
 * Prometheus text.
 * @return One message per violation; empty means the document is valid.
 */
std::vector<std::string> checkDocument(const std::string &path,
                                       const std::string &content);

} // namespace dtrank::obs_check
