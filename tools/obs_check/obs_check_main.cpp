/**
 * @file
 * CLI wrapper for the obs_check library, the schema gate CI runs over
 * freshly written observability artifacts:
 *
 *   obs_check <file>...
 *
 * Each file is dispatched by path and content: `.json` files are
 * routed to the Chrome-trace or BenchJsonWriter-metrics checker by
 * their top-level key, everything else is checked as Prometheus text.
 *
 * Exit status: 0 when every file is valid, 1 when any violation was
 * found, 2 on usage or read errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs_check.h"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("obs_check: cannot read '" + path +
                                 "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: obs_check <file>...\n"
                     "  Validates Prometheus text, Chrome trace_event "
                     "JSON and metrics JSON\n"
                     "  files written by --metrics-out/--trace-out.\n";
        return 2;
    }
    bool any_violation = false;
    for (int i = 1; i < argc; ++i) {
        const std::string path = argv[i];
        std::string content;
        try {
            content = readFile(path);
        } catch (const std::exception &error) {
            std::cerr << error.what() << "\n";
            return 2;
        }
        const std::vector<std::string> errors =
            dtrank::obs_check::checkDocument(path, content);
        if (errors.empty()) {
            std::cout << path << ": ok\n";
            continue;
        }
        any_violation = true;
        for (const std::string &error : errors)
            std::cerr << path << ": " << error << "\n";
    }
    return any_violation ? 1 : 0;
}
