#include "obs_check.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <stdexcept>

#include "bench_compare.h"

namespace dtrank::obs_check
{

namespace
{

using bench_compare::JsonValue;
using bench_compare::parseJson;

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0 ||
               c == '_' || c == ':';
    };
    auto tail = [&](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
    };
    if (!head(name.front()))
        return false;
    for (std::size_t i = 1; i < name.size(); ++i)
        if (!tail(name[i]))
            return false;
    return true;
}

bool
validLabelName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0 ||
               c == '_';
    };
    auto tail = [&](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
    };
    if (!head(name.front()))
        return false;
    for (std::size_t i = 1; i < name.size(); ++i)
        if (!tail(name[i]))
            return false;
    return true;
}

/** One `name{labels} value` exposition line, split into parts. */
struct Sample
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    std::string valueText;
};

/** Parses one sample line; on failure appends to `errors` and returns
 *  false. `where` is the "line N" prefix for messages. */
bool
parseSample(const std::string &line, const std::string &where,
            std::vector<std::string> &errors, Sample &out)
{
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ')
        ++pos;
    out.name = line.substr(0, pos);
    if (!validMetricName(out.name)) {
        errors.push_back(where + ": invalid metric name '" + out.name +
                         "'");
        return false;
    }
    if (pos < line.size() && line[pos] == '{') {
        ++pos;
        while (pos < line.size() && line[pos] != '}') {
            std::size_t eq = line.find('=', pos);
            if (eq == std::string::npos) {
                errors.push_back(where + ": malformed label set");
                return false;
            }
            const std::string key = line.substr(pos, eq - pos);
            if (!validLabelName(key)) {
                errors.push_back(where + ": invalid label name '" + key +
                                 "'");
                return false;
            }
            if (eq + 1 >= line.size() || line[eq + 1] != '"') {
                errors.push_back(where + ": label value for '" + key +
                                 "' is not quoted");
                return false;
            }
            std::string value;
            pos = eq + 2;
            while (pos < line.size() && line[pos] != '"') {
                if (line[pos] == '\\' && pos + 1 < line.size())
                    ++pos;
                value += line[pos++];
            }
            if (pos >= line.size()) {
                errors.push_back(where + ": unterminated label value");
                return false;
            }
            ++pos; // closing quote
            out.labels.emplace_back(key, value);
            if (pos < line.size() && line[pos] == ',')
                ++pos;
        }
        if (pos >= line.size()) {
            errors.push_back(where + ": unterminated label set");
            return false;
        }
        ++pos; // closing brace
    }
    if (pos >= line.size() || line[pos] != ' ') {
        errors.push_back(where + ": missing value");
        return false;
    }
    out.valueText = line.substr(pos + 1);
    if (out.valueText.empty()) {
        errors.push_back(where + ": missing value");
        return false;
    }
    return true;
}

/** Parses a sample value ("+Inf" included); NaN on failure. */
double
parseValue(const std::string &text)
{
    if (text == "+Inf")
        return std::numeric_limits<double>::infinity();
    if (text == "-Inf")
        return -std::numeric_limits<double>::infinity();
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == text.c_str())
        return std::numeric_limits<double>::quiet_NaN();
    return v;
}

/** The cumulative bucket series of one histogram label set. */
struct BucketSeries
{
    std::vector<std::pair<double, double>> buckets; ///< (le, count).
    bool hasCount = false;
    double count = 0.0;
    bool hasSum = false;
};

/** Joins the non-`le` labels of a sample into a grouping key. */
std::string
seriesKey(const Sample &sample)
{
    std::string key;
    for (const auto &[name, value] : sample.labels) {
        if (name == "le")
            continue;
        key += name + "=" + value + ",";
    }
    return key;
}

} // namespace

std::vector<std::string>
checkPrometheusText(const std::string &text)
{
    std::vector<std::string> errors;
    std::map<std::string, std::string> types; // family -> metric type
    // (family, non-le labels) -> bucket series, in file order.
    std::map<std::pair<std::string, std::string>, BucketSeries> series;

    std::size_t line_no = 0;
    std::size_t start = 0;
    bool saw_sample = false;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        ++line_no;
        const std::string where = "line " + std::to_string(line_no);
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Only HELP/TYPE comments are structured; anything else is
            // a free-form comment the format allows.
            if (line.rfind("# TYPE ", 0) == 0) {
                const std::string rest = line.substr(7);
                const std::size_t space = rest.find(' ');
                if (space == std::string::npos) {
                    errors.push_back(where + ": TYPE without a type");
                    continue;
                }
                const std::string family = rest.substr(0, space);
                const std::string type = rest.substr(space + 1);
                if (!validMetricName(family))
                    errors.push_back(where +
                                     ": invalid family name in TYPE '" +
                                     family + "'");
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped")
                    errors.push_back(where + ": unknown metric type '" +
                                     type + "'");
                if (types.count(family) != 0)
                    errors.push_back(where + ": duplicate TYPE for '" +
                                     family + "'");
                types[family] = type;
            } else if (line.rfind("# HELP ", 0) == 0) {
                const std::string rest = line.substr(7);
                const std::string family =
                    rest.substr(0, rest.find(' '));
                if (!validMetricName(family))
                    errors.push_back(where +
                                     ": invalid family name in HELP '" +
                                     family + "'");
            }
            continue;
        }

        Sample sample;
        if (!parseSample(line, where, errors, sample))
            continue;
        saw_sample = true;
        const double value = parseValue(sample.valueText);
        if (std::isnan(value)) {
            errors.push_back(where + ": unparseable value '" +
                             sample.valueText + "'");
            continue;
        }

        // Resolve the family: histogram children carry a suffix.
        std::string family = sample.name;
        std::string suffix;
        for (const char *s : {"_bucket", "_sum", "_count"}) {
            const std::string sfx = s;
            if (family.size() > sfx.size() &&
                family.compare(family.size() - sfx.size(), sfx.size(),
                               sfx) == 0 &&
                types.count(family.substr(0,
                                          family.size() - sfx.size())) !=
                    0) {
                suffix = sfx;
                family = family.substr(0, family.size() - sfx.size());
                break;
            }
        }
        const auto tit = types.find(family);
        if (tit == types.end()) {
            errors.push_back(where + ": sample '" + sample.name +
                             "' has no preceding # TYPE");
            continue;
        }
        const std::string &type = tit->second;
        if (type == "histogram" && suffix.empty()) {
            errors.push_back(where + ": histogram family '" + family +
                             "' exposes a bare sample '" + sample.name +
                             "'");
            continue;
        }
        if (type != "histogram" && !suffix.empty()) {
            // A _bucket/_sum/_count suffix only matched because the
            // base family exists; non-histogram bases must not match.
            errors.push_back(where + ": '" + sample.name +
                             "' uses a histogram suffix but '" + family +
                             "' is a " + type);
            continue;
        }
        if (type == "counter" && value < 0.0)
            errors.push_back(where + ": counter '" + sample.name +
                             "' is negative (" + sample.valueText + ")");
        if (type == "histogram") {
            BucketSeries &bs = series[{family, seriesKey(sample)}];
            if (suffix == "_bucket") {
                std::string le;
                bool has_le = false;
                for (const auto &[name, lv] : sample.labels)
                    if (name == "le") {
                        le = lv;
                        has_le = true;
                    }
                if (!has_le) {
                    errors.push_back(where + ": '" + sample.name +
                                     "' bucket without an le label");
                    continue;
                }
                const double bound = parseValue(le);
                if (std::isnan(bound)) {
                    errors.push_back(where +
                                     ": unparseable le value '" + le +
                                     "'");
                    continue;
                }
                bs.buckets.emplace_back(bound, value);
            } else if (suffix == "_count") {
                bs.hasCount = true;
                bs.count = value;
            } else {
                bs.hasSum = true;
            }
        }
    }

    for (const auto &[key, bs] : series) {
        const std::string &family = key.first;
        const std::string label = key.second.empty()
                                      ? family
                                      : family + "{" + key.second + "}";
        if (bs.buckets.empty()) {
            errors.push_back("histogram '" + label + "' has no buckets");
            continue;
        }
        for (std::size_t i = 1; i < bs.buckets.size(); ++i) {
            if (bs.buckets[i].first <= bs.buckets[i - 1].first)
                errors.push_back("histogram '" + label +
                                 "' bucket bounds are not increasing");
            if (bs.buckets[i].second < bs.buckets[i - 1].second)
                errors.push_back("histogram '" + label +
                                 "' bucket counts are not cumulative");
        }
        if (!std::isinf(bs.buckets.back().first))
            errors.push_back("histogram '" + label +
                             "' is missing the le=\"+Inf\" bucket");
        else if (bs.hasCount && bs.count != bs.buckets.back().second)
            errors.push_back("histogram '" + label +
                             "' _count disagrees with the +Inf bucket");
        if (!bs.hasCount)
            errors.push_back("histogram '" + label +
                             "' is missing _count");
        if (!bs.hasSum)
            errors.push_back("histogram '" + label + "' is missing _sum");
    }
    if (!saw_sample && errors.empty())
        errors.emplace_back("document contains no samples");
    return errors;
}

std::vector<std::string>
checkChromeTrace(const std::string &json)
{
    std::vector<std::string> errors;
    JsonValue doc;
    try {
        doc = parseJson(json);
    } catch (const std::runtime_error &e) {
        errors.push_back(std::string("malformed JSON: ") + e.what());
        return errors;
    }
    if (doc.kind != JsonValue::Kind::Object) {
        errors.emplace_back("top level is not an object");
        return errors;
    }
    const JsonValue *events = doc.find("traceEvents");
    if (events == nullptr) {
        errors.emplace_back("missing traceEvents");
        return errors;
    }
    if (events->kind != JsonValue::Kind::Array) {
        errors.emplace_back("traceEvents is not an array");
        return errors;
    }
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &ev = events->array[i];
        const std::string where = "event " + std::to_string(i);
        if (ev.kind != JsonValue::Kind::Object) {
            errors.push_back(where + ": not an object");
            continue;
        }
        auto requireString = [&](const char *key, bool required) {
            const JsonValue *v = ev.find(key);
            if (v == nullptr) {
                if (required)
                    errors.push_back(where + ": missing " + key);
                return;
            }
            if (v->kind != JsonValue::Kind::String)
                errors.push_back(where + ": " + key +
                                 " is not a string");
        };
        auto requireNumber = [&](const char *key,
                                 bool non_negative) -> const JsonValue * {
            const JsonValue *v = ev.find(key);
            if (v == nullptr) {
                errors.push_back(where + ": missing " + key);
                return nullptr;
            }
            if (v->kind != JsonValue::Kind::Number) {
                errors.push_back(where + ": " + key +
                                 " is not a number");
                return nullptr;
            }
            if (non_negative && v->number < 0.0)
                errors.push_back(where + ": " + key + " is negative");
            return v;
        };
        requireString("name", true);
        requireString("cat", false);
        const JsonValue *ph = ev.find("ph");
        if (ph == nullptr) {
            errors.push_back(where + ": missing ph");
        } else if (ph->kind != JsonValue::Kind::String ||
                   ph->text.size() != 1) {
            errors.push_back(where + ": ph is not a one-character phase");
        } else if (ph->text == "X") {
            requireNumber("dur", true);
        }
        requireNumber("ts", true);
        requireNumber("pid", false);
        requireNumber("tid", false);
        const JsonValue *args = ev.find("args");
        if (args != nullptr && args->kind != JsonValue::Kind::Object)
            errors.push_back(where + ": args is not an object");
    }
    return errors;
}

std::vector<std::string>
checkMetricsJson(const std::string &json)
{
    std::vector<std::string> errors;
    JsonValue doc;
    try {
        doc = parseJson(json);
    } catch (const std::runtime_error &e) {
        errors.push_back(std::string("malformed JSON: ") + e.what());
        return errors;
    }
    if (doc.kind != JsonValue::Kind::Object) {
        errors.emplace_back("top level is not an object");
        return errors;
    }
    const JsonValue *benchmark = doc.find("benchmark");
    if (benchmark == nullptr ||
        benchmark->kind != JsonValue::Kind::String)
        errors.emplace_back("missing string 'benchmark'");
    const JsonValue *records = doc.find("records");
    if (records == nullptr || records->kind != JsonValue::Kind::Array) {
        errors.emplace_back("missing 'records' array");
        return errors;
    }
    for (std::size_t i = 0; i < records->array.size(); ++i) {
        const JsonValue &r = records->array[i];
        const std::string where = "record " + std::to_string(i);
        if (r.kind != JsonValue::Kind::Object) {
            errors.push_back(where + ": not an object");
            continue;
        }
        const JsonValue *name = r.find("name");
        if (name == nullptr || name->kind != JsonValue::Kind::String)
            errors.push_back(where + ": missing string 'name'");
        const JsonValue *ms = r.find("real_time_ms");
        if (ms == nullptr || ms->kind != JsonValue::Kind::Number)
            errors.push_back(where + ": missing numeric 'real_time_ms'");
        const JsonValue *type = r.find("metric_type");
        if (type == nullptr ||
            type->kind != JsonValue::Kind::String) {
            errors.push_back(where + ": missing string 'metric_type'");
        } else if (type->text != "counter" && type->text != "gauge" &&
                   type->text != "histogram") {
            errors.push_back(where + ": unknown metric_type '" +
                             type->text + "'");
        }
    }
    return errors;
}

std::vector<std::string>
checkDocument(const std::string &path, const std::string &content)
{
    const bool is_json =
        path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0;
    if (!is_json)
        return checkPrometheusText(content);
    JsonValue doc;
    try {
        doc = parseJson(content);
    } catch (const std::runtime_error &e) {
        return {std::string("malformed JSON: ") + e.what()};
    }
    if (doc.find("traceEvents") != nullptr)
        return checkChromeTrace(content);
    if (doc.find("records") != nullptr)
        return checkMetricsJson(content);
    return {"unrecognized JSON document: neither traceEvents nor "
            "records"};
}

} // namespace dtrank::obs_check
