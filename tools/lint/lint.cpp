/**
 * @file
 * Compatibility shim: dtrank_lint over the dtrank_analyze engine.
 *
 * The regex/line implementation that used to live here was replaced
 * by the token-stream engine in tools/analyze (see analyze.h). This
 * TU keeps the dtrank::lint interface — and the exact legacy rule
 * set, IDs, scopes, messages and suppression behavior — by delegating
 * to the engine with RuleSet::Legacy, so existing callers, fixtures
 * and `// dtrank-lint-ignore` comments keep working unchanged. New
 * code should call dtrank::analyze directly; the extra cross-file and
 * determinism-contract rules only exist there.
 */

#include "lint.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/analyze/analyze.h"
#include "util/error.h"

namespace dtrank::lint
{

namespace
{

std::vector<Finding>
fromEngine(std::vector<analyze::Finding> findings)
{
    std::vector<Finding> out;
    out.reserve(findings.size());
    for (analyze::Finding &finding : findings)
        out.push_back({std::move(finding.rule),
                       std::move(finding.file), finding.line,
                       std::move(finding.message)});
    return out;
}

} // namespace

std::string
formatFinding(const Finding &finding)
{
    return analyze::formatFinding(
        {finding.rule, finding.file, finding.line, finding.message});
}

std::vector<std::string>
ruleIds()
{
    return analyze::ruleIds(analyze::RuleSet::Legacy);
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content)
{
    return fromEngine(
        analyze::analyzeContent(path, content,
                                analyze::RuleSet::Legacy));
}

std::vector<Finding>
lintFile(const std::string &root, const std::string &relative_path)
{
    const std::filesystem::path full =
        std::filesystem::path(root) / relative_path;
    std::ifstream in(full, std::ios::binary);
    if (!in)
        throw util::IoError("dtrank_lint: cannot read " +
                            full.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintContent(relative_path, buffer.str());
}

std::vector<Finding>
lintTree(const std::string &root)
{
    return fromEngine(analyze::analyzeTree(
        root, {"src", "tests", "tools", "bench", "examples"},
        analyze::RuleSet::Legacy));
}

} // namespace dtrank::lint
