#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "util/error.h"

namespace dtrank::lint
{

namespace
{

/** True for characters that can appear in a C++ identifier. */
bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * One source line after lexing: executable text with comments and
 * string/char-literal bodies blanked out, plus the comment text (the
 * channel suppression directives live in).
 */
struct LexedLine
{
    std::string code;
    std::string comment;
};

/**
 * Splits source into lines, blanking comments and literal bodies.
 * A correct-enough lexer for linting: tracks block comments across
 * lines and skips escaped quotes; raw string literals are not handled
 * (the tree does not use them in lint-relevant positions).
 */
std::vector<LexedLine>
lexLines(const std::string &content)
{
    std::vector<LexedLine> lines;
    lines.emplace_back();
    bool in_block_comment = false;
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < content.size(); ++i) {
        const char c = content[i];
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        LexedLine &line = lines.back();
        if (c == '\n') {
            in_string = in_char = false; // unterminated literal: resync
            lines.emplace_back();
            continue;
        }
        if (in_block_comment) {
            if (c == '*' && next == '/') {
                in_block_comment = false;
                ++i;
            } else {
                line.comment.push_back(c);
            }
            continue;
        }
        if (in_string || in_char) {
            if (c == '\\') {
                ++i; // skip the escaped character
            } else if ((in_string && c == '"') || (in_char && c == '\'')) {
                in_string = in_char = false;
                line.code.push_back(c);
            }
            continue;
        }
        if (c == '/' && next == '/') {
            // Line comment: the rest of the line is comment text.
            std::size_t end = content.find('\n', i);
            if (end == std::string::npos)
                end = content.size();
            line.comment.append(content, i + 2, end - i - 2);
            i = end - 1;
            continue;
        }
        if (c == '/' && next == '*') {
            in_block_comment = true;
            ++i;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '\'' && (line.code.empty() ||
                               !isIdentChar(line.code.back())))
            in_char = true; // not a digit separator like 1'000
        line.code.push_back(c);
    }
    return lines;
}

/** Position of `token` in `code` with identifier boundaries on both
 *  sides, or npos. */
std::size_t
findToken(const std::string &code, std::string_view token)
{
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t after = pos + token.size();
        const bool right_ok =
            after >= code.size() || !isIdentChar(code[after]);
        if (left_ok && right_ok)
            return pos;
        pos += 1;
    }
    return std::string::npos;
}

/** Like findToken but the token may be qualified (e.g. "std::rand"). */
std::size_t
findQualifiedToken(const std::string &code, std::string_view token)
{
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t after = pos + token.size();
        const bool right_ok =
            after >= code.size() || !isIdentChar(code[after]);
        if (left_ok && right_ok)
            return pos;
        pos += 1;
    }
    return std::string::npos;
}

/** First non-space character at or after `pos`, or '\0'. */
char
nextNonSpace(const std::string &code, std::size_t pos)
{
    while (pos < code.size() &&
           std::isspace(static_cast<unsigned char>(code[pos])) != 0)
        ++pos;
    return pos < code.size() ? code[pos] : '\0';
}

/** Last non-space character before `pos`, or '\0'. */
char
prevNonSpace(const std::string &code, std::size_t pos)
{
    while (pos > 0) {
        --pos;
        if (std::isspace(static_cast<unsigned char>(code[pos])) == 0)
            return code[pos];
    }
    return '\0';
}

/** `prefix + quoted + suffix` built by append (GCC 12's -Wrestrict
 *  misfires on chained operator+ of string temporaries). */
std::string
quotedMessage(std::string_view prefix, std::string_view quoted,
              std::string_view suffix)
{
    std::string message(prefix);
    message.append("'").append(quoted).append("' ").append(suffix);
    return message;
}

/** True when the comment carries a suppression that covers `rule`. */
bool
suppresses(const std::string &comment, const std::string &rule)
{
    static constexpr std::string_view kDirective = "dtrank-lint-ignore";
    std::size_t pos = 0;
    while ((pos = comment.find(kDirective, pos)) != std::string::npos) {
        std::size_t after = pos + kDirective.size();
        if (after >= comment.size() || comment[after] != '(')
            return true; // bare directive: ignore every rule
        const std::size_t close = comment.find(')', after);
        if (close == std::string::npos)
            return true; // malformed; err on the side of the author
        const std::string listed =
            comment.substr(after + 1, close - after - 1);
        if (listed == rule)
            return true;
        pos = close;
    }
    return false;
}

/** True when `path` (repo-relative, '/'-separated) is under `dir`. */
bool
underDir(const std::string &path, std::string_view dir)
{
    return path.size() > dir.size() &&
           path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/';
}

bool
isHeaderPath(const std::string &path)
{
    return path.ends_with(".h") || path.ends_with(".hpp");
}

/**
 * A lint rule: an ID, a scope predicate over repo-relative paths, and
 * a per-line matcher returning a message (empty = no violation).
 */
struct Rule
{
    std::string id;
    bool (*applies)(const std::string &path);
    std::string (*match)(const std::string &code);
};

std::string
matchRawRand(const std::string &code)
{
    static constexpr std::string_view kEngines[] = {
        "srand", "random_device", "mt19937", "mt19937_64",
        "minstd_rand", "minstd_rand0", "default_random_engine",
        "ranlux24", "ranlux48", "knuth_b",
    };
    for (const std::string_view engine : kEngines) {
        if (findToken(code, engine) != std::string::npos)
            return quotedMessage(
                "raw random source ", engine,
                "bypasses util::Rng; all randomness must flow through "
                "an explicitly seeded util::Rng");
    }
    const std::size_t rand_pos = findToken(code, "rand");
    if (rand_pos != std::string::npos &&
        nextNonSpace(code, rand_pos + 4) == '(')
        return "rand() is non-deterministic across platforms; use "
               "util::Rng with an explicit seed";
    const std::size_t time_pos = findToken(code, "time");
    if (time_pos != std::string::npos &&
        nextNonSpace(code, time_pos + 4) == '(') {
        const std::size_t paren = code.find('(', time_pos);
        const char arg = nextNonSpace(code, paren + 1);
        if (arg == 'n' || arg == 'N' || arg == '0')
            return "wall-clock seeding breaks reproducibility; derive "
                   "seeds from util::Rng streams";
    }
    return "";
}

std::string
matchCoutInSrc(const std::string &code)
{
    static constexpr std::string_view kWriters[] = {
        "printf", "fprintf", "puts", "putchar",
    };
    if (findQualifiedToken(code, "std::cout") != std::string::npos)
        return "library code must not write to stdout; use "
               "util::logging (inform/warn/debug) or take an ostream";
    for (const std::string_view writer : kWriters) {
        if (findToken(code, writer) != std::string::npos)
            return quotedMessage(
                "", writer,
                "in library code; use util::logging or an ostream "
                "parameter");
    }
    return "";
}

std::string
matchFloatKernel(const std::string &code)
{
    if (findToken(code, "float") != std::string::npos)
        return "numeric kernels are double-precision only: float "
               "changes rounding and breaks bit-identical "
               "reproduction of the paper tables";
    return "";
}

std::string
matchRawIntrinsics(const std::string &code)
{
    // Covers the whole header family: immintrin, xmmintrin, emmintrin...
    if (code.find("mmintrin") != std::string::npos)
        return "vendor intrinsic headers may only be included under "
               "src/simd/; call the runtime-dispatched simd:: kernels "
               "instead";
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i] != '_' || (i > 0 && isIdentChar(code[i - 1])))
            continue;
        std::size_t end = i;
        while (end < code.size() && isIdentChar(code[end]))
            ++end;
        const std::string_view ident(code.data() + i, end - i);
        const bool vector_type = ident.substr(0, 6) == "__m128" ||
                                 ident.substr(0, 6) == "__m256" ||
                                 ident.substr(0, 6) == "__m512";
        if (vector_type || ident.substr(0, 3) == "_mm")
            return quotedMessage(
                "raw SIMD intrinsic ", ident,
                "outside src/simd/; hand-written vector code bypasses "
                "the dispatch layer's bit-identical canonical "
                "reductions — use the simd:: kernel API");
        i = end;
    }
    return "";
}

std::string
matchNakedNew(const std::string &code)
{
    const std::size_t new_pos = findToken(code, "new");
    if (new_pos != std::string::npos)
        return "naked 'new' in library code; use containers, "
               "std::make_unique or std::make_shared";
    const std::size_t del_pos = findToken(code, "delete");
    if (del_pos != std::string::npos &&
        prevNonSpace(code, del_pos) != '=')
        return "naked 'delete' in library code; ownership must be "
               "RAII-managed";
    return "";
}

std::string
matchStdMutex(const std::string &code)
{
    static constexpr std::string_view kPrimitives[] = {
        "std::condition_variable_any", "std::condition_variable",
        "std::recursive_timed_mutex", "std::recursive_mutex",
        "std::shared_timed_mutex", "std::shared_mutex",
        "std::timed_mutex", "std::mutex", "std::lock_guard",
        "std::unique_lock", "std::scoped_lock", "std::shared_lock",
    };
    for (const std::string_view primitive : kPrimitives) {
        if (findQualifiedToken(code, primitive) != std::string::npos)
            return quotedMessage(
                "", primitive,
                "bypasses the thread-safety-annotated wrappers; use "
                "util::Mutex / util::LockGuard / util::CondVar "
                "(util/mutex.h)");
    }
    return "";
}

std::string
matchRawClock(const std::string &code)
{
    static constexpr std::string_view kClocks[] = {
        "steady_clock", "high_resolution_clock",
    };
    for (const std::string_view clock : kClocks) {
        if (findToken(code, clock) != std::string::npos)
            return quotedMessage(
                "raw monotonic clock ", clock,
                "outside src/obs/ and bench/; read time through the "
                "obs clock shim (obs/clock.h: monotonicNow, "
                "monotonicNanos) so traces, metrics and bench timings "
                "share one epoch");
    }
    return "";
}

bool
appliesEverywhere(const std::string &path)
{
    return path != "src/util/rng.h";
}

bool
appliesSrcOnly(const std::string &path)
{
    return underDir(path, "src") && path != "src/util/logging.cpp";
}

bool
appliesKernels(const std::string &path)
{
    return underDir(path, "src/linalg") || underDir(path, "src/stats") ||
           underDir(path, "src/ml") || underDir(path, "src/simd");
}

bool
appliesOutsideSimd(const std::string &path)
{
    return !underDir(path, "src/simd");
}

bool
appliesSrc(const std::string &path)
{
    return underDir(path, "src");
}

bool
appliesOutsideMutexWrapper(const std::string &path)
{
    return path != "src/util/mutex.h";
}

bool
appliesOutsideObsAndBench(const std::string &path)
{
    // util/clock.h is the shim itself; obs/clock.h re-exports it.
    return !underDir(path, "src/obs") && !underDir(path, "bench") &&
           path != "src/util/clock.h";
}

const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> kRules = {
        {"no-raw-rand", appliesEverywhere, matchRawRand},
        {"no-cout-in-src", appliesSrcOnly, matchCoutInSrc},
        {"no-float-kernel", appliesKernels, matchFloatKernel},
        {"no-naked-new", appliesSrc, matchNakedNew},
        {"no-std-mutex", appliesOutsideMutexWrapper, matchStdMutex},
        {"no-raw-intrinsics", appliesOutsideSimd, matchRawIntrinsics},
        {"no-raw-clock", appliesOutsideObsAndBench, matchRawClock},
    };
    return kRules;
}

} // namespace

std::string
formatFinding(const Finding &finding)
{
    std::ostringstream out;
    out << finding.file << ":" << finding.line << ": [" << finding.rule
        << "] " << finding.message;
    return out.str();
}

std::vector<std::string>
ruleIds()
{
    std::vector<std::string> ids;
    for (const Rule &rule : rules())
        ids.push_back(rule.id);
    ids.push_back("pragma-once");
    return ids;
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content)
{
    std::vector<Finding> findings;
    const std::vector<LexedLine> lines = lexLines(content);

    const auto suppressed = [&](std::size_t index,
                                const std::string &rule) {
        if (suppresses(lines[index].comment, rule))
            return true;
        // A comment-only line suppresses the line below it.
        if (index > 0 && lines[index - 1].code.find_first_not_of(" \t") ==
                             std::string::npos &&
            suppresses(lines[index - 1].comment, rule))
            return true;
        return false;
    };

    for (const Rule &rule : rules()) {
        if (!rule.applies(path))
            continue;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const std::string message = rule.match(lines[i].code);
            if (message.empty() || suppressed(i, rule.id))
                continue;
            findings.push_back({rule.id, path, i + 1, message});
        }
    }

    if (isHeaderPath(path)) {
        const bool has_pragma = std::any_of(
            lines.begin(), lines.end(), [](const LexedLine &line) {
                return line.code.find("#pragma once") !=
                       std::string::npos;
            });
        if (!has_pragma && !suppresses(lines.front().comment,
                                       "pragma-once"))
            findings.push_back(
                {"pragma-once", path, 1,
                 "header must contain #pragma once (include-guard "
                 "macros drift when files move)"});
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return a.line != b.line ? a.line < b.line
                                          : a.rule < b.rule;
              });
    return findings;
}

std::vector<Finding>
lintFile(const std::string &root, const std::string &relative_path)
{
    const std::filesystem::path full =
        std::filesystem::path(root) / relative_path;
    std::ifstream in(full, std::ios::binary);
    if (!in)
        throw util::IoError("dtrank_lint: cannot read " + full.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintContent(relative_path, buffer.str());
}

std::vector<Finding>
lintTree(const std::string &root)
{
    namespace fs = std::filesystem;
    static constexpr std::string_view kTopDirs[] = {
        "src", "tests", "tools", "bench", "examples",
    };
    static constexpr std::string_view kExtensions[] = {
        ".h", ".hpp", ".cpp", ".cc",
    };

    std::vector<std::string> files;
    for (const std::string_view top : kTopDirs) {
        const fs::path dir = fs::path(root) / top;
        if (!fs::is_directory(dir))
            continue;
        auto it = fs::recursive_directory_iterator(dir);
        for (const fs::directory_entry &entry : it) {
            const std::string name = entry.path().filename().string();
            if (entry.is_directory() &&
                (name == "fixtures" || name == "build")) {
                it.disable_recursion_pending();
                continue;
            }
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (std::find(std::begin(kExtensions), std::end(kExtensions),
                          ext) == std::end(kExtensions))
                continue;
            files.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    for (const std::string &file : files) {
        std::vector<Finding> file_findings = lintFile(root, file);
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
    }
    return findings;
}

} // namespace dtrank::lint
