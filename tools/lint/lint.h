/**
 * @file
 * dtrank_lint: source-level enforcement of project invariants.
 *
 * DEPRECATED: this interface is now a compatibility shim over the
 * token-stream engine in tools/analyze (dtrank_analyze), which runs
 * the same rules plus include-graph layering and determinism-contract
 * checks. New callers should use dtrank::analyze; this header stays
 * for existing fixtures, suppressions and CI invocations.
 *
 * The reproduction's headline guarantee — parallel/cached runs are
 * bit-identical to serial — survives only while every stochastic
 * component draws from util::Rng, all output is serialized, and all
 * shared state sits behind the annotated util::Mutex. This linter
 * checks those conventions (the ones a compiler cannot) as named,
 * individually suppressible rules over the source tree, and runs as a
 * ctest so CI fails on any violation.
 *
 * Rule catalog (see DESIGN.md "Static analysis & determinism
 * contracts" for rationale):
 *   no-raw-rand     raw rand()/srand/time-seeded or std <random>
 *                   engines outside util/rng.h
 *   no-cout-in-src  stdout writes in library code (use util/logging.h)
 *   no-float-kernel `float` in the linalg/stats/ml/simd numeric
 *                   kernels
 *   pragma-once     every header starts its guard with #pragma once
 *   no-naked-new    naked new/delete in library code (use containers
 *                   or smart pointers)
 *   no-std-mutex    std synchronization primitives outside the
 *                   annotated util/mutex.h wrapper
 *   no-raw-intrinsics
 *                   vendor intrinsic headers (<immintrin.h> family) or
 *                   _mm-, __m128-, __m256-, __m512-prefixed names outside
 *                   src/simd/ — hand-rolled vector code would bypass
 *                   the dispatch layer's bit-identical canonical
 *                   reductions
 *   no-raw-clock    std::chrono::steady_clock / high_resolution_clock
 *                   outside src/obs/ and bench/ — read time through
 *                   the obs/clock.h shim so traces, metrics and bench
 *                   timings share one monotonic epoch
 *
 * Suppression: append `// dtrank-lint-ignore` (all rules) or
 * `// dtrank-lint-ignore(rule-id)` to the offending line, or put the
 * comment alone on the line directly above it.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dtrank::lint
{

/** One rule violation at a specific source location. */
struct Finding
{
    std::string rule;    ///< Rule ID, e.g. "no-std-mutex".
    std::string file;    ///< Path as given to the linter.
    std::size_t line;    ///< 1-based line number.
    std::string message; ///< Human-readable explanation.
};

/** `file:line: [rule] message` — the line format CI and editors parse. */
std::string formatFinding(const Finding &finding);

/** The IDs of every registered rule, in report order. */
std::vector<std::string> ruleIds();

/**
 * Lints one in-memory file. `path` selects which rules apply (kernel
 * dirs, exempt files, header-only rules) and is echoed in findings;
 * it should be repo-relative (e.g. "src/util/rng.h").
 */
std::vector<Finding> lintContent(const std::string &path,
                                 const std::string &content);

/** Reads and lints one file on disk. @throws util::IoError. */
std::vector<Finding> lintFile(const std::string &root,
                              const std::string &relative_path);

/**
 * Walks root/{src,tests,tools,bench,examples} and lints every
 * .h/.hpp/.cpp/.cc file, skipping directories named "fixtures" (lint
 * test inputs contain deliberate violations) and "build". Findings are
 * sorted by file then line.
 */
std::vector<Finding> lintTree(const std::string &root);

} // namespace dtrank::lint
