/**
 * @file
 * Command-line driver for the dtrank source linter.
 *
 * DEPRECATED: dtrank_lint is a compatibility shim over the
 * dtrank_analyze engine and only runs the legacy rule set. Prefer
 * `dtrank_analyze`, which adds include-graph layering and
 * determinism-contract rules plus JSON/SARIF output.
 *
 * Usage:
 *   dtrank_lint [--list-rules] [--root <repo-root>] [file...]
 *
 * With no file arguments the whole tree under the root is linted
 * (src/, tests/, tools/, bench/, examples/). File arguments are
 * repo-root-relative paths. Exit status is 0 when clean, 1 when any
 * violation was found, 2 on usage or I/O errors.
 */

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &id : dtrank::lint::ruleIds())
                std::cout << id << "\n";
            return 0;
        }
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::cerr << "dtrank_lint: --root needs a value\n";
                return 2;
            }
            root = argv[++i];
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: dtrank_lint [--list-rules] "
                         "[--root <repo-root>] [file...]\n";
            return 0;
        }
        files.push_back(arg);
    }

    try {
        std::vector<dtrank::lint::Finding> findings;
        if (files.empty()) {
            findings = dtrank::lint::lintTree(root);
        } else {
            for (const std::string &file : files) {
                auto file_findings = dtrank::lint::lintFile(root, file);
                findings.insert(findings.end(), file_findings.begin(),
                                file_findings.end());
            }
        }
        for (const dtrank::lint::Finding &finding : findings)
            std::cout << dtrank::lint::formatFinding(finding) << "\n";
        if (!findings.empty()) {
            std::cout << findings.size()
                      << " lint violation(s); suppress a line with "
                         "// dtrank-lint-ignore(rule-id)\n";
            return 1;
        }
    } catch (const std::exception &e) {
        std::cerr << "dtrank_lint: " << e.what() << "\n";
        return 2;
    }
    return 0;
}
