/**
 * @file
 * dtrank — command-line interface to the library.
 *
 * Subcommands:
 *   generate   Write the synthetic SPEC-style database (paper-sized or
 *              --dataset scaled:...) to CSV, or to the binary columnar
 *              format when --out ends in .dtc.
 *   save       Convert a database between formats: load --db (either
 *              format) and write --out (.dtc = columnar, else CSV).
 *   load       Open a database, print a one-line summary and the load
 *              timing (columnar files are memory-mapped).
 *   info       Summarize a database (CSV or columnar).
 *   rank       Rank the machines of a database for an application of
 *              interest, given the user's own measurements on the
 *              machines they own.
 *   evaluate   Hold out a benchmark as the application of interest and
 *              report prediction accuracy (with a bootstrap confidence
 *              interval on the rank correlation).
 *
 * Examples:
 *   dtrank_cli generate --out spec.csv
 *   dtrank_cli generate --dataset scaled:10000 --out spec10k.dtc
 *   dtrank_cli save --db spec.csv --out spec.dtc
 *   dtrank_cli load --db spec10k.dtc
 *   dtrank_cli info --db spec.csv
 *   dtrank_cli rank --db spec.dtc --measurements my_app.csv --top 10
 *   dtrank_cli evaluate --db spec.csv --app gcc --owned 6
 *   dtrank_cli evaluate --db spec.csv --app all --threads 8
 *
 * The measurements CSV has one "machine name,score" row per owned
 * machine; machine names must match `info` output (e.g.
 * "Intel Xeon/Gainestown#0").
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <memory>

#include "core/linear_transposition.h"
#include "core/metrics.h"
#include "core/mlp_transposition.h"
#include "core/multi_transposition.h"
#include "core/ranking.h"
#include "core/selection.h"
#include "core/spline_transposition.h"
#include "core/transposition.h"
#include "dataset/columnar_io.h"
#include "dataset/scaled_spec.h"
#include "dataset/synthetic_spec.h"
#include "core/ranking_comparison.h"
#include "obs/clock.h"
#include "experiments/bench_options.h"
#include "experiments/harness.h"
#include "obs/metrics.h"
#include "stats/bootstrap.h"
#include "stats/kendall.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace dtrank;

namespace
{

/** Builds the requested predictor. */
std::unique_ptr<core::TranspositionPredictor>
makePredictor(const std::string &method)
{
    const std::string m = util::toLower(method);
    if (m == "nn" || m == "linear")
        return std::make_unique<core::LinearTransposition>();
    if (m == "mlp")
        return std::make_unique<core::MlpTransposition>();
    if (m == "spline")
        return std::make_unique<core::SplineTransposition>();
    if (m == "multi" || m == "knn")
        return std::make_unique<core::MultiTransposition>();
    throw util::InvalidArgument("unknown --method '" + method +
                                "' (nn, mlp, spline, multi)");
}

/** Maps a --method name onto the experiment harness's Method enum. */
experiments::Method
harnessMethod(const std::string &method)
{
    const std::string m = util::toLower(method);
    if (m == "nn" || m == "linear")
        return experiments::Method::NnT;
    if (m == "mlp")
        return experiments::Method::MlpT;
    if (m == "spline")
        return experiments::Method::SplT;
    if (m == "multi" || m == "knn")
        return experiments::Method::MultiNnT;
    throw util::InvalidArgument("unknown --method '" + method +
                                "' (nn, mlp, spline, multi)");
}

/** True when `path` names a columnar file by extension. */
bool
wantsColumnar(const std::string &path)
{
    const std::string ext = dataset::kColumnarExtension;
    return path.size() > ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

/** Applies a non-zero --missing fraction to a database. */
dataset::PerfDatabase
applyMissingOption(const util::ArgParser &args, dataset::PerfDatabase db)
{
    const experiments::MissingSpec spec =
        experiments::parseMissingSpec(args.get("missing"));
    if (spec.fraction <= 0.0)
        return db;
    return dataset::applyMissingness(db, spec.fraction, spec.seed);
}

/** Builds the database selected by --dataset (paper or scaled). */
dataset::PerfDatabase
makeDatabaseFromSpec(const util::ArgParser &args)
{
    const auto seed = static_cast<std::uint64_t>(args.getLong("seed"));
    const experiments::DatasetSpec spec =
        experiments::parseDatasetSpec(args.get("dataset"));
    if (!spec.scaled)
        return applyMissingOption(args,
                                  dataset::makePaperDataset(seed));
    dataset::ScaledSpecConfig config;
    config.machines = spec.machines;
    config.benchmarks = spec.benchmarks > 0
                            ? spec.benchmarks
                            : dataset::benchmarkCatalog().size();
    config.seed = spec.seed != 0 ? spec.seed : seed;
    return applyMissingOption(
        args, dataset::ScaledSpecGenerator(config).generate());
}

/** Loads --db in either format, reporting which was detected. */
dataset::PerfDatabase
loadDatabaseArg(const util::ArgParser &args)
{
    const std::string path = args.get("db");
    util::require(!path.empty(), "--db is required");
    return applyMissingOption(args, dataset::loadDatabaseAuto(path));
}

/** Writes `db` to `path`, columnar when the extension asks for it. */
void
writeDatabase(const dataset::PerfDatabase &db, const std::string &path)
{
    if (wantsColumnar(path))
        dataset::saveColumnar(db, path);
    else
        db.saveCsv(path);
}

int
cmdGenerate(util::ArgParser &args)
{
    const dataset::PerfDatabase db = makeDatabaseFromSpec(args);
    const std::string out = args.get("out");
    util::require(!out.empty(), "generate: --out is required");
    writeDatabase(db, out);
    std::cout << "wrote " << db.benchmarkCount() << " benchmarks x "
              << db.machineCount() << " machines to " << out << " ("
              << (wantsColumnar(out) ? "columnar" : "CSV") << ")\n";
    return 0;
}

int
cmdSave(util::ArgParser &args)
{
    const std::string out = args.get("out");
    util::require(!out.empty(), "save: --out is required");
    const dataset::PerfDatabase db = loadDatabaseArg(args);
    writeDatabase(db, out);
    std::cout << "wrote " << db.benchmarkCount() << " benchmarks x "
              << db.machineCount() << " machines to " << out << " ("
              << (wantsColumnar(out) ? "columnar" : "CSV") << ")\n";
    return 0;
}

int
cmdLoad(util::ArgParser &args)
{
    const std::string path = args.get("db");
    util::require(!path.empty(), "load: --db is required");
    const auto t0 = obs::monotonicNow();
    if (dataset::isColumnarFile(path)) {
        const auto columnar = dataset::ColumnarDatabase::open(path);
        const double open_ms = obs::secondsSince(t0) * 1e3;
        const auto t1 = obs::monotonicNow();
        const dataset::PerfDatabase db = columnar.toDatabase();
        const double mat_ms = obs::secondsSince(t1) * 1e3;
        std::cout << path << ": columnar, " << db.benchmarkCount()
                  << " benchmarks x " << db.machineCount()
                  << " machines, " << columnar.fileBytes() << " bytes, "
                  << (columnar.memoryMapped() ? "mmap" : "buffered")
                  << "\nopen+validate " << util::formatFixed(open_ms, 2)
                  << " ms, materialize " << util::formatFixed(mat_ms, 2)
                  << " ms\n";
    } else {
        const dataset::PerfDatabase db =
            dataset::PerfDatabase::loadCsv(path);
        const double ms = obs::secondsSince(t0) * 1e3;
        std::cout << path << ": CSV, " << db.benchmarkCount()
                  << " benchmarks x " << db.machineCount()
                  << " machines\nparse " << util::formatFixed(ms, 2)
                  << " ms\n";
    }
    return 0;
}

int
cmdInfo(util::ArgParser &args)
{
    const dataset::PerfDatabase db = loadDatabaseArg(args);
    std::cout << db.benchmarkCount() << " benchmarks, "
              << db.machineCount() << " machines, "
              << db.families().size() << " families\n\nBenchmarks:";
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b)
        std::cout << (b ? ", " : " ") << db.benchmark(b).name;
    std::cout << "\n\nMachines:\n";
    util::TablePrinter table({"name", "vendor", "isa", "year"});
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        const auto &info = db.machine(m);
        table.addRow({info.name(), info.vendor, info.isa,
                      std::to_string(info.releaseYear)});
    }
    table.print(std::cout);
    return 0;
}

/** Parses "machine name,score" rows; returns db indices + scores. */
std::pair<std::vector<std::size_t>, std::vector<double>>
loadMeasurements(const dataset::PerfDatabase &db, const std::string &path)
{
    std::map<std::string, std::size_t> by_name;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        by_name[db.machine(m).name()] = m;

    std::vector<std::size_t> machines;
    std::vector<double> scores;
    for (const auto &row : util::readCsvFile(path)) {
        if (row.empty() || (row.size() == 1 && row[0].empty()))
            continue;
        util::require(row.size() == 2,
                      "measurements: expected 'machine,score' rows");
        const std::string name = util::trim(row[0]);
        if (name == "machine" || name == "name")
            continue; // optional header
        const auto it = by_name.find(name);
        util::require(it != by_name.end(),
                      "measurements: unknown machine '" + name +
                          "' (see `dtrank_cli info`)");
        machines.push_back(it->second);
        scores.push_back(util::parseDouble(row[1]));
        util::require(scores.back() > 0.0,
                      "measurements: scores must be positive");
    }
    util::require(machines.size() >= 2,
                  "measurements: need at least 2 owned machines");
    return {machines, scores};
}

int
cmdRank(util::ArgParser &args)
{
    const dataset::PerfDatabase db = loadDatabaseArg(args);
    util::require(!args.get("measurements").empty(),
                  "rank: --measurements <csv> is required "
                  "('machine,score' rows; see `dtrank_cli info`)");
    const auto [owned, app_scores] =
        loadMeasurements(db, args.get("measurements"));

    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (std::find(owned.begin(), owned.end(), m) == owned.end())
            targets.push_back(m);

    // Build the problem by hand: the app is the user's own workload,
    // not a database row.
    const dataset::PerfDatabase pred_db = db.selectMachines(owned);
    const dataset::PerfDatabase target_db = db.selectMachines(targets);
    core::TranspositionProblem problem;
    problem.predictiveBenchScores = pred_db.scores();
    problem.predictiveAppScores = app_scores;
    problem.targetBenchScores = target_db.scores();
    // Ragged databases carry their masks into the problem; the user's
    // own measurements are always fully observed.
    problem.predictiveMask = pred_db.mask();
    problem.targetMask = target_db.mask();

    auto predictor = makePredictor(args.get("method"));
    const auto predicted = predictor->predict(problem);
    const core::MachineRanking ranking(predicted);

    std::cout << "Owned machines (" << owned.size() << "):";
    for (std::size_t m : owned)
        std::cout << " " << db.machine(m).name();
    std::cout << "\nMethod: " << predictor->name()
              << "\n\nPredicted best machines for your application:\n\n"
              << ranking.toTable(
                     target_db,
                     static_cast<std::size_t>(args.getLong("top")));
    return 0;
}

/**
 * Evaluates every benchmark as the application of interest on one
 * k-medoid split, distributing the leave-one-out tasks over --threads
 * workers, and prints one accuracy row per benchmark.
 */
int
evaluateAllApps(util::ArgParser &args, const dataset::PerfDatabase &db,
                const std::vector<std::size_t> &owned,
                const std::vector<std::size_t> &targets)
{
    const experiments::Method method = harnessMethod(args.get("method"));
    experiments::MethodSuiteConfig config;
    config.parallel.threads =
        static_cast<std::size_t>(args.getLong("threads"));
    if (args.getFlag("model-cache"))
        config.modelCache =
            std::make_shared<experiments::TrainedModelCache>(
                experiments::TrainedModelCache::kDefaultCapacity,
                &obs::MetricsRegistry::global());
    // The GA-kNN baseline (the only characteristics consumer) is not
    // reachable from --method, so a placeholder matrix suffices.
    const experiments::SplitEvaluator evaluator(
        db, linalg::Matrix(db.benchmarkCount(), 1), config);
    const auto split = evaluator.evaluateSplit(owned, targets, {method});
    const auto &tasks = split.at(method);

    std::cout << "Owned machines: " << owned.size()
              << " (k-medoid selected)\nMethod: "
              << experiments::methodName(method) << "\n\n";
    util::TablePrinter table(
        {"benchmark", "rank corr", "top-1 err %", "mean err %"});
    double rank = 0.0, top1 = 0.0, err = 0.0;
    for (const experiments::TaskResult &t : tasks) {
        rank += t.metrics.rankCorrelation;
        top1 += t.metrics.top1ErrorPercent;
        err += t.metrics.meanErrorPercent;
        table.addRow({t.benchmark,
                      util::formatFixed(t.metrics.rankCorrelation, 3),
                      util::formatFixed(t.metrics.top1ErrorPercent, 2),
                      util::formatFixed(t.metrics.meanErrorPercent, 2)});
    }
    const double n = static_cast<double>(tasks.size());
    table.addSeparator();
    table.addRow({"Average", util::formatFixed(rank / n, 3),
                  util::formatFixed(top1 / n, 2),
                  util::formatFixed(err / n, 2)});
    table.print(std::cout);
    if (config.modelCache != nullptr) {
        const auto stats = config.modelCache->stats();
        std::cout << "\nModel cache: " << stats.hits << " hits, "
                  << stats.misses << " misses\n";
    }
    return 0;
}

int
cmdEvaluate(util::ArgParser &args)
{
    const dataset::PerfDatabase db = loadDatabaseArg(args);
    const std::string app = args.get("app");
    util::require(app == "all" || db.hasBenchmark(app),
                  "evaluate: unknown benchmark '" + app + "'");

    std::vector<std::size_t> all(db.machineCount());
    for (std::size_t m = 0; m < all.size(); ++m)
        all[m] = m;
    util::Rng rng(static_cast<std::uint64_t>(args.getLong("seed")));
    const auto owned = core::selectMachinesByKMedoids(
        db, all, static_cast<std::size_t>(args.getLong("owned")), rng);
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (std::find(owned.begin(), owned.end(), m) == owned.end())
            targets.push_back(m);

    if (app == "all")
        return evaluateAllApps(args, db, owned, targets);

    const auto problem =
        core::makeProblemFromSplit(db, owned, targets, app);
    auto predictor = makePredictor(args.get("method"));
    auto predicted = predictor->predict(problem);
    const dataset::PerfDatabase target_db = db.selectMachines(targets);
    const std::size_t app_row = db.benchmarkIndex(app);
    auto actual = target_db.benchmarkScores(app_row);
    if (target_db.masked()) {
        // The held-out row carries NaN in its unobserved cells; the
        // metrics compare only observed (actual, predicted) pairs.
        std::vector<double> actual_obs;
        std::vector<double> predicted_obs;
        for (std::size_t m = 0; m < actual.size(); ++m) {
            if (!target_db.mask().valid(app_row, m))
                continue;
            actual_obs.push_back(actual[m]);
            predicted_obs.push_back(predicted[m]);
        }
        util::require(actual_obs.size() >= 2,
                      "evaluate: fewer than 2 observed target scores "
                      "for '" + app + "'");
        actual = std::move(actual_obs);
        predicted = std::move(predicted_obs);
    }

    const auto metrics = core::evaluatePrediction(actual, predicted);
    const auto ci = stats::bootstrapSpearman(actual, predicted);

    std::cout << "Application of interest: " << app << " (held out)\n"
              << "Owned machines: " << owned.size()
              << " (k-medoid selected)\nMethod: " << predictor->name()
              << "\n\n"
              << "Rank correlation:  "
              << util::formatFixed(metrics.rankCorrelation, 3)
              << "  [95% CI " << util::formatFixed(ci.lower, 3) << ", "
              << util::formatFixed(ci.upper, 3) << "]\n"
              << "Kendall tau-b:     "
              << util::formatFixed(stats::kendallTau(actual, predicted),
                                   3)
              << "\n"
              << "Top-1 deficiency:  "
              << util::formatFixed(metrics.top1ErrorPercent, 2) << "%\n"
              << "Top-5 overlap:     "
              << util::formatFixed(
                     core::topNOverlap(actual, predicted, 5) * 100.0, 0)
              << "%\n"
              << "Max rank slip:     "
              << core::maxRankDisplacement(actual, predicted)
              << " positions\n"
              << "Mean error:        "
              << util::formatFixed(metrics.meanErrorPercent, 2) << "%\n"
              << "Max error:         "
              << util::formatFixed(metrics.maxErrorPercent, 2) << "%\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: dtrank_cli "
                     "<generate|save|load|info|rank|evaluate> "
                     "[options]\nRun a subcommand with --help for its "
                     "options.\n";
        return 2;
    }
    const std::string command = argv[1];

    util::ArgParser args("dtrank_cli " + command);
    args.addOption("db", "database path (CSV or .dtc columnar)", "");
    args.addOption("out", "output path (.dtc writes columnar)", "");
    args.addOption("seed", "random seed", "2011");
    args.addOption("dataset",
                   "generate: paper (117x29) or "
                   "scaled:<machines>[x<benchmarks>][:<seed>]",
                   "paper");
    args.addOption("missing",
                   "hide a uniform random fraction of score cells: "
                   "<fraction>[:<seed>] (0 = fully observed)",
                   "0");
    args.addOption("measurements",
                   "CSV of 'machine,score' rows for your application",
                   "");
    args.addOption("method", "predictor: nn, mlp, spline, multi", "mlp");
    args.addOption("top", "ranking rows to print", "10");
    args.addOption("app", "held-out benchmark, or 'all' (evaluate)",
                   "gcc");
    args.addOption("owned", "number of owned machines (evaluate)", "6");
    args.addOption("threads",
                   "worker threads for --app all (0 = all hardware "
                   "threads)",
                   "0");
    args.addFlag("model-cache",
                 "cache trained models during --app all (bit-identical "
                 "results, fewer trainings)");
    args.addOption("metrics-out",
                   "write the metrics registry to this path after the "
                   "run (Prometheus text; JSON when the path ends in "
                   ".json)", "");
    args.addOption("trace-out",
                   "record trace spans and write Chrome trace_event "
                   "JSON to this path (open in chrome://tracing or "
                   "Perfetto)", "");

    try {
        if (!args.parse(argc - 1, argv + 1))
            return 0;
        experiments::applyObservabilityOptions(args);
        int rc = 2;
        if (command == "generate")
            rc = cmdGenerate(args);
        else if (command == "save")
            rc = cmdSave(args);
        else if (command == "load")
            rc = cmdLoad(args);
        else if (command == "info")
            rc = cmdInfo(args);
        else if (command == "rank")
            rc = cmdRank(args);
        else if (command == "evaluate")
            rc = cmdEvaluate(args);
        else
            std::cerr << "unknown command '" << command << "'\n";
        experiments::writeObservabilityOutputs(args);
        return rc;
    } catch (const util::Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
