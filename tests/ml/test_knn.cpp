/**
 * @file
 * Unit tests for the kNN regressor.
 */

#include <memory>

#include <gtest/gtest.h>

#include "ml/knn.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

std::shared_ptr<ml::DistanceMetric>
euclidean()
{
    return std::make_shared<ml::EuclideanDistance>();
}

TEST(Knn, ValidatesConstruction)
{
    EXPECT_THROW(ml::KnnRegressor(0, euclidean()),
                 util::InvalidArgument);
    EXPECT_THROW(ml::KnnRegressor(1, nullptr), util::InvalidArgument);
}

TEST(Knn, ValidatesFit)
{
    ml::KnnRegressor knn(1, euclidean());
    EXPECT_THROW(knn.fit({}, {}), util::InvalidArgument);
    EXPECT_THROW(knn.fit({{1.0}}, {1.0, 2.0}), util::InvalidArgument);
    EXPECT_THROW(knn.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}),
                 util::InvalidArgument);
    EXPECT_THROW(knn.predict({0.0}), util::InvalidArgument);
}

TEST(Knn, OneNearestNeighborIsExactLookup)
{
    ml::KnnRegressor knn(1, euclidean());
    knn.fit({{0.0}, {1.0}, {2.0}}, {10, 20, 30});
    EXPECT_DOUBLE_EQ(knn.predict({0.1}), 10.0);
    EXPECT_DOUBLE_EQ(knn.predict({1.4}), 20.0);
    EXPECT_DOUBLE_EQ(knn.predict({5.0}), 30.0);
}

TEST(Knn, UniformAveragesKNeighbors)
{
    ml::KnnRegressor knn(2, euclidean(), ml::KnnWeighting::Uniform);
    knn.fit({{0.0}, {1.0}, {10.0}}, {10, 20, 90});
    // Nearest two of 0.4 are 0.0 and 1.0 -> mean 15.
    EXPECT_DOUBLE_EQ(knn.predict({0.4}), 15.0);
}

TEST(Knn, InverseDistanceWeightsCloserNeighborsMore)
{
    ml::KnnRegressor knn(2, euclidean(),
                         ml::KnnWeighting::InverseDistance);
    knn.fit({{0.0}, {1.0}}, {10, 20});
    const double near_zero = knn.predict({0.1});
    EXPECT_GT(near_zero, 10.0);
    EXPECT_LT(near_zero, 15.0); // pulled toward the closer target
}

TEST(Knn, ExactMatchDominatesInverseDistance)
{
    ml::KnnRegressor knn(2, euclidean(),
                         ml::KnnWeighting::InverseDistance);
    knn.fit({{0.0}, {1.0}}, {10, 20});
    EXPECT_NEAR(knn.predict({0.0}), 10.0, 1e-3);
}

TEST(Knn, KLargerThanTrainingSetUsesAll)
{
    ml::KnnRegressor knn(10, euclidean());
    knn.fit({{0.0}, {1.0}}, {10, 20});
    EXPECT_DOUBLE_EQ(knn.predict({0.0}), 15.0);
}

TEST(Knn, NearestIndicesOrderedByDistance)
{
    ml::KnnRegressor knn(3, euclidean());
    knn.fit({{5.0}, {1.0}, {3.0}, {10.0}}, {1, 2, 3, 4});
    const auto nn = knn.nearestIndices({0.0});
    ASSERT_EQ(nn.size(), 3u);
    EXPECT_EQ(nn[0], 1u); // 1.0
    EXPECT_EQ(nn[1], 2u); // 3.0
    EXPECT_EQ(nn[2], 0u); // 5.0
}

TEST(Knn, DeterministicTieBreakByIndex)
{
    ml::KnnRegressor knn(1, euclidean());
    knn.fit({{1.0}, {-1.0}}, {100, 200});
    // Both points are at distance 1 from the query; lower index wins.
    const auto nn = knn.nearestIndices({0.0});
    EXPECT_EQ(nn[0], 0u);
}

TEST(Knn, Accessors)
{
    ml::KnnRegressor knn(4, euclidean());
    EXPECT_EQ(knn.k(), 4u);
    knn.fit({{1.0}, {2.0}, {3.0}}, {1, 2, 3});
    EXPECT_EQ(knn.trainingSize(), 3u);
}

TEST(Knn, MultidimensionalQueries)
{
    ml::KnnRegressor knn(1, euclidean());
    knn.fit({{0, 0}, {10, 0}, {0, 10}}, {1, 2, 3});
    EXPECT_DOUBLE_EQ(knn.predict({9, 1}), 2.0);
    EXPECT_DOUBLE_EQ(knn.predict({1, 9}), 3.0);
}

} // namespace
