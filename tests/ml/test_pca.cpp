/**
 * @file
 * Unit and property tests for PCA.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ml/pca.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;
using linalg::Matrix;

TEST(Pca, RecoversADominantDirection)
{
    // Points along the diagonal of a 2D space with small noise: the
    // first component must be ~(1,1)/sqrt(2) and dominate.
    util::Rng rng(1);
    Matrix x(200, 2);
    for (std::size_t r = 0; r < 200; ++r) {
        const double t = rng.uniform(-5.0, 5.0);
        x(r, 0) = t + rng.gaussian(0.0, 0.05);
        x(r, 1) = t + rng.gaussian(0.0, 0.05);
    }
    ml::PcaConfig config;
    config.standardize = false;
    ml::Pca pca(config);
    pca.fit(x);

    const auto ratios = pca.explainedVarianceRatio();
    EXPECT_GT(ratios[0], 0.99);
    const double v0 = pca.components()(0, 0);
    const double v1 = pca.components()(1, 0);
    EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 0.01);
    EXPECT_NEAR(v0, v1, 0.01);
}

TEST(Pca, ExplainedVarianceRatiosSumToOne)
{
    util::Rng rng(2);
    Matrix x(50, 4);
    for (std::size_t r = 0; r < 50; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            x(r, c) = rng.uniform(0.0, 10.0);
    ml::Pca pca{};
    pca.fit(x);
    double total = 0.0;
    for (double v : pca.explainedVarianceRatio())
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pca, ComponentsForVariance)
{
    // One dominant direction plus noise: 1 component should explain
    // 90% of the variance; all components explain 100%.
    util::Rng rng(3);
    Matrix x(100, 3);
    for (std::size_t r = 0; r < 100; ++r) {
        const double t = rng.uniform(-10.0, 10.0);
        x(r, 0) = t;
        x(r, 1) = -t + rng.gaussian(0.0, 0.1);
        x(r, 2) = rng.gaussian(0.0, 0.1);
    }
    ml::PcaConfig config;
    config.standardize = false;
    ml::Pca pca(config);
    pca.fit(x);
    EXPECT_EQ(pca.componentsForVariance(0.9), 1u);
    EXPECT_EQ(pca.componentsForVariance(1.0), 3u);
    EXPECT_THROW(pca.componentsForVariance(0.0), util::InvalidArgument);
    EXPECT_THROW(pca.componentsForVariance(1.5), util::InvalidArgument);
}

TEST(Pca, TransformPreservesPairwiseDistancesAtFullRank)
{
    util::Rng rng(4);
    Matrix x(20, 3);
    for (std::size_t r = 0; r < 20; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            x(r, c) = rng.uniform(-2.0, 2.0);
    ml::PcaConfig config;
    config.standardize = false;
    ml::Pca pca(config);
    pca.fit(x);
    const Matrix z = pca.transform(x, 3);

    // Full-rank PCA is a rotation of the centered data: pairwise
    // distances are preserved.
    auto dist2 = [](const Matrix &m, std::size_t a, std::size_t b) {
        double acc = 0.0;
        for (std::size_t c = 0; c < m.cols(); ++c) {
            const double d = m(a, c) - m(b, c);
            acc += d * d;
        }
        return acc;
    };
    for (std::size_t a = 0; a < 5; ++a)
        for (std::size_t b = a + 1; b < 5; ++b)
            EXPECT_NEAR(dist2(x, a, b), dist2(z, a, b), 1e-8);
}

TEST(Pca, ProjectionsAreUncorrelated)
{
    util::Rng rng(5);
    Matrix x(100, 3);
    for (std::size_t r = 0; r < 100; ++r) {
        const double t = rng.uniform(-3.0, 3.0);
        x(r, 0) = t + rng.gaussian(0.0, 0.3);
        x(r, 1) = 2.0 * t + rng.gaussian(0.0, 0.3);
        x(r, 2) = rng.gaussian(0.0, 1.0);
    }
    ml::Pca pca{};
    pca.fit(x);
    const Matrix z = pca.transform(x, 3);
    // Sample covariance of distinct projected columns ~ 0.
    for (std::size_t a = 0; a < 3; ++a) {
        for (std::size_t b = a + 1; b < 3; ++b) {
            double cov = 0.0;
            for (std::size_t r = 0; r < 100; ++r)
                cov += z(r, a) * z(r, b);
            EXPECT_NEAR(cov / 99.0, 0.0, 1e-6);
        }
    }
}

TEST(Pca, StandardizationEqualizesScales)
{
    // Second feature has 100x the scale; without standardization it
    // dominates, with standardization it does not.
    util::Rng rng(6);
    Matrix x(100, 2);
    for (std::size_t r = 0; r < 100; ++r) {
        x(r, 0) = rng.uniform(-1.0, 1.0);
        x(r, 1) = rng.uniform(-100.0, 100.0);
    }
    ml::PcaConfig raw;
    raw.standardize = false;
    ml::Pca pca_raw(raw);
    pca_raw.fit(x);
    EXPECT_GT(std::fabs(pca_raw.components()(1, 0)), 0.99);

    ml::Pca pca_std{};
    pca_std.fit(x);
    EXPECT_LT(std::fabs(pca_std.components()(1, 0)), 0.95);
}

TEST(Pca, Validation)
{
    ml::Pca pca{};
    EXPECT_THROW(pca.components(), util::InvalidArgument);
    EXPECT_THROW(pca.fit(Matrix(1, 2)), util::InvalidArgument);
    pca.fit(Matrix{{1, 2}, {3, 4}, {5, 7}});
    EXPECT_EQ(pca.featureCount(), 2u);
    EXPECT_THROW(pca.transform(std::vector<double>{1.0}, 1),
                 util::InvalidArgument);
    EXPECT_THROW(pca.transform(std::vector<double>{1.0, 2.0}, 3),
                 util::InvalidArgument);
    EXPECT_THROW(pca.transform(std::vector<double>{1.0, 2.0}, 0),
                 util::InvalidArgument);
}

} // namespace
