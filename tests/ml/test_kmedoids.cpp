/**
 * @file
 * Unit tests for k-medoids clustering.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ml/kmedoids.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

std::vector<std::vector<double>>
twoBlobs()
{
    // Two well-separated blobs around (0,0) and (100,100).
    return {
        {0, 0},     {1, 0},     {0, 1},     {1, 1},
        {100, 100}, {101, 100}, {100, 101}, {101, 101},
    };
}

TEST(KMedoids, RecoverWellSeparatedClusters)
{
    const auto points = twoBlobs();
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(1);
    const auto result = clusterer.cluster(points, 2, metric, rng);

    ASSERT_EQ(result.medoids.size(), 2u);
    ASSERT_EQ(result.assignment.size(), points.size());
    // First four points together, last four together.
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_EQ(result.assignment[i], result.assignment[0]);
    for (std::size_t i = 5; i < 8; ++i)
        EXPECT_EQ(result.assignment[i], result.assignment[4]);
    EXPECT_NE(result.assignment[0], result.assignment[4]);
    // One medoid per blob.
    EXPECT_LT(std::min(result.medoids[0], result.medoids[1]), 4u);
    EXPECT_GE(std::max(result.medoids[0], result.medoids[1]), 4u);
}

TEST(KMedoids, MedoidsAreMembersOfTheirClusters)
{
    const auto points = twoBlobs();
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(2);
    const auto result = clusterer.cluster(points, 3, metric, rng);
    for (std::size_t c = 0; c < result.medoids.size(); ++c)
        EXPECT_EQ(result.assignment[result.medoids[c]], c);
}

TEST(KMedoids, KEqualsNMakesEveryPointAMedoid)
{
    const std::vector<std::vector<double>> points = {{0}, {5}, {9}};
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(3);
    const auto result = clusterer.cluster(points, 3, metric, rng);
    const std::set<std::size_t> medoids(result.medoids.begin(),
                                        result.medoids.end());
    EXPECT_EQ(medoids.size(), 3u);
    EXPECT_NEAR(result.totalCost, 0.0, 1e-12);
}

TEST(KMedoids, SingleClusterPicksCentralPoint)
{
    const std::vector<std::vector<double>> points = {
        {0.0}, {10.0}, {5.0}, {6.0}};
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(4);
    const auto result = clusterer.cluster(points, 1, metric, rng);
    // The medoid minimizing total distance is 5.0 (index 2):
    // cost(5) = 5+5+1 = 11 < cost(6) = 6+4+1 = 11 ... tie; accept
    // either of the central points.
    EXPECT_TRUE(result.medoids[0] == 2 || result.medoids[0] == 3);
}

TEST(KMedoids, DeterministicGivenSeed)
{
    const auto points = twoBlobs();
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng1(7);
    util::Rng rng2(7);
    const auto a = clusterer.cluster(points, 2, metric, rng1);
    const auto b = clusterer.cluster(points, 2, metric, rng2);
    EXPECT_EQ(a.medoids, b.medoids);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMedoids, MedoidsReturnedSorted)
{
    const auto points = twoBlobs();
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(11);
    const auto result = clusterer.cluster(points, 3, metric, rng);
    EXPECT_TRUE(std::is_sorted(result.medoids.begin(),
                               result.medoids.end()));
}

TEST(KMedoids, ClusterFromDistancesMatchesPointApi)
{
    const auto points = twoBlobs();
    const ml::EuclideanDistance metric;
    const auto dist = ml::pairwiseDistances(points, metric);
    const ml::KMedoids clusterer;
    util::Rng rng1(5);
    util::Rng rng2(5);
    const auto a = clusterer.cluster(points, 2, metric, rng1);
    const auto b = clusterer.clusterFromDistances(dist, 2, rng2);
    EXPECT_EQ(a.medoids, b.medoids);
}

TEST(KMedoids, Validation)
{
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    util::Rng rng(1);
    EXPECT_THROW(clusterer.cluster({}, 1, metric, rng),
                 util::InvalidArgument);
    EXPECT_THROW(clusterer.cluster({{1.0}}, 2, metric, rng),
                 util::InvalidArgument);
    EXPECT_THROW(clusterer.cluster({{1.0}}, 0, metric, rng),
                 util::InvalidArgument);
    // Non-square distance matrix.
    EXPECT_THROW(
        clusterer.clusterFromDistances({{0.0, 1.0}}, 1, rng),
        util::InvalidArgument);
}

TEST(KMedoids, ConfigValidation)
{
    ml::KMedoidsConfig config;
    config.maxIterations = 0;
    EXPECT_THROW(ml::KMedoids{config}, util::InvalidArgument);
    config.maxIterations = 10;
    config.restarts = 0;
    EXPECT_THROW(ml::KMedoids{config}, util::InvalidArgument);
}

TEST(KMedoids, CostDecreasesWithMoreClusters)
{
    const auto points = twoBlobs();
    const ml::EuclideanDistance metric;
    const ml::KMedoids clusterer;
    double prev_cost = 1e18;
    for (std::size_t k = 1; k <= 4; ++k) {
        util::Rng rng(20 + k);
        const auto result = clusterer.cluster(points, k, metric, rng);
        EXPECT_LE(result.totalCost, prev_cost + 1e-9);
        prev_cost = result.totalCost;
    }
}

} // namespace
