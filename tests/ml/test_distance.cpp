/**
 * @file
 * Unit tests for the distance metrics.
 */

#include <gtest/gtest.h>

#include "ml/distance.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(Euclidean, KnownDistances)
{
    const ml::EuclideanDistance d;
    EXPECT_DOUBLE_EQ(d.distance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(d.distance({1, 1}, {1, 1}), 0.0);
    EXPECT_EQ(d.name(), "euclidean");
}

TEST(Manhattan, KnownDistances)
{
    const ml::ManhattanDistance d;
    EXPECT_DOUBLE_EQ(d.distance({0, 0}, {3, -4}), 7.0);
    EXPECT_EQ(d.name(), "manhattan");
    EXPECT_THROW(d.distance({1}, {1, 2}), util::InvalidArgument);
}

TEST(WeightedEuclidean, ReducesToEuclideanWithUnitWeights)
{
    const ml::WeightedEuclideanDistance d({1.0, 1.0});
    EXPECT_DOUBLE_EQ(d.distance({0, 0}, {3, 4}), 5.0);
}

TEST(WeightedEuclidean, ZeroWeightIgnoresDimension)
{
    const ml::WeightedEuclideanDistance d({1.0, 0.0});
    EXPECT_DOUBLE_EQ(d.distance({0, 0}, {3, 1000}), 3.0);
}

TEST(WeightedEuclidean, Validation)
{
    EXPECT_THROW(ml::WeightedEuclideanDistance({}),
                 util::InvalidArgument);
    EXPECT_THROW(ml::WeightedEuclideanDistance({1.0, -0.5}),
                 util::InvalidArgument);
    const ml::WeightedEuclideanDistance d({1.0});
    EXPECT_THROW(d.distance({1.0, 2.0}, {1.0, 2.0}),
                 util::InvalidArgument);
}

TEST(WeightedEuclidean, ExposesWeights)
{
    const ml::WeightedEuclideanDistance d({0.5, 2.0});
    EXPECT_EQ(d.weights(), (std::vector<double>{0.5, 2.0}));
}

TEST(PairwiseDistances, SymmetricZeroDiagonal)
{
    const std::vector<std::vector<double>> points = {
        {0, 0}, {3, 4}, {6, 8}};
    const ml::EuclideanDistance metric;
    const auto d = ml::pairwiseDistances(points, metric);
    ASSERT_EQ(d.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(d[i][i], 0.0);
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(d[i][j], d[j][i]);
    }
    EXPECT_DOUBLE_EQ(d[0][1], 5.0);
    EXPECT_DOUBLE_EQ(d[0][2], 10.0);
    EXPECT_DOUBLE_EQ(d[1][2], 5.0);
}

TEST(PairwiseDistances, TriangleInequalityHolds)
{
    const std::vector<std::vector<double>> points = {
        {0, 0}, {1, 2}, {4, 1}, {-2, 3}};
    const ml::EuclideanDistance metric;
    const auto d = ml::pairwiseDistances(points, metric);
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t j = 0; j < points.size(); ++j)
            for (std::size_t k = 0; k < points.size(); ++k)
                EXPECT_LE(d[i][j], d[i][k] + d[k][j] + 1e-12);
}

} // namespace
