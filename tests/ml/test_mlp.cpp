/**
 * @file
 * Unit and behaviour tests for the WEKA-style multilayer perceptron.
 */

#include <gtest/gtest.h>

#include "ml/mlp.h"
#include "simd/simd.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;
using linalg::Matrix;

ml::MlpConfig
fastConfig()
{
    ml::MlpConfig config;
    config.epochs = 200;
    return config;
}

TEST(Mlp, LearnsLinearFunction)
{
    // y = 2*x1 - x2 + 1 over a grid.
    util::Rng rng(1);
    Matrix x(40, 2);
    std::vector<double> y(40);
    for (std::size_t i = 0; i < 40; ++i) {
        x(i, 0) = rng.uniform(0.0, 10.0);
        x(i, 1) = rng.uniform(0.0, 10.0);
        y[i] = 2.0 * x(i, 0) - x(i, 1) + 1.0;
    }
    ml::Mlp net(fastConfig());
    net.fit(x, y);
    EXPECT_TRUE(net.trained());
    // In-range predictions should be close.
    double max_err = 0.0;
    for (std::size_t i = 0; i < 40; ++i)
        max_err = std::max(max_err,
                           std::fabs(net.predict(x.row(i)) - y[i]));
    const double y_range = 31.0; // roughly max-min of targets
    EXPECT_LT(max_err / y_range, 0.08);
}

TEST(Mlp, LearnsNonlinearRelation)
{
    // y = x^2 on [0, 4]: a linear model would have large error.
    Matrix x(17, 1);
    std::vector<double> y(17);
    for (std::size_t i = 0; i < 17; ++i) {
        x(i, 0) = 0.25 * static_cast<double>(i);
        y[i] = x(i, 0) * x(i, 0);
    }
    ml::MlpConfig config = fastConfig();
    config.epochs = 2000;
    ml::Mlp net(config);
    net.fit(x, y);
    EXPECT_NEAR(net.predict(std::vector<double>{2.0}), 4.0, 1.0);
    EXPECT_NEAR(net.predict(std::vector<double>{3.5}), 12.25, 2.0);
    // The fit must capture curvature: midpoint below chord.
    const double mid = net.predict(std::vector<double>{2.0});
    const double chord = 0.5 * (net.predict(std::vector<double>{0.5}) + net.predict(std::vector<double>{3.5}));
    EXPECT_LT(mid, chord);
}

TEST(Mlp, LossDecreasesDuringTraining)
{
    util::Rng rng(2);
    Matrix x(30, 3);
    std::vector<double> y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        for (std::size_t c = 0; c < 3; ++c)
            x(i, c) = rng.uniform(-1.0, 1.0);
        y[i] = x(i, 0) + 0.5 * x(i, 1);
    }
    ml::Mlp net(fastConfig());
    net.fit(x, y);
    const auto &loss = net.lossHistory();
    ASSERT_EQ(loss.size(), fastConfig().epochs);
    EXPECT_LT(loss.back(), loss.front());
}

TEST(Mlp, DeterministicGivenSeed)
{
    Matrix x{{1}, {2}, {3}, {4}};
    const std::vector<double> y = {2, 4, 6, 8};
    ml::Mlp a(fastConfig());
    ml::Mlp b(fastConfig());
    a.fit(x, y);
    b.fit(x, y);
    EXPECT_DOUBLE_EQ(a.predict(std::vector<double>{2.5}), b.predict(std::vector<double>{2.5}));
}

TEST(Mlp, DifferentSeedsDiffer)
{
    Matrix x{{1}, {2}, {3}, {4}};
    const std::vector<double> y = {2, 4, 6, 8};
    ml::MlpConfig c1 = fastConfig();
    ml::MlpConfig c2 = fastConfig();
    c2.seed = 999;
    ml::Mlp a(c1);
    ml::Mlp b(c2);
    a.fit(x, y);
    b.fit(x, y);
    EXPECT_NE(a.predict(std::vector<double>{2.5}), b.predict(std::vector<double>{2.5}));
}

TEST(Mlp, WekaAutomaticHiddenLayer)
{
    // WEKA's 'a' rule: (#attributes + #outputs) / 2.
    Matrix x(5, 28);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 28; ++c)
            x(r, c) = static_cast<double>(r + c);
    ml::MlpConfig config = fastConfig();
    config.epochs = 5;
    ml::Mlp net(config);
    net.fit(x, {1, 2, 3, 4, 5});
    ASSERT_EQ(net.hiddenSizes().size(), 1u);
    EXPECT_EQ(net.hiddenSizes()[0], (28u + 1u) / 2u);
    EXPECT_EQ(net.inputSize(), 28u);
}

TEST(Mlp, ExplicitHiddenLayers)
{
    ml::MlpConfig config = fastConfig();
    config.hiddenLayers = {4, 3};
    config.epochs = 5;
    ml::Mlp net(config);
    Matrix x{{1}, {2}, {3}};
    net.fit(x, {1, 2, 3});
    EXPECT_EQ(net.hiddenSizes(), (std::vector<std::size_t>{4, 3}));
}

TEST(Mlp, SingleTrainingInstanceIsFittedExactly)
{
    ml::MlpConfig config = fastConfig();
    config.epochs = 50;
    ml::Mlp net(config);
    Matrix x{{3.0, 4.0}};
    net.fit(x, {7.0});
    // With target normalization a single point maps to the centre of
    // the output range; the inverse transform must recover it.
    EXPECT_NEAR(net.predict(std::vector<double>{3.0, 4.0}), 7.0, 1e-6);
}

TEST(Mlp, TinyTrainingSetDoesNotDiverge)
{
    // Three near-collinear instances with large feature scales — the
    // regime that used to blow up stochastic backprop. The restart
    // logic must keep the loss finite.
    Matrix x{{100, 200, 300}, {110, 220, 330}, {90, 180, 270}};
    const std::vector<double> y = {50, 55, 45};
    ml::MlpConfig config;
    config.epochs = 500;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        config.seed = seed;
        ml::Mlp net(config);
        net.fit(x, y);
        EXPECT_TRUE(std::isfinite(net.trainingMse())) << seed;
        EXPECT_TRUE(std::isfinite(net.predict(std::vector<double>{105, 210, 315})))
            << seed;
    }
}

TEST(Mlp, Validation)
{
    ml::Mlp net(fastConfig());
    EXPECT_THROW(net.predict(std::vector<double>{1.0}), util::InvalidArgument);
    EXPECT_THROW(net.trainingMse(), util::InvalidArgument);
    EXPECT_THROW(net.fit(Matrix(), {}), util::InvalidArgument);
    EXPECT_THROW(net.fit(Matrix(2, 2), {1.0}), util::InvalidArgument);

    net.fit(Matrix{{1}, {2}}, {1, 2});
    EXPECT_THROW(net.predict(std::vector<double>{1.0, 2.0}), util::InvalidArgument);
}

TEST(Mlp, ConfigValidation)
{
    ml::MlpConfig bad;
    bad.learningRate = 0.0;
    EXPECT_THROW(ml::Mlp{bad}, util::InvalidArgument);

    bad = ml::MlpConfig{};
    bad.momentum = 1.0;
    EXPECT_THROW(ml::Mlp{bad}, util::InvalidArgument);

    bad = ml::MlpConfig{};
    bad.epochs = 0;
    EXPECT_THROW(ml::Mlp{bad}, util::InvalidArgument);

    bad = ml::MlpConfig{};
    bad.initWeightRange = 0.0;
    EXPECT_THROW(ml::Mlp{bad}, util::InvalidArgument);
}

TEST(Mlp, BatchPredictMatchesScalar)
{
    Matrix x{{1}, {2}, {3}, {4}};
    ml::MlpConfig config = fastConfig();
    config.epochs = 50;
    ml::Mlp net(config);
    net.fit(x, {1, 2, 3, 4});
    const auto batch = net.predict(x);
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_DOUBLE_EQ(batch[r], net.predict(x.row(r)));
}

TEST(Mlp, BatchPredictIsBitIdenticalOnWideNetworks)
{
    // Multi-feature inputs and two hidden layers exercise the batched
    // layer sweep with several accumulation terms per unit; the result
    // must still match the scalar path exactly, not just approximately.
    util::Rng rng(3);
    Matrix x(30, 5);
    std::vector<double> y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        for (std::size_t c = 0; c < 5; ++c)
            x(i, c) = rng.uniform(-3.0, 3.0);
        y[i] = x(i, 0) - 2.0 * x(i, 3);
    }
    ml::MlpConfig config = fastConfig();
    config.epochs = 40;
    config.hiddenLayers = {6, 4};
    ml::Mlp net(config);
    net.fit(x, y);

    const auto batch = net.predict(x);
    ASSERT_EQ(batch.size(), 30u);
    for (std::size_t r = 0; r < 30; ++r)
        EXPECT_EQ(batch[r], net.predict(x.row(r))) << "row " << r;
}

TEST(Mlp, MinibatchConvergesOnLinearFunction)
{
    // The GEMM-backed minibatch engine is a different optimization
    // trajectory than per-sample SGD, but it must still learn. Cover
    // full-batch (0) and a batch size that leaves a partial final
    // batch (40 % 16 = 8 rows).
    util::Rng rng(1);
    Matrix x(40, 2);
    std::vector<double> y(40);
    for (std::size_t i = 0; i < 40; ++i) {
        x(i, 0) = rng.uniform(0.0, 10.0);
        x(i, 1) = rng.uniform(0.0, 10.0);
        y[i] = 2.0 * x(i, 0) - x(i, 1) + 1.0;
    }
    for (std::size_t batch : {std::size_t{0}, std::size_t{16}}) {
        ml::MlpConfig config = fastConfig();
        config.epochs = 2000;
        config.batchSize = batch;
        ml::Mlp net(config);
        net.fit(x, y);
        EXPECT_TRUE(net.trained());
        double max_err = 0.0;
        for (std::size_t i = 0; i < 40; ++i)
            max_err = std::max(
                max_err, std::fabs(net.predict(x.row(i)) - y[i]));
        const double y_range = 31.0;
        EXPECT_LT(max_err / y_range, 0.08) << "batch=" << batch;
    }
}

TEST(Mlp, MinibatchLossDecreasesAndIsDeterministic)
{
    util::Rng rng(2);
    Matrix x(30, 3);
    std::vector<double> y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        for (std::size_t c = 0; c < 3; ++c)
            x(i, c) = rng.uniform(-1.0, 1.0);
        y[i] = x(i, 0) + 0.5 * x(i, 1);
    }
    ml::MlpConfig config = fastConfig();
    config.batchSize = 8;
    ml::Mlp a(config);
    ml::Mlp b(config);
    a.fit(x, y);
    b.fit(x, y);
    const auto &loss = a.lossHistory();
    ASSERT_EQ(loss.size(), config.epochs);
    EXPECT_LT(loss.back(), loss.front());
    // Same seed, same batch size: bit-identical runs.
    EXPECT_EQ(a.lossHistory(), b.lossHistory());
    const auto pa = a.predict(x);
    const auto pb = b.predict(x);
    EXPECT_EQ(pa, pb);
}

TEST(Mlp, MinibatchMatchesAcrossBatchedWorkspaceReuse)
{
    // One workspace reused for a per-sample fit, then a batched fit,
    // then per-sample again: each engine relays out the weights it
    // needs (per-sample transposed, batched unit-major), so reuse must
    // not contaminate results.
    Matrix x{{1}, {2}, {3}, {4}};
    const std::vector<double> y = {2, 4, 6, 8};

    ml::MlpConfig per_sample = fastConfig();
    ml::MlpConfig batched = fastConfig();
    batched.batchSize = 0;

    ml::Mlp fresh_ps(per_sample);
    fresh_ps.fit(x, y);
    ml::Mlp fresh_b(batched);
    fresh_b.fit(x, y);

    ml::MlpWorkspace ws;
    ml::Mlp a(per_sample);
    a.fit(x, y, ws);
    ml::Mlp b(batched);
    b.fit(x, y, ws);
    ml::Mlp c(per_sample);
    c.fit(x, y, ws);

    const std::vector<double> probe{2.5};
    EXPECT_EQ(a.predict(probe), fresh_ps.predict(probe));
    EXPECT_EQ(b.predict(probe), fresh_b.predict(probe));
    EXPECT_EQ(c.predict(probe), fresh_ps.predict(probe));
}

TEST(Mlp, MinibatchBitIdenticalAcrossSimdTiers)
{
    // The minibatch trajectory differs from per-sample SGD, but like
    // every path in the repo it must be bit-identical across dispatch
    // tiers: the GEMM forward is canonical dots, the delta recurrence
    // and gradient sweeps are elementwise.
    util::Rng rng(7);
    Matrix x(30, 5);
    std::vector<double> y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        for (std::size_t c = 0; c < 5; ++c)
            x(i, c) = rng.uniform(-3.0, 3.0);
        y[i] = x(i, 0) - 2.0 * x(i, 3);
    }
    ml::MlpConfig config = fastConfig();
    config.epochs = 60;
    config.hiddenLayers = {17, 6}; // >16 inputs: full canonical blocks
    config.batchSize = 8;

    const simd::Tier saved = simd::activeTier();
    simd::setTier(simd::Tier::Scalar);
    ml::Mlp ref(config);
    ref.fit(x, y);
    const auto ref_loss = ref.lossHistory();
    const auto ref_pred = ref.predict(x);

    for (simd::Tier tier : {simd::Tier::Avx2, simd::Tier::Avx512}) {
        if (simd::requestTier(tier) != tier)
            continue; // tier unavailable on this build/CPU
        ml::Mlp net(config);
        net.fit(x, y);
        EXPECT_EQ(net.lossHistory(), ref_loss)
            << simd::tierName(tier);
        EXPECT_EQ(net.predict(x), ref_pred) << simd::tierName(tier);
    }
    simd::setTier(saved);
}

TEST(Mlp, MinibatchTinyTrainingSetDoesNotDiverge)
{
    // The batched engine shares the divergence/restart protocol; the
    // 3-machine transposition regime must stay finite under it too.
    Matrix x{{100, 200, 300}, {110, 220, 330}, {90, 180, 270}};
    const std::vector<double> y = {50, 55, 45};
    ml::MlpConfig config;
    config.epochs = 500;
    config.batchSize = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        config.seed = seed;
        ml::Mlp net(config);
        net.fit(x, y);
        EXPECT_TRUE(std::isfinite(net.trainingMse())) << seed;
    }
}

TEST(Mlp, NoNormalizationModeWorksOnCenteredData)
{
    ml::MlpConfig config = fastConfig();
    config.normalize = false;
    config.epochs = 1000;
    ml::Mlp net(config);
    Matrix x{{-1.0}, {-0.5}, {0.0}, {0.5}, {1.0}};
    const std::vector<double> y = {-0.5, -0.25, 0.0, 0.25, 0.5};
    net.fit(x, y);
    EXPECT_NEAR(net.predict(std::vector<double>{0.25}), 0.125, 0.1);
}

} // namespace
