/**
 * @file
 * Tests for the workspace-based MLP training engine: the explicit and
 * per-thread workspace paths must be bit-identical to each other and to
 * the pre-workspace implementation (golden values), and a warm
 * workspace must make the epoch x sample loop allocation-free.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "ml/mlp.h"
#include "util/error.h"
#include "util/rng.h"

// ---------------------------------------------------------------------
// Counting global allocator: every operator new in this binary bumps
// g_news, so a test can measure how many heap allocations a region
// performs. Deallocation is not counted (free order is uninteresting).
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::size_t> g_news{0};

void *
countedAlloc(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    const std::size_t rounded = (size + align - 1) / align * align;
    if (void *p = std::aligned_alloc(align, rounded ? rounded : align))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace dtrank;
using linalg::Matrix;

Matrix
goldenX()
{
    return Matrix{{1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}};
}

const std::vector<double> kGoldenY = {2.0, 4.0, 6.0, 8.0};

ml::MlpConfig
goldenConfig()
{
    ml::MlpConfig config;
    config.epochs = 120;
    return config;
}

TEST(MlpWorkspace, GoldenEquivalenceWithPreWorkspaceImplementation)
{
    // Pinned from the pre-workspace (PR 1) implementation at the same
    // seed: the workspace engine restructures the loops but must not
    // change a single bit of the arithmetic.
    ml::Mlp net(goldenConfig());
    ml::MlpWorkspace ws;
    net.fit(goldenX(), kGoldenY, ws);
    EXPECT_EQ(net.trainingMse(), 0.005230875614947751);
    EXPECT_EQ(net.predict(std::vector<double>{2.5, 2.5}),
              5.0102542199924294);
}

TEST(MlpWorkspace, ExplicitWorkspaceMatchesPerThreadWorkspace)
{
    ml::Mlp implicit_ws(goldenConfig());
    implicit_ws.fit(goldenX(), kGoldenY);

    ml::Mlp explicit_ws(goldenConfig());
    ml::MlpWorkspace ws;
    explicit_ws.fit(goldenX(), kGoldenY, ws);

    EXPECT_EQ(implicit_ws.lossHistory(), explicit_ws.lossHistory());
    const Matrix x = goldenX();
    for (std::size_t r = 0; r < x.rows(); ++r)
        EXPECT_EQ(implicit_ws.predict(x.row(r)),
                  explicit_ws.predict(x.row(r)));
}

TEST(MlpWorkspace, WarmWorkspaceMatchesColdWorkspace)
{
    // Reusing a workspace across fits (the steady state of the
    // experiment protocols) must leave no trace in the results.
    ml::MlpWorkspace warm;
    ml::Mlp first(goldenConfig());
    first.fit(goldenX(), kGoldenY, warm);

    ml::Mlp reused(goldenConfig());
    reused.fit(goldenX(), kGoldenY, warm);
    ml::Mlp cold_net(goldenConfig());
    ml::MlpWorkspace cold;
    cold_net.fit(goldenX(), kGoldenY, cold);

    EXPECT_EQ(reused.lossHistory(), cold_net.lossHistory());
    EXPECT_EQ(reused.predict(std::vector<double>{2.5, 2.5}),
              cold_net.predict(std::vector<double>{2.5, 2.5}));
}

TEST(MlpWorkspace, ReuseAcrossArchitecturesIsSafe)
{
    // One workspace alternating between different network shapes must
    // produce exactly what a dedicated workspace produces.
    util::Rng rng(11);
    Matrix wide(20, 6);
    std::vector<double> wide_y(20);
    for (std::size_t i = 0; i < 20; ++i) {
        for (std::size_t c = 0; c < 6; ++c)
            wide(i, c) = rng.uniform(-2.0, 2.0);
        wide_y[i] = wide(i, 0) - wide(i, 5);
    }

    ml::MlpConfig deep_config = goldenConfig();
    deep_config.hiddenLayers = {5, 3};

    ml::MlpWorkspace shared;
    ml::Mlp narrow_shared(goldenConfig());
    narrow_shared.fit(goldenX(), kGoldenY, shared);
    ml::Mlp deep_shared(deep_config);
    deep_shared.fit(wide, wide_y, shared);
    ml::Mlp narrow_again(goldenConfig());
    narrow_again.fit(goldenX(), kGoldenY, shared);

    ml::MlpWorkspace dedicated;
    ml::Mlp deep_dedicated(deep_config);
    deep_dedicated.fit(wide, wide_y, dedicated);

    EXPECT_EQ(deep_shared.lossHistory(), deep_dedicated.lossHistory());
    ml::Mlp narrow_dedicated(goldenConfig());
    ml::MlpWorkspace fresh;
    narrow_dedicated.fit(goldenX(), kGoldenY, fresh);
    EXPECT_EQ(narrow_again.lossHistory(),
              narrow_dedicated.lossHistory());
}

TEST(MlpWorkspace, LayerSizesReflectTrainedArchitecture)
{
    ml::MlpWorkspace ws;
    ml::Mlp net(goldenConfig());
    net.fit(goldenX(), kGoldenY, ws);
    // 2 inputs -> WEKA 'a' hidden layer of (2 + 1) / 2 = 1 -> 1 output.
    EXPECT_EQ(ws.layerSizes(),
              (std::vector<std::size_t>{2, 1, 1}));
}

TEST(MlpWorkspace, ResizeValidatesLayerCount)
{
    ml::MlpWorkspace ws;
    EXPECT_THROW(ws.resize({5}), util::InvalidArgument);
}

TEST(MlpWorkspace, WarmFitAllocationCountIsIndependentOfEpochs)
{
    // The tentpole claim: with a warm workspace the epoch x sample loop
    // performs zero heap allocation, so quadrupling the epoch count
    // must not change the number of allocations a fit performs (the
    // fixed per-fit cost — normalization, publishing layers_ — stays).
    util::Rng rng(12);
    Matrix x(30, 4);
    std::vector<double> y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        for (std::size_t c = 0; c < 4; ++c)
            x(i, c) = rng.uniform(-1.0, 1.0);
        y[i] = x(i, 0) + 0.5 * x(i, 1) - x(i, 3);
    }

    ml::MlpConfig short_config;
    short_config.epochs = 50;
    ml::MlpConfig long_config;
    long_config.epochs = 200;

    // Warm the workspace for the largest epoch count and row count.
    ml::MlpWorkspace ws;
    {
        ml::Mlp warmup(long_config);
        warmup.fit(x, y, ws);
    }

    const auto count_fit = [&](const ml::MlpConfig &config) {
        ml::Mlp net(config);
        const std::size_t before =
            g_news.load(std::memory_order_relaxed);
        net.fit(x, y, ws);
        return g_news.load(std::memory_order_relaxed) - before;
    };

    const std::size_t short_allocs = count_fit(short_config);
    const std::size_t long_allocs = count_fit(long_config);
    EXPECT_EQ(short_allocs, long_allocs);
    // Sanity: the fixed per-fit cost is small (a handful of vectors and
    // the published layers), nowhere near one allocation per sample.
    EXPECT_LT(long_allocs, 40u);
}

} // namespace
