/**
 * @file
 * Unit tests for the feature normalizers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ml/normalizer.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using linalg::Matrix;

TEST(RangeNormalizer, MapsToMinusOneOne)
{
    ml::RangeNormalizer norm;
    norm.fit(Matrix{{0, 10}, {4, 20}});
    const auto lo = norm.transform(std::vector<double>{0, 10});
    const auto hi = norm.transform(std::vector<double>{4, 20});
    EXPECT_DOUBLE_EQ(lo[0], -1.0);
    EXPECT_DOUBLE_EQ(lo[1], -1.0);
    EXPECT_DOUBLE_EQ(hi[0], 1.0);
    EXPECT_DOUBLE_EQ(hi[1], 1.0);
    const auto mid = norm.transform(std::vector<double>{2, 15});
    EXPECT_DOUBLE_EQ(mid[0], 0.0);
    EXPECT_DOUBLE_EQ(mid[1], 0.0);
}

TEST(RangeNormalizer, ExtrapolatesLinearlyOutsideRange)
{
    ml::RangeNormalizer norm;
    norm.fit(Matrix{{0}, {10}});
    EXPECT_DOUBLE_EQ(norm.transform(std::vector<double>{20})[0], 3.0);
    EXPECT_DOUBLE_EQ(norm.transform(std::vector<double>{-10})[0], -3.0);
}

TEST(RangeNormalizer, ConstantFeatureMapsToZero)
{
    ml::RangeNormalizer norm;
    norm.fit(Matrix{{5}, {5}});
    EXPECT_DOUBLE_EQ(norm.transform(std::vector<double>{5})[0], 0.0);
    EXPECT_DOUBLE_EQ(norm.transform(std::vector<double>{99})[0], 0.0);
}

TEST(RangeNormalizer, MatrixTransform)
{
    ml::RangeNormalizer norm;
    const Matrix x{{0, 0}, {2, 4}};
    norm.fit(x);
    const Matrix z = norm.transform(x);
    EXPECT_DOUBLE_EQ(z(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(z(1, 1), 1.0);
}

TEST(RangeNormalizer, ScalarSeriesRoundTrip)
{
    ml::RangeNormalizer norm;
    norm.fitSeries({2.0, 6.0, 10.0});
    EXPECT_DOUBLE_EQ(norm.transformScalar(2.0), -1.0);
    EXPECT_DOUBLE_EQ(norm.transformScalar(10.0), 1.0);
    EXPECT_DOUBLE_EQ(norm.transformScalar(6.0), 0.0);
    for (double v : {2.0, 3.7, 6.0, 12.5})
        EXPECT_NEAR(norm.inverseTransformScalar(norm.transformScalar(v)),
                    v, 1e-12);
}

TEST(RangeNormalizer, ConstantSeriesInverse)
{
    ml::RangeNormalizer norm;
    norm.fitSeries({5.0, 5.0});
    EXPECT_DOUBLE_EQ(norm.inverseTransformScalar(0.7), 5.0);
}

TEST(RangeNormalizer, Validation)
{
    ml::RangeNormalizer norm;
    EXPECT_FALSE(norm.fitted());
    EXPECT_THROW(norm.transform(std::vector<double>{1.0}),
                 util::InvalidArgument);
    EXPECT_THROW(norm.fit(Matrix()), util::InvalidArgument);
    norm.fit(Matrix{{1, 2}});
    EXPECT_TRUE(norm.fitted());
    EXPECT_EQ(norm.featureCount(), 2u);
    EXPECT_THROW(norm.transform(std::vector<double>{1.0}),
                 util::InvalidArgument);
    EXPECT_THROW(norm.transformScalar(1.0), util::InvalidArgument);
}

TEST(StandardNormalizer, ZeroMeanUnitVariance)
{
    ml::StandardNormalizer norm;
    const Matrix x{{1}, {2}, {3}, {4}};
    norm.fit(x);
    const Matrix z = norm.transform(x);
    double mean = 0.0;
    for (std::size_t r = 0; r < 4; ++r)
        mean += z(r, 0);
    EXPECT_NEAR(mean / 4.0, 0.0, 1e-12);
    double var = 0.0;
    for (std::size_t r = 0; r < 4; ++r)
        var += z(r, 0) * z(r, 0);
    EXPECT_NEAR(var / 3.0, 1.0, 1e-12);
}

TEST(StandardNormalizer, ConstantFeatureMapsToZero)
{
    ml::StandardNormalizer norm;
    norm.fit(Matrix{{7, 1}, {7, 2}});
    const auto z = norm.transform(std::vector<double>{7, 1.5});
    EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(StandardNormalizer, ExposesMoments)
{
    ml::StandardNormalizer norm;
    norm.fit(Matrix{{1}, {3}});
    EXPECT_DOUBLE_EQ(norm.means()[0], 2.0);
    EXPECT_NEAR(norm.stddevs()[0], std::sqrt(2.0), 1e-12);
}

TEST(StandardNormalizer, Validation)
{
    ml::StandardNormalizer norm;
    EXPECT_THROW(norm.transform(std::vector<double>{1.0}),
                 util::InvalidArgument);
    norm.fit(Matrix{{1, 2}, {3, 4}});
    EXPECT_THROW(norm.transform(std::vector<double>{1.0}),
                 util::InvalidArgument);
}

} // namespace
