/**
 * @file
 * Unit and property tests for the real-coded genetic algorithm.
 */

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "ml/genetic.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

ml::GaConfig
smallConfig()
{
    ml::GaConfig config;
    config.populationSize = 30;
    config.generations = 40;
    return config;
}

TEST(Ga, MaximizesSimpleQuadratic)
{
    // Maximize -(x - 0.7)^2: optimum at x = 0.7.
    const ml::GeneticAlgorithm ga(smallConfig(), {0.0}, {1.0});
    util::Rng rng(1);
    const auto result = ga.optimize(
        [](const std::vector<double> &g) {
            return -(g[0] - 0.7) * (g[0] - 0.7);
        },
        rng);
    EXPECT_NEAR(result.bestGenome[0], 0.7, 0.05);
    EXPECT_GT(result.bestFitness, -0.01);
}

TEST(Ga, SolvesMultiDimensionalSphere)
{
    const std::vector<double> lower(5, -2.0);
    const std::vector<double> upper(5, 2.0);
    ml::GaConfig config = smallConfig();
    config.generations = 80;
    const ml::GeneticAlgorithm ga(config, lower, upper);
    util::Rng rng(2);
    const auto result = ga.optimize(
        [](const std::vector<double> &g) {
            double acc = 0.0;
            for (double x : g)
                acc -= x * x;
            return acc;
        },
        rng);
    for (double x : result.bestGenome)
        EXPECT_NEAR(x, 0.0, 0.25);
}

TEST(Ga, RespectsBounds)
{
    const ml::GeneticAlgorithm ga(smallConfig(), {1.0, -3.0},
                                  {2.0, -1.0});
    util::Rng rng(3);
    // Fitness pushes toward the boundary; solutions must stay inside.
    const auto result = ga.optimize(
        [](const std::vector<double> &g) { return g[0] - g[1]; }, rng);
    EXPECT_GE(result.bestGenome[0], 1.0);
    EXPECT_LE(result.bestGenome[0], 2.0);
    EXPECT_GE(result.bestGenome[1], -3.0);
    EXPECT_LE(result.bestGenome[1], -1.0);
    // Optimum is at (2, -3).
    EXPECT_NEAR(result.bestGenome[0], 2.0, 0.05);
    EXPECT_NEAR(result.bestGenome[1], -3.0, 0.1);
}

TEST(Ga, HistoryIsMonotoneNonDecreasing)
{
    const ml::GeneticAlgorithm ga(smallConfig(), {0.0}, {1.0});
    util::Rng rng(4);
    const auto result = ga.optimize(
        [](const std::vector<double> &g) { return g[0]; }, rng);
    ASSERT_FALSE(result.history.empty());
    for (std::size_t i = 1; i < result.history.size(); ++i)
        EXPECT_GE(result.history[i], result.history[i - 1]);
}

TEST(Ga, DeterministicGivenSeed)
{
    const ml::GeneticAlgorithm ga(smallConfig(), {0.0, 0.0},
                                  {1.0, 1.0});
    const auto fitness = [](const std::vector<double> &g) {
        return g[0] * g[1];
    };
    util::Rng rng1(5);
    util::Rng rng2(5);
    const auto a = ga.optimize(fitness, rng1);
    const auto b = ga.optimize(fitness, rng2);
    EXPECT_EQ(a.bestGenome, b.bestGenome);
    EXPECT_DOUBLE_EQ(a.bestFitness, b.bestFitness);
}

TEST(Ga, EvaluationCountMatchesSchedule)
{
    ml::GaConfig config = smallConfig();
    const ml::GeneticAlgorithm ga(config, {0.0}, {1.0});
    util::Rng rng(6);
    const auto result = ga.optimize(
        [](const std::vector<double> &g) { return g[0]; }, rng);
    // Initial population + one evaluation sweep per generation.
    EXPECT_EQ(result.evaluations,
              config.populationSize * (config.generations + 1));
}

TEST(Ga, ValidatesConfiguration)
{
    const std::vector<double> lo = {0.0};
    const std::vector<double> hi = {1.0};

    ml::GaConfig bad = smallConfig();
    bad.populationSize = 1;
    EXPECT_THROW(ml::GeneticAlgorithm(bad, lo, hi),
                 util::InvalidArgument);

    bad = smallConfig();
    bad.generations = 0;
    EXPECT_THROW(ml::GeneticAlgorithm(bad, lo, hi),
                 util::InvalidArgument);

    bad = smallConfig();
    bad.crossoverRate = 1.5;
    EXPECT_THROW(ml::GeneticAlgorithm(bad, lo, hi),
                 util::InvalidArgument);

    bad = smallConfig();
    bad.mutationRate = -0.1;
    EXPECT_THROW(ml::GeneticAlgorithm(bad, lo, hi),
                 util::InvalidArgument);

    bad = smallConfig();
    bad.mutationSigma = 0.0;
    EXPECT_THROW(ml::GeneticAlgorithm(bad, lo, hi),
                 util::InvalidArgument);

    bad = smallConfig();
    bad.tournamentSize = 0;
    EXPECT_THROW(ml::GeneticAlgorithm(bad, lo, hi),
                 util::InvalidArgument);

    bad = smallConfig();
    bad.eliteCount = bad.populationSize;
    EXPECT_THROW(ml::GeneticAlgorithm(bad, lo, hi),
                 util::InvalidArgument);
}

TEST(Ga, ValidatesBounds)
{
    EXPECT_THROW(ml::GeneticAlgorithm(smallConfig(), {}, {}),
                 util::InvalidArgument);
    EXPECT_THROW(ml::GeneticAlgorithm(smallConfig(), {0.0}, {0.0, 1.0}),
                 util::InvalidArgument);
    EXPECT_THROW(ml::GeneticAlgorithm(smallConfig(), {1.0}, {0.0}),
                 util::InvalidArgument);
}

TEST(Ga, RejectsNullFitness)
{
    const ml::GeneticAlgorithm ga(smallConfig(), {0.0}, {1.0});
    util::Rng rng(1);
    EXPECT_THROW(ga.optimize(ml::GeneticAlgorithm::FitnessFn{}, rng),
                 util::InvalidArgument);
}

TEST(Ga, GenomeLengthAccessor)
{
    const ml::GeneticAlgorithm ga(smallConfig(),
                                  std::vector<double>(7, 0.0),
                                  std::vector<double>(7, 1.0));
    EXPECT_EQ(ga.genomeLength(), 7u);
}

/** Exact map-backed memo with lookup/store accounting. */
class MapMemo : public ml::FitnessMemo
{
  public:
    bool
    lookup(const std::vector<double> &genome, double &fitness) override
    {
        ++lookups;
        const auto it = values.find(genome);
        if (it == values.end())
            return false;
        fitness = it->second;
        return true;
    }

    void
    store(const std::vector<double> &genome, double fitness) override
    {
        values[genome] = fitness;
    }

    std::map<std::vector<double>, double> values;
    std::size_t lookups = 0;
};

TEST(Ga, MemoizationIsInvisibleInResults)
{
    ml::GaConfig config = smallConfig();
    const auto fitness = [](const std::vector<double> &g) {
        return -(g[0] - 0.3) * (g[0] - 0.3) - (g[1] - 0.8) * (g[1] - 0.8);
    };
    const ml::GeneticAlgorithm plain(config, {0.0, 0.0}, {1.0, 1.0});
    config.memoizeFitness = true;
    const ml::GeneticAlgorithm memoized(config, {0.0, 0.0}, {1.0, 1.0});

    util::Rng rng1(7);
    util::Rng rng2(7);
    MapMemo memo;
    const auto a = plain.optimize(fitness, rng1);
    const auto b = memoized.optimize(fitness, rng2, &memo);

    // The memo returns exactly the stored values, so every number the
    // GA produces is bit-identical with and without it.
    EXPECT_EQ(a.bestGenome, b.bestGenome);
    EXPECT_EQ(a.bestFitness, b.bestFitness);
    EXPECT_EQ(a.history, b.history);
}

TEST(Ga, MemoizationSkipsRepeatedGenomes)
{
    ml::GaConfig config = smallConfig();
    config.memoizeFitness = true;
    const ml::GeneticAlgorithm ga(config, {0.0}, {1.0});
    util::Rng rng(8);
    MapMemo memo;
    const auto result = ga.optimize(
        [](const std::vector<double> &g) { return g[0]; }, rng, &memo);

    // Every individual is either evaluated or served from the memo...
    EXPECT_EQ(result.evaluations + result.memoHits,
              config.populationSize * (config.generations + 1));
    // ...and elites are exact copies re-scored each generation, so the
    // memo saves at least eliteCount evaluations per generation.
    EXPECT_GE(result.memoHits, config.eliteCount * config.generations);
    EXPECT_LT(result.evaluations,
              config.populationSize * (config.generations + 1));
}

TEST(Ga, MemoIgnoredUnlessEnabled)
{
    // memoizeFitness defaults to off; a supplied memo must not be
    // consulted (the generic optimizer cannot know the fitness is pure).
    const ml::GeneticAlgorithm ga(smallConfig(), {0.0}, {1.0});
    util::Rng rng(9);
    MapMemo memo;
    const auto result = ga.optimize(
        [](const std::vector<double> &g) { return g[0]; }, rng, &memo);
    EXPECT_EQ(result.memoHits, 0u);
    EXPECT_EQ(memo.lookups, 0u);
    EXPECT_EQ(result.evaluations,
              smallConfig().populationSize *
                  (smallConfig().generations + 1));
}

} // namespace
