/**
 * @file
 * Unit tests for the activation functions and their derivatives.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ml/activation.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using ml::Activation;

TEST(Activation, SigmoidValues)
{
    EXPECT_DOUBLE_EQ(ml::activate(Activation::Sigmoid, 0.0), 0.5);
    EXPECT_NEAR(ml::activate(Activation::Sigmoid, 100.0), 1.0, 1e-12);
    EXPECT_NEAR(ml::activate(Activation::Sigmoid, -100.0), 0.0, 1e-12);
}

TEST(Activation, TanhValues)
{
    EXPECT_DOUBLE_EQ(ml::activate(Activation::Tanh, 0.0), 0.0);
    EXPECT_NEAR(ml::activate(Activation::Tanh, 1.0), std::tanh(1.0),
                1e-15);
}

TEST(Activation, ReluValues)
{
    EXPECT_DOUBLE_EQ(ml::activate(Activation::Relu, -2.0), 0.0);
    EXPECT_DOUBLE_EQ(ml::activate(Activation::Relu, 3.5), 3.5);
}

TEST(Activation, LinearIsIdentity)
{
    EXPECT_DOUBLE_EQ(ml::activate(Activation::Linear, -7.25), -7.25);
}

class DerivativeTest : public ::testing::TestWithParam<Activation>
{
};

/** Analytic derivative must match a finite-difference estimate. */
TEST_P(DerivativeTest, MatchesFiniteDifference)
{
    const Activation a = GetParam();
    for (double x : {-1.5, -0.3, 0.4, 1.2}) {
        if (a == Activation::Relu && std::fabs(x) < 0.1)
            continue; // not differentiable at 0
        const double h = 1e-6;
        const double numeric =
            (ml::activate(a, x + h) - ml::activate(a, x - h)) / (2 * h);
        const double y = ml::activate(a, x);
        EXPECT_NEAR(ml::activateDerivativeFromOutput(a, y), numeric,
                    1e-5)
            << ml::activationName(a) << " at x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(All, DerivativeTest,
                         ::testing::Values(Activation::Sigmoid,
                                           Activation::Tanh,
                                           Activation::Relu,
                                           Activation::Linear));

TEST(Activation, NameRoundTrip)
{
    for (Activation a :
         {Activation::Sigmoid, Activation::Tanh, Activation::Relu,
          Activation::Linear}) {
        EXPECT_EQ(ml::activationFromName(ml::activationName(a)), a);
    }
}

TEST(Activation, FromNameIsCaseInsensitive)
{
    EXPECT_EQ(ml::activationFromName(" SIGMOID "), Activation::Sigmoid);
}

TEST(Activation, FromNameRejectsUnknown)
{
    EXPECT_THROW(ml::activationFromName("softmax"),
                 util::InvalidArgument);
}

} // namespace
