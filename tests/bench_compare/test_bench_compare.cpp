/**
 * @file
 * Tests for the bench_compare library: the minimal JSON parser, both
 * report dialects (google-benchmark and util::BenchJsonWriter), time
 * unit normalization, the >N% regression rule, and the equal-tier
 * precondition that keeps scalar baselines from "regressing" against
 * AVX2 runs (or vice versa).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bench_compare.h"

namespace
{

using namespace dtrank::bench_compare;

const char *const kGoogleReport = R"({
  "context": {
    "num_cpus": 1,
    "caches": [{"type": "Data", "level": 1, "size": 32768}],
    "simd_tier": "avx2",
    "cpu_features": "sse2,avx,avx2"
  },
  "benchmarks": [
    {"name": "BM_KernelDot/1024/avx2", "run_type": "iteration",
     "real_time": 250.0, "time_unit": "ns"},
    {"name": "BM_KernelDot/1024/avx2_mean", "run_type": "aggregate",
     "real_time": 999.0, "time_unit": "ns"},
    {"name": "BM_KernelGemm/64", "run_type": "iteration",
     "real_time": 2.0, "time_unit": "us"}
  ]
})";

const char *const kWriterReport = R"({
  "benchmark": "fig6_rank_correlation",
  "context": {"simd_tier": "scalar", "cpu_features": "sse2"},
  "records": [
    {"name": "BENCH_fig6.total", "real_time_ms": 120.5, "splits": "40"}
  ]
})";

/** A one-entry google-benchmark report with the given timing/tier. */
std::string
singleEntryReport(double real_time_ns, const std::string &tier)
{
    return "{\"context\": {\"simd_tier\": \"" + tier +
           "\"}, \"benchmarks\": [{\"name\": \"BM_X\", "
           "\"run_type\": \"iteration\", \"real_time\": " +
           std::to_string(real_time_ns) +
           ", \"time_unit\": \"ns\"}]}";
}

TEST(BenchCompareJson, ParsesNestedValuesAndEscapes)
{
    const JsonValue root = parseJson(
        "{\"a\": [1, -2.5e2, true, false, null], "
        "\"s\": \"q\\\"\\\\\\n\\u0041\"}");
    const JsonValue *a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 5u);
    EXPECT_EQ(a->array[0].number, 1.0);
    EXPECT_EQ(a->array[1].number, -250.0);
    EXPECT_TRUE(a->array[2].boolean);
    EXPECT_EQ(a->array[4].kind, JsonValue::Kind::Null);
    const JsonValue *s = root.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->text, "q\"\\\nA");
}

TEST(BenchCompareJson, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseJson("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": 1"), std::runtime_error);
    EXPECT_THROW(parseJson("[1, 2] trailing"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": \"unterminated}"),
                 std::runtime_error);
}

TEST(BenchCompareParse, GoogleDialectSkipsAggregatesAndConvertsUnits)
{
    const Report report = parseReport("micro", kGoogleReport);
    EXPECT_EQ(report.simdTier, "avx2");
    ASSERT_EQ(report.entries.size(), 2u); // the _mean row is skipped
    EXPECT_EQ(report.entries[0].name, "BM_KernelDot/1024/avx2");
    EXPECT_DOUBLE_EQ(report.entries[0].realTimeMs, 250.0 * 1e-6);
    EXPECT_EQ(report.entries[1].name, "BM_KernelGemm/64");
    EXPECT_DOUBLE_EQ(report.entries[1].realTimeMs, 2.0 * 1e-3);
}

TEST(BenchCompareParse, WriterDialectReadsMillisecondsDirectly)
{
    const Report report = parseReport("fig6", kWriterReport);
    EXPECT_EQ(report.simdTier, "scalar");
    ASSERT_EQ(report.entries.size(), 1u);
    EXPECT_EQ(report.entries[0].name, "BENCH_fig6.total");
    EXPECT_DOUBLE_EQ(report.entries[0].realTimeMs, 120.5);
}

TEST(BenchCompareParse, UnrecognizedDocumentThrows)
{
    EXPECT_THROW(parseReport("x", "{\"neither\": []}"),
                 std::runtime_error);
    EXPECT_THROW(parseReport("x", "[1, 2, 3]"), std::runtime_error);
}

TEST(BenchCompareRule, FlagsOnlyChangesBeyondTheThreshold)
{
    const Report base = parseReport("b", singleEntryReport(100.0, "avx2"));
    // Below the threshold: noise-level slowdowns must pass.
    const Report at_limit =
        parseReport("c", singleEntryReport(124.0, "avx2"));
    CompareResult result = compareReports(base, at_limit, 25.0);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_FALSE(result.deltas[0].regression);
    EXPECT_EQ(result.regressions, 0u);

    const Report over = parseReport("c", singleEntryReport(126.0, "avx2"));
    result = compareReports(base, over, 25.0);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_TRUE(result.deltas[0].regression);
    EXPECT_EQ(result.regressions, 1u);
    EXPECT_NEAR(result.deltas[0].changePct, 26.0, 1e-9);

    // Speedups never fail, no matter how large.
    const Report fast = parseReport("c", singleEntryReport(10.0, "avx2"));
    result = compareReports(base, fast, 25.0);
    EXPECT_EQ(result.regressions, 0u);
    EXPECT_LT(result.deltas[0].changePct, 0.0);
}

TEST(BenchCompareRule, TierMismatchSkipsInsteadOfFailing)
{
    const Report base = parseReport("b", singleEntryReport(100.0, "avx2"));
    const Report scalar =
        parseReport("c", singleEntryReport(300.0, "scalar"));
    const CompareResult result = compareReports(base, scalar, 25.0);
    EXPECT_TRUE(result.tierMismatch);
    EXPECT_TRUE(result.deltas.empty());
    EXPECT_EQ(result.regressions, 0u);
    const std::string rendered = formatResult(result, 25.0);
    EXPECT_NE(rendered.find("tier mismatch"), std::string::npos);
}

TEST(BenchCompareParse, AcceptsEveryKnownTierAndRejectsUnknownOnes)
{
    // avx512 is a first-class tier value: same-tier avx512 runs must
    // parse and compare like any other.
    for (const std::string tier : {"scalar", "avx2", "avx512"}) {
        const Report report =
            parseReport("r", singleEntryReport(100.0, tier));
        EXPECT_EQ(report.simdTier, tier);
    }
    // Anything else is a corrupted or future report: refuse it.
    EXPECT_THROW(parseReport("r", singleEntryReport(100.0, "avx512f")),
                 std::runtime_error);
    EXPECT_THROW(parseReport("r", singleEntryReport(100.0, "neon")),
                 std::runtime_error);
    EXPECT_THROW(parseReport("r", singleEntryReport(100.0, "AVX2")),
                 std::runtime_error);
}

TEST(BenchCompareRule, SameTierAvx512RunsCompareNormally)
{
    const Report base =
        parseReport("b", singleEntryReport(100.0, "avx512"));
    const Report over =
        parseReport("c", singleEntryReport(200.0, "avx512"));
    const CompareResult result = compareReports(base, over, 25.0);
    EXPECT_FALSE(result.tierMismatch);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_TRUE(result.deltas[0].regression);
}

TEST(BenchCompareRule, Avx512AgainstAvx2IsATierMismatch)
{
    const Report base =
        parseReport("b", singleEntryReport(100.0, "avx2"));
    const Report faster =
        parseReport("c", singleEntryReport(60.0, "avx512"));
    const CompareResult result = compareReports(base, faster, 25.0);
    EXPECT_TRUE(result.tierMismatch);
    EXPECT_TRUE(result.deltas.empty());
    EXPECT_EQ(result.regressions, 0u);
}

TEST(BenchCompareRule, MissingTierContextStillCompares)
{
    // Old reports without a context section must stay comparable.
    const std::string no_context =
        "{\"benchmarks\": [{\"name\": \"BM_X\", \"run_type\": "
        "\"iteration\", \"real_time\": 100.0, \"time_unit\": \"ns\"}]}";
    const Report base = parseReport("b", no_context);
    const Report current =
        parseReport("c", singleEntryReport(200.0, "avx2"));
    const CompareResult result = compareReports(base, current, 25.0);
    EXPECT_FALSE(result.tierMismatch);
    EXPECT_EQ(result.regressions, 1u);
}

TEST(BenchCompareRule, AddedAndRemovedBenchmarksAreListedNotFailed)
{
    const std::string two =
        "{\"benchmarks\": ["
        "{\"name\": \"BM_A\", \"run_type\": \"iteration\", "
        "\"real_time\": 1.0, \"time_unit\": \"ms\"},"
        "{\"name\": \"BM_B\", \"run_type\": \"iteration\", "
        "\"real_time\": 1.0, \"time_unit\": \"ms\"}]}";
    const std::string other =
        "{\"benchmarks\": ["
        "{\"name\": \"BM_B\", \"run_type\": \"iteration\", "
        "\"real_time\": 1.0, \"time_unit\": \"ms\"},"
        "{\"name\": \"BM_C\", \"run_type\": \"iteration\", "
        "\"real_time\": 1.0, \"time_unit\": \"ms\"}]}";
    const CompareResult result = compareReports(
        parseReport("b", two), parseReport("c", other), 25.0);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].name, "BM_B");
    ASSERT_EQ(result.onlyBaseline.size(), 1u);
    EXPECT_EQ(result.onlyBaseline[0], "BM_A");
    ASSERT_EQ(result.onlyCurrent.size(), 1u);
    EXPECT_EQ(result.onlyCurrent[0], "BM_C");
    EXPECT_EQ(result.regressions, 0u);
}

TEST(BenchCompareRule, CrossDialectComparisonWorks)
{
    // A protocol bench baseline (writer dialect) against a fresh run:
    // the CI job compares whichever dialect each file happens to be.
    const Report base = parseReport("fig6", kWriterReport);
    const std::string slower = R"({
      "benchmark": "fig6_rank_correlation",
      "context": {"simd_tier": "scalar"},
      "records": [
        {"name": "BENCH_fig6.total", "real_time_ms": 200.0}
      ]})";
    const CompareResult result = compareReports(
        base, parseReport("fig6b", slower), 25.0);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_TRUE(result.deltas[0].regression);
}

TEST(BenchCompareFormat, RendersDeltasAndSummary)
{
    const Report base = parseReport("b", singleEntryReport(100.0, "avx2"));
    const Report over = parseReport("c", singleEntryReport(200.0, "avx2"));
    const std::string rendered =
        formatResult(compareReports(base, over, 25.0), 25.0);
    EXPECT_NE(rendered.find("REGRESSION BM_X"), std::string::npos);
    EXPECT_NE(rendered.find("+100.000%"), std::string::npos);
    EXPECT_NE(rendered.find("1 regression(s)"), std::string::npos);
}

} // namespace
