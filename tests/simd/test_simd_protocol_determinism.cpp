/**
 * @file
 * The end-to-end determinism guarantee of the dispatch layer: a full
 * method-suite split evaluation produces bit-identical results whether
 * the scalar, AVX2, or AVX-512 tier runs the kernels, at any thread
 * count.
 * This is the protocol-level counterpart of the per-kernel equality
 * tests — it exercises the canonical reduction through MLP training,
 * GA-kNN fitness, the matrix kernels and the rank statistics at once.
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/harness.h"
#include "simd/simd.h"

namespace
{

using namespace dtrank;
using experiments::Method;
using simd::Tier;

experiments::MethodSuiteConfig
fastSuite(std::size_t threads)
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 20;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 4;
    config.parallel.threads = threads;
    return config;
}

/** Exact, field-by-field comparison of two split evaluations. */
void
expectIdentical(const experiments::SplitResults &lhs,
                const experiments::SplitResults &rhs)
{
    ASSERT_EQ(lhs.size(), rhs.size());
    for (const auto &[method, lhs_tasks] : lhs) {
        SCOPED_TRACE(experiments::methodName(method));
        const auto it = rhs.find(method);
        ASSERT_NE(it, rhs.end());
        const auto &rhs_tasks = it->second;
        ASSERT_EQ(lhs_tasks.size(), rhs_tasks.size());
        for (std::size_t i = 0; i < lhs_tasks.size(); ++i) {
            const experiments::TaskResult &a = lhs_tasks[i];
            const experiments::TaskResult &b = rhs_tasks[i];
            EXPECT_EQ(a.benchmark, b.benchmark);
            // Bit-identical, not approximately equal: both tiers commit
            // to the canonical lane-blocked reduction order.
            EXPECT_EQ(a.predicted, b.predicted);
            EXPECT_EQ(a.actual, b.actual);
            EXPECT_EQ(a.metrics.rankCorrelation,
                      b.metrics.rankCorrelation);
            EXPECT_EQ(a.metrics.top1ErrorPercent,
                      b.metrics.top1ErrorPercent);
            EXPECT_EQ(a.metrics.meanErrorPercent,
                      b.metrics.meanErrorPercent);
            EXPECT_EQ(a.metrics.maxErrorPercent,
                      b.metrics.maxErrorPercent);
        }
    }
}

class SimdProtocolDeterminism : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (simd::avx2Kernels() == nullptr || !simd::cpuSupportsAvx2())
            GTEST_SKIP() << "AVX2 tier unavailable on this build/CPU";
        saved_ = simd::activeTier();
    }
    void TearDown() override
    {
        // saved_ defaults to Scalar, which is what a skipped (AVX2-less)
        // run is dispatching anyway, so restoring is always safe.
        simd::setTier(saved_);
    }

    /** Runs one full split under `tier` with `threads` workers. */
    experiments::SplitResults
    runSplit(Tier tier, std::size_t threads)
    {
        simd::setTier(tier);
        const experiments::SplitEvaluator evaluator(db_, chars_,
                                                    fastSuite(threads));
        std::vector<std::size_t> predictive;
        for (std::size_t m = 0; m < 12; ++m)
            predictive.push_back(m);
        const std::vector<std::size_t> target = {30, 31, 32, 33};
        return evaluator.evaluateSplit(predictive, target,
                                       experiments::extendedMethods(),
                                       5);
    }

    /** True when the widest tier can actually dispatch here. */
    static bool
    avx512Available()
    {
        return simd::avx512Kernels() != nullptr &&
               simd::cpuSupportsAvx512();
    }

    dataset::PerfDatabase db_ = dataset::makePaperDataset();
    linalg::Matrix chars_ = dataset::MicaGenerator().generateForCatalog();

  private:
    Tier saved_ = Tier::Scalar;
};

TEST_F(SimdProtocolDeterminism, SerialSplitsMatchAcrossTiers)
{
    const auto reference = runSplit(Tier::Scalar, 1);
    expectIdentical(reference, runSplit(Tier::Avx2, 1));
    if (avx512Available())
        expectIdentical(reference, runSplit(Tier::Avx512, 1));
}

TEST_F(SimdProtocolDeterminism, TierAndThreadAxesAreIndependent)
{
    // scalar x 1 thread is the reference; every (tier, threads)
    // combination must land on the same bits.
    const auto reference = runSplit(Tier::Scalar, 1);
    expectIdentical(reference, runSplit(Tier::Avx2, 4));
    expectIdentical(reference, runSplit(Tier::Scalar, 4));
    if (avx512Available()) {
        expectIdentical(reference, runSplit(Tier::Avx512, 1));
        expectIdentical(reference, runSplit(Tier::Avx512, 4));
    }
}

} // namespace
