/**
 * @file
 * The masked reduction kernels: all-valid bit-equality against their
 * unmasked counterparts per tier (the mask=∅ half of the masked-kernel
 * contract), scalar <-> vector-tier bit-equality under random masks,
 * and NaN containment — a NaN-poisoned invalid cell must contribute a
 * literal +0.0 instead of leaking into the sum. Lengths 1..67 cover
 * every (full-block, lane, remainder) phase of the canonical
 * lane-blocked reduction, exactly as the unmasked equality suite does.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "simd/simd.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

constexpr std::size_t kMaxLen = 67;

/** Deterministic operand with varied signs and magnitudes. */
std::vector<double>
operand(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(-3.0, 3.0);
    return v;
}

/** Non-negative operand (distance weights). */
std::vector<double>
weightOperand(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(0.0, 2.0);
    return v;
}

/** Packed all-valid mask covering n elements (padding bits zero). */
std::vector<std::uint64_t>
allValidMask(std::size_t n)
{
    std::vector<std::uint64_t> words((n + 63) / 64, ~std::uint64_t{0});
    const std::size_t tail = n % 64;
    if (tail != 0)
        words.back() = (std::uint64_t{1} << tail) - 1;
    return words;
}

/** Packed mask with each bit drawn independently (density ~2/3). */
std::vector<std::uint64_t>
randomMask(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<std::uint64_t> words((n + 63) / 64, 0);
    for (std::size_t i = 0; i < n; ++i)
        if (rng.uniform(0.0, 1.0) < 2.0 / 3.0)
            words[i / 64] |= std::uint64_t{1} << (i % 64);
    return words;
}

class MaskedKernels : public ::testing::TestWithParam<simd::Tier>
{
  protected:
    void SetUp() override
    {
        switch (GetParam()) {
          case simd::Tier::Scalar:
            tier_ = &simd::scalarKernels();
            break;
          case simd::Tier::Avx2:
            if (simd::avx2Kernels() == nullptr ||
                !simd::cpuSupportsAvx2())
                GTEST_SKIP()
                    << "AVX2 tier unavailable on this build/CPU";
            tier_ = simd::avx2Kernels();
            break;
          case simd::Tier::Avx512:
            if (simd::avx512Kernels() == nullptr ||
                !simd::cpuSupportsAvx512())
                GTEST_SKIP()
                    << "AVX-512 tier unavailable on this build/CPU";
            tier_ = simd::avx512Kernels();
            break;
          default:
            FAIL() << "unexpected tier parameter";
        }
    }

    const simd::KernelTable &scalar_ = simd::scalarKernels();
    const simd::KernelTable *tier_ = nullptr;
};

TEST_P(MaskedKernels, AllValidMaskMatchesUnmaskedBitForBit)
{
    for (std::size_t n = 1; n <= kMaxLen; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto a = operand(n, 100 + n);
        const auto b = operand(n, 200 + n);
        const auto w = weightOperand(n, 300 + n);
        const auto valid = allValidMask(n);
        EXPECT_EQ(tier_->maskedDot(a.data(), b.data(), valid.data(), n),
                  tier_->dot(a.data(), b.data(), n));
        // maskedSum has no dense sibling; dot against ones runs the
        // identical canonical reduction with terms a[i] * 1.0 == a[i].
        const std::vector<double> ones(n, 1.0);
        EXPECT_EQ(tier_->maskedSum(a.data(), valid.data(), n),
                  tier_->dot(a.data(), ones.data(), n));
        EXPECT_EQ(tier_->maskedSquaredDistance(a.data(), b.data(),
                                               valid.data(), n),
                  tier_->squaredDistance(a.data(), b.data(), n));
        EXPECT_EQ(tier_->maskedWeightedSquaredDistance(
                      a.data(), b.data(), w.data(), valid.data(), n),
                  tier_->weightedSquaredDistance(a.data(), b.data(),
                                                 w.data(), n));
    }
}

TEST_P(MaskedKernels, RandomMasksAgreeWithScalarTier)
{
    for (std::size_t n = 1; n <= kMaxLen; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto a = operand(n, 400 + n);
        const auto b = operand(n, 500 + n);
        const auto w = weightOperand(n, 600 + n);
        const auto valid = randomMask(n, 700 + n);
        EXPECT_EQ(
            scalar_.maskedDot(a.data(), b.data(), valid.data(), n),
            tier_->maskedDot(a.data(), b.data(), valid.data(), n));
        EXPECT_EQ(scalar_.maskedSum(a.data(), valid.data(), n),
                  tier_->maskedSum(a.data(), valid.data(), n));
        EXPECT_EQ(scalar_.maskedSquaredDistance(a.data(), b.data(),
                                                valid.data(), n),
                  tier_->maskedSquaredDistance(a.data(), b.data(),
                                               valid.data(), n));
        EXPECT_EQ(scalar_.maskedWeightedSquaredDistance(
                      a.data(), b.data(), w.data(), valid.data(), n),
                  tier_->maskedWeightedSquaredDistance(
                      a.data(), b.data(), w.data(), valid.data(), n));
    }
}

TEST_P(MaskedKernels, NaNPoisonedInvalidCellsDoNotLeak)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t n = 1; n <= kMaxLen; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        auto a = operand(n, 800 + n);
        auto b = operand(n, 900 + n);
        const auto w = weightOperand(n, 1000 + n);
        const auto valid = randomMask(n, 1100 + n);

        // Reference: the same mask over clean operands.
        const double ref_dot =
            tier_->maskedDot(a.data(), b.data(), valid.data(), n);
        const double ref_sum =
            tier_->maskedSum(a.data(), valid.data(), n);
        const double ref_d2 = tier_->maskedSquaredDistance(
            a.data(), b.data(), valid.data(), n);
        const double ref_wd2 = tier_->maskedWeightedSquaredDistance(
            a.data(), b.data(), w.data(), valid.data(), n);

        // Poison every invalid cell the way PerfDatabase does.
        for (std::size_t i = 0; i < n; ++i)
            if (((valid[i / 64] >> (i % 64)) & 1u) == 0) {
                a[i] = nan;
                b[i] = nan;
            }
        EXPECT_EQ(ref_dot, tier_->maskedDot(a.data(), b.data(),
                                            valid.data(), n));
        EXPECT_EQ(ref_sum,
                  tier_->maskedSum(a.data(), valid.data(), n));
        EXPECT_EQ(ref_d2, tier_->maskedSquaredDistance(
                              a.data(), b.data(), valid.data(), n));
        EXPECT_EQ(ref_wd2, tier_->maskedWeightedSquaredDistance(
                               a.data(), b.data(), w.data(),
                               valid.data(), n));
        EXPECT_FALSE(std::isnan(
            tier_->maskedDot(a.data(), b.data(), valid.data(), n)));
    }
}

TEST_P(MaskedKernels, AllInvalidMaskReducesToZero)
{
    for (std::size_t n : {std::size_t{1}, std::size_t{16},
                          std::size_t{64}, std::size_t{67}}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto a = operand(n, 1200 + n);
        const auto b = operand(n, 1300 + n);
        const std::vector<std::uint64_t> none((n + 63) / 64, 0);
        EXPECT_EQ(tier_->maskedDot(a.data(), b.data(), none.data(), n),
                  0.0);
        EXPECT_EQ(tier_->maskedSum(a.data(), none.data(), n), 0.0);
        EXPECT_EQ(tier_->maskedSquaredDistance(a.data(), b.data(),
                                               none.data(), n),
                  0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, MaskedKernels,
    ::testing::Values(simd::Tier::Scalar, simd::Tier::Avx2,
                      simd::Tier::Avx512),
    [](const ::testing::TestParamInfo<simd::Tier> &info) {
        return std::string(simd::tierName(info.param));
    });

} // namespace
