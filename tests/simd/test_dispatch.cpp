/**
 * @file
 * Unit tests for the SIMD dispatch layer: cpuid detection, tier name
 * parsing, the pure resolution rule, the strict/forgiving overrides
 * and the --simd CLI plumbing shared by the bench binaries.
 */

#include <gtest/gtest.h>

#include "experiments/bench_options.h"
#include "simd/simd.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using simd::Tier;

/** Saves the active tier and restores it after each test, so override
 *  tests cannot leak dispatch state into other tests in this binary. */
class SimdDispatch : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = simd::activeTier(); }
    void TearDown() override { simd::setTier(saved_); }

  private:
    Tier saved_ = Tier::Scalar;
};

bool
avx2Available()
{
    return simd::cpuSupportsAvx2() && simd::avx2Kernels() != nullptr;
}

bool
avx512Available()
{
    return simd::cpuSupportsAvx512() &&
           simd::avx512Kernels() != nullptr;
}

TEST(SimdCpuid, FeatureStringIsConsistentWithAvx2Probe)
{
    const std::string features = simd::cpuFeatureString();
    EXPECT_FALSE(features.empty());
    // The avx2/avx512 probes and the feature string must agree — all
    // come from cpuid, through the same builtin.
    EXPECT_EQ(simd::cpuSupportsAvx2(),
              features.find("avx2") != std::string::npos);
    EXPECT_EQ(simd::cpuSupportsAvx512(),
              features.find("avx512f") != std::string::npos);
#if defined(__x86_64__)
    // Baseline x86-64 guarantees SSE2; "none" would mean detection is
    // broken, not that the CPU is ancient.
    EXPECT_NE(features.find("sse2"), std::string::npos);
#endif
}

TEST(SimdCpuid, ScalarTableIsAlwaysPublished)
{
    const simd::KernelTable &table = simd::scalarKernels();
    EXPECT_STREQ(table.name, "scalar");
    EXPECT_NE(table.dot, nullptr);
    EXPECT_NE(table.mlpUpdateLayer, nullptr);
}

TEST(SimdCpuid, Avx2TableNameMatchesWhenCompiled)
{
    if (simd::avx2Kernels() == nullptr)
        GTEST_SKIP() << "binary built without AVX2 support";
    EXPECT_STREQ(simd::avx2Kernels()->name, "avx2");
}

TEST(SimdCpuid, Avx512TableNameMatchesWhenCompiled)
{
    if (simd::avx512Kernels() == nullptr)
        GTEST_SKIP() << "binary built without AVX-512 support";
    EXPECT_STREQ(simd::avx512Kernels()->name, "avx512");
}

TEST(SimdTierNames, RoundTrip)
{
    EXPECT_STREQ(simd::tierName(Tier::Scalar), "scalar");
    EXPECT_STREQ(simd::tierName(Tier::Avx2), "avx2");
    EXPECT_STREQ(simd::tierName(Tier::Avx512), "avx512");
    EXPECT_EQ(simd::parseTier("scalar"), Tier::Scalar);
    EXPECT_EQ(simd::parseTier("avx2"), Tier::Avx2);
    EXPECT_EQ(simd::parseTier("avx512"), Tier::Avx512);
    EXPECT_THROW(simd::parseTier("sse2"), util::InvalidArgument);
    EXPECT_THROW(simd::parseTier(""), util::InvalidArgument);
    EXPECT_THROW(simd::parseTier("AVX2"), util::InvalidArgument);
    EXPECT_THROW(simd::parseTier("avx512f"), util::InvalidArgument);
}

TEST(SimdResolveTier, AutoPicksBestAvailable)
{
    // The PR 4 three-argument truth table keeps its meaning (the
    // avx512 legs default to absent).
    EXPECT_EQ(simd::resolveTier(nullptr, true, true), Tier::Avx2);
    EXPECT_EQ(simd::resolveTier("", true, true), Tier::Avx2);
    EXPECT_EQ(simd::resolveTier("auto", true, true), Tier::Avx2);
    // Either leg missing degrades auto to scalar.
    EXPECT_EQ(simd::resolveTier(nullptr, false, true), Tier::Scalar);
    EXPECT_EQ(simd::resolveTier(nullptr, true, false), Tier::Scalar);
    EXPECT_EQ(simd::resolveTier(nullptr, false, false), Tier::Scalar);
    // avx512 outranks avx2 when both legs are present.
    EXPECT_EQ(simd::resolveTier(nullptr, true, true, true, true),
              Tier::Avx512);
    EXPECT_EQ(simd::resolveTier("auto", true, true, true, true),
              Tier::Avx512);
    EXPECT_EQ(simd::resolveTier(nullptr, true, true, false, true),
              Tier::Avx2);
    EXPECT_EQ(simd::resolveTier(nullptr, true, true, true, false),
              Tier::Avx2);
    // avx512-capable CPU without AVX2 kernels still degrades cleanly.
    EXPECT_EQ(simd::resolveTier(nullptr, false, false, true, true),
              Tier::Avx512);
}

TEST(SimdResolveTier, ExplicitRequestsAndFallbacks)
{
    // Scalar is always honored.
    EXPECT_EQ(simd::resolveTier("scalar", true, true), Tier::Scalar);
    EXPECT_EQ(simd::resolveTier("scalar", false, false), Tier::Scalar);
    // avx2 is honored when CPU and binary both provide it, otherwise
    // falls back (with a warning) instead of failing.
    EXPECT_EQ(simd::resolveTier("avx2", true, true), Tier::Avx2);
    EXPECT_EQ(simd::resolveTier("avx2", false, true), Tier::Scalar);
    EXPECT_EQ(simd::resolveTier("avx2", true, false), Tier::Scalar);
    // avx2 stays honored even when avx512 is also available.
    EXPECT_EQ(simd::resolveTier("avx2", true, true, true, true),
              Tier::Avx2);
    // avx512 is honored when available and falls back to the widest
    // remaining tier when not.
    EXPECT_EQ(simd::resolveTier("avx512", true, true, true, true),
              Tier::Avx512);
    EXPECT_EQ(simd::resolveTier("avx512", true, true, false, true),
              Tier::Avx2);
    EXPECT_EQ(simd::resolveTier("avx512", true, true, true, false),
              Tier::Avx2);
    EXPECT_EQ(simd::resolveTier("avx512", false, false, false, false),
              Tier::Scalar);
    // Unknown env values warn and fall back rather than abort startup.
    EXPECT_EQ(simd::resolveTier("neon", true, true), Tier::Scalar);
}

TEST_F(SimdDispatch, SetTierSwitchesTheActiveTable)
{
    simd::setTier(Tier::Scalar);
    EXPECT_EQ(simd::activeTier(), Tier::Scalar);
    EXPECT_STREQ(simd::kernels().name, "scalar");
    if (avx2Available()) {
        simd::setTier(Tier::Avx2);
        EXPECT_EQ(simd::activeTier(), Tier::Avx2);
        EXPECT_STREQ(simd::kernels().name, "avx2");
    }
    if (avx512Available()) {
        simd::setTier(Tier::Avx512);
        EXPECT_EQ(simd::activeTier(), Tier::Avx512);
        EXPECT_STREQ(simd::kernels().name, "avx512");
    }
}

TEST_F(SimdDispatch, SetTierThrowsWhenAvx2Unavailable)
{
    if (avx2Available())
        GTEST_SKIP() << "AVX2 available; the strict path cannot fail";
    EXPECT_THROW(simd::setTier(Tier::Avx2), util::InvalidArgument);
}

TEST_F(SimdDispatch, SetTierThrowsWhenAvx512Unavailable)
{
    if (avx512Available())
        GTEST_SKIP()
            << "AVX-512 available; the strict path cannot fail";
    EXPECT_THROW(simd::setTier(Tier::Avx512), util::InvalidArgument);
}

TEST_F(SimdDispatch, RequestTierReturnsWhatItSelected)
{
    EXPECT_EQ(simd::requestTier(Tier::Scalar), Tier::Scalar);
    EXPECT_EQ(simd::activeTier(), Tier::Scalar);
    const Tier granted = simd::requestTier(Tier::Avx2);
    EXPECT_EQ(granted,
              avx2Available() ? Tier::Avx2 : Tier::Scalar);
    EXPECT_EQ(simd::activeTier(), granted);
}

TEST_F(SimdDispatch, RequestAvx512FallsBackToWidestRemainingTier)
{
    const Tier granted = simd::requestTier(Tier::Avx512);
    if (avx512Available())
        EXPECT_EQ(granted, Tier::Avx512);
    else
        EXPECT_EQ(granted,
                  avx2Available() ? Tier::Avx2 : Tier::Scalar);
    EXPECT_EQ(simd::activeTier(), granted);
}

/** Parses argv through the shared bench options. */
util::ArgParser
parsedArgs(std::vector<const char *> argv)
{
    util::ArgParser args("test_dispatch");
    experiments::addBenchOptions(args);
    argv.insert(argv.begin(), "test_dispatch");
    EXPECT_TRUE(args.parse(static_cast<int>(argv.size()),
                           const_cast<char **>(argv.data())));
    return args;
}

TEST_F(SimdDispatch, ApplySimdOptionScalarOverridesDispatch)
{
    const util::ArgParser args = parsedArgs({"--simd", "scalar"});
    EXPECT_EQ(experiments::applySimdOption(args), Tier::Scalar);
    EXPECT_EQ(simd::activeTier(), Tier::Scalar);
}

TEST_F(SimdDispatch, ApplySimdOptionAutoKeepsTheResolvedTier)
{
    const Tier before = simd::activeTier();
    const util::ArgParser args = parsedArgs({});
    EXPECT_EQ(experiments::applySimdOption(args), before);
    EXPECT_EQ(simd::activeTier(), before);
}

TEST_F(SimdDispatch, ApplySimdOptionRejectsUnknownTiers)
{
    const util::ArgParser args = parsedArgs({"--simd", "sse2"});
    EXPECT_THROW(experiments::applySimdOption(args),
                 util::InvalidArgument);
}

TEST_F(SimdDispatch, ApplySimdOptionRecordsJsonContext)
{
    util::BenchJsonWriter json("test_dispatch");
    const util::ArgParser args = parsedArgs({"--simd", "scalar"});
    experiments::applySimdOption(args, &json);
    const std::string doc = json.toJson();
    EXPECT_NE(doc.find("\"simd_tier\": \"scalar\""), std::string::npos);
    EXPECT_NE(doc.find("\"cpu_features\": \""), std::string::npos);
}

} // namespace
