/**
 * @file
 * Exhaustive scalar <-> AVX2 bit-equality over the full kernel table.
 * Lengths 1..67 cover every (full-block, 4-lane, remainder) phase of
 * the canonical lane-blocked reduction several times over; the GEMM
 * and MLP shapes stress remainder-heavy panels. Every comparison is
 * EXPECT_EQ on the doubles — bit identity, not tolerance — because
 * that is the contract the dispatch layer sells.
 */

#include <gtest/gtest.h>

#include <vector>

#include "simd/simd.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

constexpr std::size_t kMaxLen = 67;

/** Deterministic operand with varied signs and magnitudes. */
std::vector<double>
operand(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(-3.0, 3.0);
    return v;
}

/** Non-negative operand (distance weights). */
std::vector<double>
weightOperand(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(0.0, 2.0);
    return v;
}

class KernelEquality : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (simd::avx2Kernels() == nullptr || !simd::cpuSupportsAvx2())
            GTEST_SKIP() << "AVX2 tier unavailable on this build/CPU";
        avx2_ = simd::avx2Kernels();
    }

    const simd::KernelTable &scalar_ = simd::scalarKernels();
    const simd::KernelTable *avx2_ = nullptr;
};

TEST_F(KernelEquality, ReductionsAgreeOnEveryLength)
{
    for (std::size_t n = 1; n <= kMaxLen; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto a = operand(n, 100 + n);
        const auto b = operand(n, 200 + n);
        const auto w = weightOperand(n, 300 + n);
        EXPECT_EQ(scalar_.dot(a.data(), b.data(), n),
                  avx2_->dot(a.data(), b.data(), n));
        EXPECT_EQ(scalar_.squaredDistance(a.data(), b.data(), n),
                  avx2_->squaredDistance(a.data(), b.data(), n));
        EXPECT_EQ(scalar_.manhattan(a.data(), b.data(), n),
                  avx2_->manhattan(a.data(), b.data(), n));
        EXPECT_EQ(
            scalar_.weightedSquaredDistance(a.data(), b.data(), w.data(),
                                            n),
            avx2_->weightedSquaredDistance(a.data(), b.data(), w.data(),
                                           n));
        EXPECT_EQ(scalar_.centeredDot(a.data(), b.data(), 0.125, -0.75,
                                      n),
                  avx2_->centeredDot(a.data(), b.data(), 0.125, -0.75,
                                     n));
    }
}

TEST_F(KernelEquality, ElementwiseSweepsAgreeOnEveryLength)
{
    for (std::size_t n = 1; n <= kMaxLen; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto base = operand(n, 400 + n);
        const auto b = operand(n, 500 + n);

        auto s = base;
        auto v = base;
        scalar_.axpy(s.data(), b.data(), 1.25, n);
        avx2_->axpy(v.data(), b.data(), 1.25, n);
        EXPECT_EQ(s, v);

        s = base;
        v = base;
        scalar_.scale(s.data(), -0.333, n);
        avx2_->scale(v.data(), -0.333, n);
        EXPECT_EQ(s, v);

        s = base;
        v = base;
        scalar_.mulAdd(s.data(), b.data(), base.data(), n);
        avx2_->mulAdd(v.data(), b.data(), base.data(), n);
        EXPECT_EQ(s, v);
    }
}

TEST_F(KernelEquality, GemmMicroAgreesOnRemainderHeavyShapes)
{
    const std::size_t shapes[] = {1,  2,  3,  5,  7,  8,  9, 15,
                                  16, 17, 31, 33, 63, 65, 67};
    for (std::size_t k : shapes) {
        for (std::size_t n : shapes) {
            SCOPED_TRACE("k=" + std::to_string(k) +
                         " n=" + std::to_string(n));
            auto a = operand(k, 600 + k);
            if (k > 2)
                a[k / 2] = 0.0; // exercise the zero-skip in both tiers
            const auto b = operand(k * n, 700 + k * 31 + n);
            auto cs = operand(n, 800 + n);
            auto cv = cs;
            scalar_.gemmMicro(k, n, a.data(), b.data(), n, cs.data());
            avx2_->gemmMicro(k, n, a.data(), b.data(), n, cv.data());
            EXPECT_EQ(cs, cv);
        }
    }
}

TEST_F(KernelEquality, MlpKernelsAgreeAcrossLayerShapes)
{
    const std::size_t widths[] = {1, 2, 3, 5, 8, 15, 16, 17, 33, 67};
    for (std::size_t in : widths) {
        for (std::size_t out : widths) {
            SCOPED_TRACE("in=" + std::to_string(in) +
                         " out=" + std::to_string(out));
            const auto wt = operand(in * out, 900 + in * 71 + out);
            const auto bias = operand(out, 1000 + out);
            const auto a_in = operand(in, 1100 + in);

            std::vector<double> nets_s(out, 0.0);
            std::vector<double> nets_v(out, 0.0);
            scalar_.mlpLayerNets(in, out, wt.data(), bias.data(),
                                 a_in.data(), nets_s.data());
            avx2_->mlpLayerNets(in, out, wt.data(), bias.data(),
                                a_in.data(), nets_v.data());
            EXPECT_EQ(nets_s, nets_v);

            // Deltas: `out` plays the successor width here.
            const auto d_next = operand(out, 1200 + out);
            std::vector<double> d_s(in, 0.0);
            std::vector<double> d_v(in, 0.0);
            scalar_.mlpLayerDeltas(in, out, wt.data(), d_next.data(),
                                   d_s.data());
            avx2_->mlpLayerDeltas(in, out, wt.data(), d_next.data(),
                                  d_v.data());
            EXPECT_EQ(d_s, d_v);

            // Momentum update mutates every buffer; compare them all.
            auto d2_s = operand(out, 1300 + out);
            auto d2_v = d2_s;
            auto wt_s = wt;
            auto wt_v = wt;
            auto pwt_s = operand(in * out, 1400 + in + out);
            auto pwt_v = pwt_s;
            auto bias_s = bias;
            auto bias_v = bias;
            auto pb_s = operand(out, 1500 + out);
            auto pb_v = pb_s;
            scalar_.mlpUpdateLayer(in, out, 0.05, 0.2, a_in.data(),
                                   d2_s.data(), wt_s.data(),
                                   pwt_s.data(), bias_s.data(),
                                   pb_s.data());
            avx2_->mlpUpdateLayer(in, out, 0.05, 0.2, a_in.data(),
                                  d2_v.data(), wt_v.data(),
                                  pwt_v.data(), bias_v.data(),
                                  pb_v.data());
            EXPECT_EQ(d2_s, d2_v);
            EXPECT_EQ(wt_s, wt_v);
            EXPECT_EQ(pwt_s, pwt_v);
            EXPECT_EQ(bias_s, bias_v);
            EXPECT_EQ(pb_s, pb_v);
        }
    }
}

/**
 * The degenerate-length property the golden-value tests rely on: below
 * one full block (n < 16) the canonical reduction IS the plain
 * sequential sum, so small fixtures keep their pre-SIMD values.
 */
TEST(KernelCanonicalReduction, ShortLengthsMatchSequentialSum)
{
    for (std::size_t n = 1; n < 16; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto a = operand(n, 1600 + n);
        const auto b = operand(n, 1700 + n);
        double seq = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            seq += a[i] * b[i];
        EXPECT_EQ(simd::scalarKernels().dot(a.data(), b.data(), n), seq);
    }
}

} // namespace
