/**
 * @file
 * Exhaustive scalar <-> vector-tier bit-equality over the full kernel
 * table, run once per vector tier (AVX2 and AVX-512) through a
 * value-parameterized fixture. Lengths 1..67 cover every (full-block,
 * lane, remainder) phase of the canonical lane-blocked reduction
 * several times over; the GEMM and MLP shapes stress remainder-heavy
 * panels. Every comparison is EXPECT_EQ on the doubles — bit identity,
 * not tolerance — because that is the contract the dispatch layer
 * sells. A tier the build or CPU lacks skips its instantiation
 * cleanly (the runtime probe half of the CI avx512 guard).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simd/simd.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

constexpr std::size_t kMaxLen = 67;

/** Deterministic operand with varied signs and magnitudes. */
std::vector<double>
operand(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(-3.0, 3.0);
    return v;
}

/** Non-negative operand (distance weights). */
std::vector<double>
weightOperand(std::size_t n, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(0.0, 2.0);
    return v;
}

class KernelEquality : public ::testing::TestWithParam<simd::Tier>
{
  protected:
    void SetUp() override
    {
        switch (GetParam()) {
          case simd::Tier::Avx2:
            if (simd::avx2Kernels() == nullptr ||
                !simd::cpuSupportsAvx2())
                GTEST_SKIP()
                    << "AVX2 tier unavailable on this build/CPU";
            vec_ = simd::avx2Kernels();
            break;
          case simd::Tier::Avx512:
            if (simd::avx512Kernels() == nullptr ||
                !simd::cpuSupportsAvx512())
                GTEST_SKIP()
                    << "AVX-512 tier unavailable on this build/CPU";
            vec_ = simd::avx512Kernels();
            break;
          default:
            FAIL() << "parameterized over vector tiers only";
        }
    }

    const simd::KernelTable &scalar_ = simd::scalarKernels();
    const simd::KernelTable *vec_ = nullptr;
};

TEST_P(KernelEquality, ReductionsAgreeOnEveryLength)
{
    for (std::size_t n = 1; n <= kMaxLen; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto a = operand(n, 100 + n);
        const auto b = operand(n, 200 + n);
        const auto w = weightOperand(n, 300 + n);
        EXPECT_EQ(scalar_.dot(a.data(), b.data(), n),
                  vec_->dot(a.data(), b.data(), n));
        EXPECT_EQ(scalar_.squaredDistance(a.data(), b.data(), n),
                  vec_->squaredDistance(a.data(), b.data(), n));
        EXPECT_EQ(scalar_.manhattan(a.data(), b.data(), n),
                  vec_->manhattan(a.data(), b.data(), n));
        EXPECT_EQ(
            scalar_.weightedSquaredDistance(a.data(), b.data(), w.data(),
                                            n),
            vec_->weightedSquaredDistance(a.data(), b.data(), w.data(),
                                          n));
        EXPECT_EQ(scalar_.centeredDot(a.data(), b.data(), 0.125, -0.75,
                                      n),
                  vec_->centeredDot(a.data(), b.data(), 0.125, -0.75,
                                    n));
    }
}

TEST_P(KernelEquality, ElementwiseSweepsAgreeOnEveryLength)
{
    for (std::size_t n = 1; n <= kMaxLen; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto base = operand(n, 400 + n);
        const auto b = operand(n, 500 + n);

        auto s = base;
        auto v = base;
        scalar_.axpy(s.data(), b.data(), 1.25, n);
        vec_->axpy(v.data(), b.data(), 1.25, n);
        EXPECT_EQ(s, v);

        s = base;
        v = base;
        scalar_.scale(s.data(), -0.333, n);
        vec_->scale(v.data(), -0.333, n);
        EXPECT_EQ(s, v);

        s = base;
        v = base;
        scalar_.mulAdd(s.data(), b.data(), base.data(), n);
        vec_->mulAdd(v.data(), b.data(), base.data(), n);
        EXPECT_EQ(s, v);
    }
}

TEST_P(KernelEquality, GemmMicroAgreesOnRemainderHeavyShapes)
{
    const std::size_t shapes[] = {1,  2,  3,  5,  7,  8,  9, 15,
                                  16, 17, 31, 33, 63, 65, 67};
    for (std::size_t k : shapes) {
        for (std::size_t n : shapes) {
            SCOPED_TRACE("k=" + std::to_string(k) +
                         " n=" + std::to_string(n));
            auto a = operand(k, 600 + k);
            if (k > 2)
                a[k / 2] = 0.0; // exercise the zero-skip in both tiers
            const auto b = operand(k * n, 700 + k * 31 + n);
            auto cs = operand(n, 800 + n);
            auto cv = cs;
            scalar_.gemmMicro(k, n, a.data(), b.data(), n, cs.data());
            vec_->gemmMicro(k, n, a.data(), b.data(), n, cv.data());
            EXPECT_EQ(cs, cv);
        }
    }
}

TEST_P(KernelEquality, MlpKernelsAgreeAcrossLayerShapes)
{
    const std::size_t widths[] = {1, 2, 3, 5, 8, 15, 16, 17, 33, 67};
    for (std::size_t in : widths) {
        for (std::size_t out : widths) {
            SCOPED_TRACE("in=" + std::to_string(in) +
                         " out=" + std::to_string(out));
            const auto wt = operand(in * out, 900 + in * 71 + out);
            const auto bias = operand(out, 1000 + out);
            const auto a_in = operand(in, 1100 + in);

            std::vector<double> nets_s(out, 0.0);
            std::vector<double> nets_v(out, 0.0);
            scalar_.mlpLayerNets(in, out, wt.data(), bias.data(),
                                 a_in.data(), nets_s.data());
            vec_->mlpLayerNets(in, out, wt.data(), bias.data(),
                               a_in.data(), nets_v.data());
            EXPECT_EQ(nets_s, nets_v);

            // Deltas: `out` plays the successor width here.
            const auto d_next = operand(out, 1200 + out);
            std::vector<double> d_s(in, 0.0);
            std::vector<double> d_v(in, 0.0);
            scalar_.mlpLayerDeltas(in, out, wt.data(), d_next.data(),
                                   d_s.data());
            vec_->mlpLayerDeltas(in, out, wt.data(), d_next.data(),
                                 d_v.data());
            EXPECT_EQ(d_s, d_v);

            // Momentum update mutates every buffer; compare them all.
            auto d2_s = operand(out, 1300 + out);
            auto d2_v = d2_s;
            auto wt_s = wt;
            auto wt_v = wt;
            auto pwt_s = operand(in * out, 1400 + in + out);
            auto pwt_v = pwt_s;
            auto bias_s = bias;
            auto bias_v = bias;
            auto pb_s = operand(out, 1500 + out);
            auto pb_v = pb_s;
            scalar_.mlpUpdateLayer(in, out, 0.05, 0.2, a_in.data(),
                                   d2_s.data(), wt_s.data(),
                                   pwt_s.data(), bias_s.data(),
                                   pb_s.data());
            vec_->mlpUpdateLayer(in, out, 0.05, 0.2, a_in.data(),
                                 d2_v.data(), wt_v.data(),
                                 pwt_v.data(), bias_v.data(),
                                 pb_v.data());
            EXPECT_EQ(d2_s, d2_v);
            EXPECT_EQ(wt_s, wt_v);
            EXPECT_EQ(pwt_s, pwt_v);
            EXPECT_EQ(bias_s, bias_v);
            EXPECT_EQ(pb_s, pb_v);
        }
    }
}

/**
 * The minibatch kernels. mlpBatchNets must equal running mlpLayerNets
 * row by row (the per-sample engine's arithmetic) and the vector tier
 * must match the scalar tier bit-for-bit; mlpGradAccum must equal the
 * zero-init sample-ascending rank-1 accumulation and OVERWRITE any
 * garbage already in gw. Strided variants cover lda/ldd/ldc larger
 * than the row width.
 */
TEST_P(KernelEquality, BatchKernelsMatchPerSampleLoops)
{
    const std::size_t bns[] = {1, 2, 3, 4, 5, 8, 13};
    const std::size_t ins[] = {1, 2, 7, 16, 28, 33};
    const std::size_t outs[] = {1, 2, 4, 8, 14, 17};
    for (std::size_t bn : bns) {
        for (std::size_t in : ins) {
            for (std::size_t out : outs) {
                SCOPED_TRACE("bn=" + std::to_string(bn) +
                             " in=" + std::to_string(in) +
                             " out=" + std::to_string(out));
                const std::size_t lda = in + (bn % 3);  // packed + padded
                const std::size_t ldc = out + (bn % 2);
                const auto a =
                    operand(bn * lda, 2100 + bn * 131 + in * 7 + out);
                const auto wt = operand(in * out, 2200 + in * 71 + out);
                const auto bias = operand(out, 2300 + out);

                std::vector<double> ref(bn * ldc, 0.0);
                for (std::size_t s = 0; s < bn; ++s)
                    scalar_.mlpLayerNets(in, out, wt.data(),
                                         bias.data(), a.data() + s * lda,
                                         ref.data() + s * ldc);

                std::vector<double> nets_s(bn * ldc, 0.0);
                scalar_.mlpBatchNets(bn, in, out, a.data(), lda,
                                     wt.data(), bias.data(),
                                     nets_s.data(), ldc);
                std::vector<double> nets_v(bn * ldc, 0.0);
                vec_->mlpBatchNets(bn, in, out, a.data(), lda,
                                   wt.data(), bias.data(), nets_v.data(),
                                   ldc);
                for (std::size_t s = 0; s < bn; ++s)
                    for (std::size_t r = 0; r < out; ++r) {
                        EXPECT_EQ(ref[s * ldc + r], nets_s[s * ldc + r]);
                        EXPECT_EQ(ref[s * ldc + r], nets_v[s * ldc + r]);
                    }

                const std::size_t ldd = out + (in % 2);
                const auto d =
                    operand(bn * ldd, 2400 + bn * 17 + in + out);
                std::vector<double> gw_ref(out * in, 0.0);
                for (std::size_t s = 0; s < bn; ++s)
                    for (std::size_t r = 0; r < out; ++r)
                        for (std::size_t col = 0; col < in; ++col)
                            gw_ref[r * in + col] +=
                                d[s * ldd + r] * a[s * lda + col];

                // Prefill with garbage: the kernel must overwrite.
                auto gw_s = operand(out * in, 2500 + in + out);
                scalar_.mlpGradAccum(bn, out, in, d.data(), ldd,
                                     a.data(), lda, gw_s.data());
                EXPECT_EQ(gw_ref, gw_s);
                auto gw_v = operand(out * in, 2600 + in + out);
                vec_->mlpGradAccum(bn, out, in, d.data(), ldd, a.data(),
                                   lda, gw_v.data());
                EXPECT_EQ(gw_ref, gw_v);
            }
        }
    }
}

/**
 * gemmDot: the blocked canonical-dot GEMM must match the naive
 * `bias[j] + dot(...)` double loop bit-for-bit on shapes that straddle
 * its 16x256 panel boundaries, and the vector tier must match the
 * scalar tier entry by entry.
 */
TEST_P(KernelEquality, GemmDotMatchesNaiveDotLoopAcrossBlocks)
{
    const std::size_t ms[] = {1, 3, 16, 31, 257};
    const std::size_t ns[] = {1, 2, 15, 16, 17, 33};
    const std::size_t ks[] = {1, 7, 16, 28, 67};
    for (std::size_t m : ms) {
        for (std::size_t n : ns) {
            for (std::size_t k : ks) {
                SCOPED_TRACE("m=" + std::to_string(m) +
                             " n=" + std::to_string(n) +
                             " k=" + std::to_string(k));
                const auto a = operand(m * k, 1800 + m * 131 + k);
                const auto b = operand(n * k, 1900 + n * 17 + k);
                const auto bias = operand(n, 2000 + n);

                std::vector<double> naive(m * n);
                for (std::size_t i = 0; i < m; ++i)
                    for (std::size_t j = 0; j < n; ++j)
                        naive[i * n + j] =
                            bias[j] + scalar_.dot(a.data() + i * k,
                                                  b.data() + j * k, k);

                std::vector<double> blocked_s(m * n);
                simd::gemmDot(scalar_, m, n, k, a.data(), k, b.data(),
                              k, bias.data(), blocked_s.data(), n);
                EXPECT_EQ(naive, blocked_s);

                std::vector<double> blocked_v(m * n);
                simd::gemmDot(*vec_, m, n, k, a.data(), k, b.data(), k,
                              bias.data(), blocked_v.data(), n);
                EXPECT_EQ(naive, blocked_v);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    VectorTiers, KernelEquality,
    ::testing::Values(simd::Tier::Avx2, simd::Tier::Avx512),
    [](const ::testing::TestParamInfo<simd::Tier> &info) {
        return std::string(simd::tierName(info.param));
    });

/**
 * The degenerate-length property the golden-value tests rely on: below
 * one full block (n < 16) the canonical reduction IS the plain
 * sequential sum, so small fixtures keep their pre-SIMD values.
 */
TEST(KernelCanonicalReduction, ShortLengthsMatchSequentialSum)
{
    for (std::size_t n = 1; n < 16; ++n) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto a = operand(n, 1600 + n);
        const auto b = operand(n, 1700 + n);
        double seq = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            seq += a[i] * b[i];
        EXPECT_EQ(simd::scalarKernels().dot(a.data(), b.data(), n), seq);
    }
}

} // namespace
