/**
 * @file
 * Reduced-budget reproduction tests: the paper's qualitative claims
 * must hold on the synthetic database even with cheaper training
 * budgets than the bench binaries use. These are the invariants the
 * full reproduction (bench_table2_family_cv and friends) rests on.
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/family_cv.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using experiments::Method;

/** Shared across the tests in this file; built once (it is slow). */
class ReproductionTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        db_ = new dataset::PerfDatabase(dataset::makePaperDataset());
        chars_ = new linalg::Matrix(
            dataset::MicaGenerator().generateForCatalog());

        experiments::MethodSuiteConfig config;
        config.mlp.mlp.epochs = 120;
        config.gaKnn.ga.populationSize = 24;
        config.gaKnn.ga.generations = 20;
        evaluator_ = new experiments::SplitEvaluator(*db_, *chars_,
                                                     config);
        const experiments::FamilyCrossValidation cv(*evaluator_);
        results_ = new experiments::FamilyCvResults(
            cv.run(experiments::allMethods()));
    }

    static void
    TearDownTestSuite()
    {
        delete results_;
        delete evaluator_;
        delete chars_;
        delete db_;
        results_ = nullptr;
        evaluator_ = nullptr;
        chars_ = nullptr;
        db_ = nullptr;
    }

    static dataset::PerfDatabase *db_;
    static linalg::Matrix *chars_;
    static experiments::SplitEvaluator *evaluator_;
    static experiments::FamilyCvResults *results_;
};

dataset::PerfDatabase *ReproductionTest::db_ = nullptr;
linalg::Matrix *ReproductionTest::chars_ = nullptr;
experiments::SplitEvaluator *ReproductionTest::evaluator_ = nullptr;
experiments::FamilyCvResults *ReproductionTest::results_ = nullptr;

TEST_F(ReproductionTest, MlpHasTheBestAverageRankCorrelation)
{
    const double mlp = results_->rankAggregate(Method::MlpT).average;
    const double nn = results_->rankAggregate(Method::NnT).average;
    const double ga = results_->rankAggregate(Method::GaKnn).average;
    EXPECT_GE(mlp, nn);
    EXPECT_GT(mlp, ga);
    EXPECT_GT(mlp, 0.9);
}

TEST_F(ReproductionTest, GaKnnHasTheWorstWorstCaseRank)
{
    const double mlp = results_->rankAggregate(Method::MlpT).worst;
    const double ga = results_->rankAggregate(Method::GaKnn).worst;
    EXPECT_LT(ga, mlp);
    EXPECT_LT(ga, 0.75); // an outlier benchmark must hurt GA-kNN
}

TEST_F(ReproductionTest, GaKnnTop1FailsBeyond100PercentOnOutliers)
{
    // The paper's headline failure of prior art (Section 6.2).
    EXPECT_GT(results_->top1Aggregate(Method::GaKnn).worst, 100.0);
}

TEST_F(ReproductionTest, MlpTop1StaysModest)
{
    // "...data transposition using neural networks brings the error
    // down to 25% at most" — allow slack for the reduced budget.
    EXPECT_LT(results_->top1Aggregate(Method::MlpT).worst, 40.0);
    EXPECT_LT(results_->top1Aggregate(Method::MlpT).average, 3.0);
}

TEST_F(ReproductionTest, GaKnnFailsOnTheDisguisedOutliers)
{
    // Per-benchmark view (Figure 6): the characteristic outliers must
    // be GA-kNN's worst benchmarks while MLP^T stays accurate on them.
    for (const auto &[outlier, twin] :
         dataset::characteristicDisguises()) {
        const double ga =
            results_->benchmarkMeanRank(Method::GaKnn, outlier);
        const double mlp =
            results_->benchmarkMeanRank(Method::MlpT, outlier);
        EXPECT_LT(ga, 0.85) << outlier;
        EXPECT_GT(mlp, 0.9) << outlier;
        EXPECT_GT(mlp, ga) << outlier;
    }
}

TEST_F(ReproductionTest, GaKnnIsAccurateOnMainstreamBenchmarks)
{
    // The paper's baseline is credible on non-outliers; our synthetic
    // data must not cripple it across the board.
    for (const char *bench : {"perlbench", "gcc", "gamess", "povray"}) {
        EXPECT_GT(results_->benchmarkMeanRank(Method::GaKnn, bench),
                  0.9)
            << bench;
    }
}

TEST_F(ReproductionTest, GaKnnHasTheWorstMeanError)
{
    const double mlp =
        results_->meanErrorAggregate(Method::MlpT).average;
    const double nn = results_->meanErrorAggregate(Method::NnT).average;
    const double ga =
        results_->meanErrorAggregate(Method::GaKnn).average;
    EXPECT_GT(ga, nn);
    EXPECT_GT(ga, mlp);
}

TEST_F(ReproductionTest, NamdAndHmmerAreHandledByEveryMethod)
{
    // Section 6.2: "Both data transposition and the prior work are
    // accurate at estimating performance for these benchmarks." Their
    // best machine (Montecito) is the oldest in the study, so the
    // temporal-drift component of the synthetic data puts a floor on
    // how precisely its scores can be predicted; "handled" here means
    // ranked well and never failing catastrophically (>100%).
    for (const char *bench : {"namd", "hmmer"}) {
        for (Method m : experiments::allMethods()) {
            EXPECT_GT(results_->benchmarkMeanRank(m, bench), 0.6)
                << bench << " " << experiments::methodName(m);
            EXPECT_LT(results_->benchmarkMeanTop1(m, bench), 60.0)
                << bench << " " << experiments::methodName(m);
        }
    }
}

} // namespace
