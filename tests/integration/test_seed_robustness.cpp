/**
 * @file
 * Seed-robustness property tests: the paper's qualitative claims must
 * hold for *any* seed of the synthetic database, not just the default —
 * otherwise the reproduction would be an artifact of one noise draw.
 * Budgets are reduced to keep the sweep fast; the claims tested are the
 * ordering/failure-structure ones, which are budget-insensitive.
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/family_cv.h"

namespace
{

using namespace dtrank;
using experiments::Method;

class SeedRobustnessTest : public ::testing::TestWithParam<int>
{
  protected:
    experiments::FamilyCvResults
    run() const
    {
        const dataset::PerfDatabase db = dataset::makePaperDataset(
            static_cast<std::uint64_t>(GetParam()));
        const linalg::Matrix chars =
            dataset::MicaGenerator().generateForCatalog();
        experiments::MethodSuiteConfig config;
        config.mlp.mlp.epochs = 60;
        config.gaKnn.ga.populationSize = 16;
        config.gaKnn.ga.generations = 10;
        const experiments::SplitEvaluator evaluator(db, chars, config);
        return experiments::FamilyCrossValidation(evaluator).run(
            {Method::NnT, Method::MlpT, Method::GaKnn});
    }
};

TEST_P(SeedRobustnessTest, OrderingAndFailureStructureHold)
{
    const auto results = run();

    // MLP^T leads the average rank correlation.
    const double mlp = results.rankAggregate(Method::MlpT).average;
    const double nn = results.rankAggregate(Method::NnT).average;
    const double ga = results.rankAggregate(Method::GaKnn).average;
    EXPECT_GE(mlp, nn - 0.01);
    EXPECT_GT(mlp, ga);

    // GA-kNN suffers a catastrophic (>100%) top-1 failure somewhere,
    // and its worst-case rank correlation trails MLP^T's by a wide
    // margin.
    EXPECT_GT(results.top1Aggregate(Method::GaKnn).worst, 100.0);
    EXPECT_LT(results.rankAggregate(Method::GaKnn).worst,
              results.rankAggregate(Method::MlpT).worst - 0.2);

    // MLP^T's worst-case top-1 stays within the paper's ~25% regime
    // (slack for the reduced budget).
    EXPECT_LT(results.top1Aggregate(Method::MlpT).worst, 45.0);

    // GA-kNN's failures land on the characteristic outliers.
    double worst_outlier_rank = 1.0;
    for (const auto &[outlier, twin] :
         dataset::characteristicDisguises()) {
        worst_outlier_rank =
            std::min(worst_outlier_rank,
                     results.benchmarkMeanRank(Method::GaKnn, outlier));
    }
    EXPECT_LT(worst_outlier_rank, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(7, 123, 2011, 9999));

} // namespace
