/**
 * @file
 * End-to-end integration tests: generate the database, run the full
 * prediction pipeline the way a library user would, and verify the
 * pieces compose (dataset -> problem -> predictor -> ranking ->
 * metrics), including CSV persistence in the middle.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "core/linear_transposition.h"
#include "core/metrics.h"
#include "core/mlp_transposition.h"
#include "core/ranking.h"
#include "core/selection.h"
#include "core/transposition.h"
#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(EndToEnd, PurchaseAdvisorPipeline)
{
    // 1. The published database (117 machines).
    const dataset::PerfDatabase db = dataset::makePaperDataset();

    // 2. The user owns a handful of diverse machines.
    util::Rng rng(11);
    std::vector<std::size_t> all(db.machineCount());
    for (std::size_t m = 0; m < all.size(); ++m)
        all[m] = m;
    const auto predictive =
        core::selectMachinesByKMedoids(db, all, 6, rng);

    // 3. Everything else is for sale.
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (std::find(predictive.begin(), predictive.end(), m) ==
            predictive.end())
            targets.push_back(m);

    // 4. Predict the application of interest (held-out benchmark).
    const auto problem = core::makeProblemFromSplit(
        db, predictive, targets, "omnetpp");
    core::LinearTransposition predictor;
    const auto predicted = predictor.predict(problem);

    // 5. Rank and buy.
    const core::MachineRanking ranking(predicted);
    const auto top3 = ranking.topMachines(3);
    ASSERT_EQ(top3.size(), 3u);

    // 6. Sanity: the purchase is close to optimal.
    const auto actual = db.selectMachines(targets).benchmarkScores(
        db.benchmarkIndex("omnetpp"));
    const auto metrics = core::evaluatePrediction(actual, predicted);
    EXPECT_GT(metrics.rankCorrelation, 0.8);
    EXPECT_LT(metrics.top1ErrorPercent, 50.0);
}

TEST(EndToEnd, CsvRoundTripPreservesPredictions)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const std::string path =
        ::testing::TempDir() + "dtrank_e2e.csv";
    db.saveCsv(path);
    const dataset::PerfDatabase loaded =
        dataset::PerfDatabase::loadCsv(path);
    std::remove(path.c_str());

    std::vector<std::size_t> predictive = {0, 20, 40, 60, 80, 100};
    std::vector<std::size_t> targets = {5, 25, 45, 65, 85, 105};

    core::LinearTransposition predictor;
    const auto a = predictor.predict(core::makeProblemFromSplit(
        db, predictive, targets, "bzip2"));
    const auto b = predictor.predict(core::makeProblemFromSplit(
        loaded, predictive, targets, "bzip2"));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], a[i] * 1e-4);
}

TEST(EndToEnd, MlpAndLinearAgreeOnEasyTargets)
{
    // On machines whose family is well represented in the predictive
    // set, both data-transposition flavours must largely agree on the
    // ranking they induce.
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    std::vector<std::size_t> predictive;
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        (m % 2 == 0 ? predictive : targets).push_back(m);

    const auto problem = core::makeProblemFromSplit(
        db, predictive, targets, "gcc");

    core::LinearTransposition lin;
    core::MlpTranspositionConfig mlp_config;
    mlp_config.mlp.epochs = 100;
    core::MlpTransposition mlp(mlp_config);

    const auto pa = lin.predict(problem);
    const auto pb = mlp.predict(problem);

    const auto actual =
        db.selectMachines(targets).benchmarkScores(
            db.benchmarkIndex("gcc"));
    EXPECT_GT(core::evaluatePrediction(actual, pa).rankCorrelation,
              0.9);
    EXPECT_GT(core::evaluatePrediction(actual, pb).rankCorrelation,
              0.9);
}

TEST(EndToEnd, HeterogeneousSchedulingScenario)
{
    // Section 4's scheduling application: predict per-app performance
    // on a small heterogeneous node pool and check assignment quality.
    const dataset::PerfDatabase db = dataset::makePaperDataset();

    // Node pool: one bandwidth monster, one high-clock FSB box, one
    // big-cache machine.
    std::vector<std::size_t> nodes;
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        const auto &info = db.machine(m);
        if (info.variant != 0)
            continue;
        if (info.nickname == "Gainestown" ||
            info.nickname == "Wolfdale-DP" ||
            info.nickname == "Montecito")
            nodes.push_back(m);
    }
    ASSERT_EQ(nodes.size(), 3u);

    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        if (std::find(nodes.begin(), nodes.end(), m) == nodes.end())
            predictive.push_back(m);

    // The bandwidth-bound app must be assigned to the Nehalem node.
    const auto problem = core::makeProblemFromSplit(
        db, predictive, nodes, "lbm");
    core::MlpTranspositionConfig config;
    config.mlp.epochs = 150;
    core::MlpTransposition predictor(config);
    const auto pred = predictor.predict(problem);
    const core::MachineRanking ranking(pred);
    EXPECT_EQ(db.machine(nodes[ranking.best()]).nickname,
              "Gainestown");
}

} // namespace
