/**
 * @file
 * Unit tests for the dtrank_analyze token lexer: kinds, line numbers,
 * preprocessor classification, and the constructs the old regex
 * linter could not represent — raw strings, line continuations,
 * digit separators, header-name operands, comment edge cases.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/analyze/lexer.h"

namespace
{

using dtrank::analyze::lex;
using dtrank::analyze::lineCount;
using dtrank::analyze::Token;
using dtrank::analyze::TokenKind;

/** The non-comment tokens of `content`, for compact assertions. */
std::vector<Token>
codeOf(const std::string &content)
{
    std::vector<Token> code;
    for (const Token &token : lex(content))
        if (token.kind != TokenKind::Comment)
            code.push_back(token);
    return code;
}

std::vector<std::string>
spellingsOf(const std::vector<Token> &tokens)
{
    std::vector<std::string> spellings;
    for (const Token &token : tokens)
        spellings.push_back(token.text);
    return spellings;
}

TEST(AnalyzeLexer, IdentifiersNumbersAndPunctuation)
{
    const auto tokens = codeOf("int x = 42;");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "int");
    EXPECT_EQ(tokens[1].text, "x");
    EXPECT_EQ(tokens[2].kind, TokenKind::Punct);
    EXPECT_EQ(tokens[2].text, "=");
    EXPECT_EQ(tokens[3].kind, TokenKind::Number);
    EXPECT_EQ(tokens[3].text, "42");
    EXPECT_EQ(tokens[4].text, ";");
}

TEST(AnalyzeLexer, LineNumbersAreOneBasedAndTrackNewlines)
{
    const auto tokens = codeOf("a\nb\n\nc\n");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[1].line, 2u);
    EXPECT_EQ(tokens[2].line, 4u);
}

TEST(AnalyzeLexer, LineCommentBecomesCommentToken)
{
    const auto tokens = lex("x; // trailing note\ny;");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[2].kind, TokenKind::Comment);
    EXPECT_NE(tokens[2].text.find("trailing note"), std::string::npos);
    EXPECT_EQ(tokens[3].text, "y");
    EXPECT_EQ(tokens[3].line, 2u);
}

TEST(AnalyzeLexer, BlockCommentSpansLinesAndLineKeepsCounting)
{
    const auto tokens = codeOf("a /* one\ntwo\nthree */ b");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[1].line, 3u);
}

TEST(AnalyzeLexer, BlockCommentsDoNotNest)
{
    // `/* /* */` closes at the first `*/`; `x` is code again.
    const auto tokens = codeOf("/* /* */ x");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].text, "x");
}

TEST(AnalyzeLexer, UnterminatedBlockCommentConsumesTheRest)
{
    const auto tokens = codeOf("a /* no close\nb c d");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].text, "a");
}

TEST(AnalyzeLexer, StringBodiesAreLiteralsNotCode)
{
    const auto tokens = codeOf("s = \"std::rand()\";");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::String);
    EXPECT_EQ(tokens[2].text, "std::rand()");
}

TEST(AnalyzeLexer, EscapedQuoteDoesNotEndTheString)
{
    const auto tokens = codeOf(R"(s = "a\"b";)");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::String);
    EXPECT_EQ(tokens[2].text, "a\\\"b");
}

TEST(AnalyzeLexer, DigitSeparatorStaysInsideTheNumber)
{
    const auto tokens = codeOf("n = 1'000'000;");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::Number);
    EXPECT_EQ(tokens[2].text, "1'000'000");
}

TEST(AnalyzeLexer, ExponentSignsStayInsideTheNumber)
{
    const auto tokens = codeOf("x = 1.5e-3;");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::Number);
    EXPECT_EQ(tokens[2].text, "1.5e-3");
}

TEST(AnalyzeLexer, CharLiteralIsItsOwnKind)
{
    const auto tokens = codeOf("c = 'x';");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::CharLiteral);
    EXPECT_EQ(tokens[2].text, "x");
}

TEST(AnalyzeLexer, RawStringBodyIsOpaqueWithCustomDelimiter)
{
    // Contains a plain `)"` that must NOT terminate it, plus code-like
    // text that must never become identifiers.
    const auto tokens = codeOf("s = R\"tag(x )\" float )tag\";");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::RawString);
    EXPECT_EQ(tokens[2].text, "x )\" float ");
}

TEST(AnalyzeLexer, PrefixedRawStringIsRecognized)
{
    const auto tokens = codeOf("s = u8R\"(body)\";");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[2].kind, TokenKind::RawString);
    EXPECT_EQ(tokens[2].text, "body");
}

TEST(AnalyzeLexer, LineContinuationJoinsAnIdentifier)
{
    const auto tokens = codeOf("flo\\\nat x;");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "float");
    EXPECT_EQ(tokens[0].line, 1u);
    // The next token is on the physical line after the splice.
    EXPECT_EQ(tokens[1].line, 2u);
}

TEST(AnalyzeLexer, LineContinuationExtendsALineComment)
{
    const auto tokens = lex("// note \\\nstill comment\ncode;");
    ASSERT_GE(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Comment);
    EXPECT_NE(tokens[0].text.find("still comment"),
              std::string::npos);
    EXPECT_EQ(tokens[1].text, "code");
    EXPECT_EQ(tokens[1].line, 3u);
}

TEST(AnalyzeLexer, PreprocessorTokensAreMarked)
{
    const auto tokens = codeOf("#define FOO 1\nint x;");
    ASSERT_GE(tokens.size(), 6u);
    EXPECT_TRUE(tokens[0].preprocessor); // '#'
    EXPECT_TRUE(tokens[1].preprocessor); // 'define'
    EXPECT_TRUE(tokens[2].preprocessor); // 'FOO'
    EXPECT_TRUE(tokens[3].preprocessor); // '1'
    EXPECT_FALSE(tokens[4].preprocessor); // 'int'
}

TEST(AnalyzeLexer, AngleIncludeOperandIsAHeaderName)
{
    const auto tokens = codeOf("#include <vector>\n");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[2].kind, TokenKind::HeaderName);
    EXPECT_EQ(tokens[2].text, "<vector>");
    EXPECT_TRUE(tokens[2].preprocessor);
}

TEST(AnalyzeLexer, QuotedIncludeOperandIsAHeaderName)
{
    const auto tokens = codeOf("#include \"util/rng.h\"\n");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[2].kind, TokenKind::HeaderName);
    EXPECT_EQ(tokens[2].text, "\"util/rng.h\"");
}

TEST(AnalyzeLexer, AnglesOutsideIncludeAreComparisons)
{
    const auto tokens = codeOf("#if A < B\n#endif\n");
    for (const Token &token : tokens)
        EXPECT_NE(token.kind, TokenKind::HeaderName)
            << "token '" << token.text << "'";
}

TEST(AnalyzeLexer, MaximalMunchOnCompoundOperators)
{
    const auto spellings = spellingsOf(codeOf("a <<= b += c->*d;"));
    const std::vector<std::string> expected = {
        "a", "<<=", "b", "+=", "c", "->*", "d", ";"};
    EXPECT_EQ(spellings, expected);
}

TEST(AnalyzeLexer, LineCountIgnoresASingleTrailingNewline)
{
    EXPECT_EQ(lineCount(""), 1u);
    EXPECT_EQ(lineCount("a"), 1u);
    EXPECT_EQ(lineCount("a\n"), 1u);
    EXPECT_EQ(lineCount("a\nb"), 2u);
    EXPECT_EQ(lineCount("a\nb\n"), 2u);
}

TEST(AnalyzeLexer, UnterminatedStringResyncsAtNewline)
{
    const auto tokens = codeOf("s = \"oops\nnext;");
    // `next` must come back as a real identifier on line 2.
    bool found = false;
    for (const Token &token : tokens)
        if (token.kind == TokenKind::Identifier &&
            token.text == "next") {
            found = true;
            EXPECT_EQ(token.line, 2u);
        }
    EXPECT_TRUE(found);
}

} // namespace
