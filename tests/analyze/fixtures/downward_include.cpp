// Clean control for the layering rule: core (layer 6) may include
// util (layer 0).
#include "util/rng.h"

int
helper()
{
    return 1;
}
