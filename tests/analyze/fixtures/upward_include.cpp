// Deliberate layering violation: this file is analyzed as if it were
// a src/util/ TU, and util (layer 0) may not include core (layer 6).
#include "core/ranking.h"

int
helper()
{
    return 1;
}
