/**
 * @file
 * Tests for the dtrank_analyze rule engine: the determinism-contract
 * rules (no-fp-accumulate, no-unordered-iteration,
 * no-unguarded-static), suppression in both spellings, the ported
 * legacy rules staying token-accurate (no firing inside comments,
 * strings or raw strings), output formats and the baseline mechanism.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/lint/lint.h"

namespace
{

using dtrank::analyze::analyzeContent;
using dtrank::analyze::Finding;
using dtrank::analyze::RuleSet;

std::vector<Finding>
ofRule(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<Finding> matching;
    for (const Finding &finding : findings)
        if (finding.rule == rule)
            matching.push_back(finding);
    return matching;
}

std::vector<Finding>
analyzeAll(const std::string &path, const std::string &content)
{
    return analyzeContent(path, content, RuleSet::All);
}

// ---------------------------------------------------------- fp-accumulate

TEST(AnalyzeRules, FpAccumulateFiresInsideABracedLoop)
{
    const auto findings = analyzeAll("src/core/x.cpp",
                                     "double f(int n) {\n"
                                     "  double acc = 0.0;\n"
                                     "  for (int i = 0; i < n; ++i) {\n"
                                     "    acc += 1.0;\n"
                                     "  }\n"
                                     "  return acc;\n"
                                     "}\n");
    const auto hits = ofRule(findings, "no-fp-accumulate");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 4u);
}

TEST(AnalyzeRules, FpAccumulateFiresInASingleStatementBody)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "double f(int n) {\n"
        "  double acc = 0.0;\n"
        "  for (int i = 0; i < n; ++i) acc += 1.0;\n"
        "  return acc;\n"
        "}\n");
    ASSERT_EQ(ofRule(findings, "no-fp-accumulate").size(), 1u);
}

TEST(AnalyzeRules, FpAccumulateFiresInWhileAndDoLoops)
{
    const auto findings = analyzeAll("src/core/x.cpp",
                                     "double f() {\n"
                                     "  double a = 0.0, b = 0.0;\n"
                                     "  while (a < 3.0) { a += 1.0; }\n"
                                     "  do { b -= 1.0; } while (b > -3.0);\n"
                                     "  return a + b;\n"
                                     "}\n");
    EXPECT_EQ(ofRule(findings, "no-fp-accumulate").size(), 2u);
}

TEST(AnalyzeRules, FpAccumulateSilentOutsideLoops)
{
    const auto findings = analyzeAll("src/core/x.cpp",
                                     "double f(double x) {\n"
                                     "  double acc = 0.0;\n"
                                     "  acc += x;\n"
                                     "  return acc;\n"
                                     "}\n");
    EXPECT_TRUE(ofRule(findings, "no-fp-accumulate").empty());
}

TEST(AnalyzeRules, FpAccumulateSilentForElementwiseStores)
{
    // a[i] += ... is element-wise, not a reduction.
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "void f(double *a, int n) {\n"
        "  for (int i = 0; i < n; ++i) a[i] += 1.0;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-fp-accumulate").empty());
}

TEST(AnalyzeRules, FpAccumulateSilentForIntegerCounters)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "int f(int n) {\n"
        "  int count = 0;\n"
        "  for (int i = 0; i < n; ++i) count += 2;\n"
        "  return count;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-fp-accumulate").empty());
}

TEST(AnalyzeRules, FpAccumulateExemptsSimdAndNonSrc)
{
    const std::string loop = "double f(int n) {\n"
                             "  double acc = 0.0;\n"
                             "  for (int i = 0; i < n; ++i) acc += 1.0;\n"
                             "  return acc;\n"
                             "}\n";
    EXPECT_TRUE(
        ofRule(analyzeAll("src/simd/kernels_scalar.cpp", loop),
               "no-fp-accumulate")
            .empty());
    EXPECT_TRUE(ofRule(analyzeAll("tools/foo.cpp", loop),
                       "no-fp-accumulate")
                    .empty());
    EXPECT_TRUE(ofRule(analyzeAll("bench/bench_foo.cpp", loop),
                       "no-fp-accumulate")
                    .empty());
}

// ---------------------------------------------- unordered-iteration

TEST(AnalyzeRules, UnorderedRangeForFires)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include <unordered_map>\n"
        "int f(const std::unordered_map<int, int> &m) {\n"
        "  int s = 0;\n"
        "  for (const auto &kv : m) s += kv.second;\n"
        "  return s;\n"
        "}\n");
    const auto hits = ofRule(findings, "no-unordered-iteration");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 4u);
}

TEST(AnalyzeRules, UnorderedBeginFires)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include <unordered_set>\n"
        "int f(const std::unordered_set<int> &s) {\n"
        "  return *s.begin();\n"
        "}\n");
    ASSERT_EQ(ofRule(findings, "no-unordered-iteration").size(), 1u);
}

TEST(AnalyzeRules, UnorderedLookupsAreSilent)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include <unordered_map>\n"
        "int f(std::unordered_map<int, int> &m) {\n"
        "  m[1] = 2;\n"
        "  return m.at(1) + static_cast<int>(m.count(7));\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unordered-iteration").empty());
}

TEST(AnalyzeRules, OrderedMapIterationIsSilent)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include <map>\n"
        "int f(const std::map<int, int> &m) {\n"
        "  int s = 0;\n"
        "  for (const auto &kv : m) s += kv.second;\n"
        "  return s;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unordered-iteration").empty());
}

// ------------------------------------------------- unguarded-static

TEST(AnalyzeRules, UnguardedStaticFires)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include <vector>\n"
        "std::vector<int> &cache() {\n"
        "  static std::vector<int> entries;\n"
        "  return entries;\n"
        "}\n");
    const auto hits = ofRule(findings, "no-unguarded-static");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 3u);
}

TEST(AnalyzeRules, GuardedStaticsAreSilent)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include <atomic>\n"
        "int f() {\n"
        "  static const int k_table[] = {1, 2};\n"
        "  static constexpr double k_eps = 1e-9;\n"
        "  static thread_local int scratch = 0;\n"
        "  static std::atomic<int> hits{0};\n"
        "  return k_table[0] + scratch + hits.load() +\n"
        "         static_cast<int>(k_eps);\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unguarded-static").empty());
}

TEST(AnalyzeRules, MutexGuardedStaticIsSilent)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include \"util/mutex.h\"\n"
        "int f() {\n"
        "  static util::Mutex mu;\n"
        "  static int shared DTRANK_GUARDED_BY(mu) = 0;\n"
        "  return shared;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unguarded-static").empty());
}

TEST(AnalyzeRules, StaticFunctionDeclarationsAreSilent)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "static int helper(int x) { return x + 1; }\n"
        "static int forward(int x);\n");
    EXPECT_TRUE(ofRule(findings, "no-unguarded-static").empty());
}

TEST(AnalyzeRules, FileScopeGlobalWithoutStaticFires)
{
    const auto findings = analyzeAll("src/core/x.cpp",
                                     "namespace dtrank {\n"
                                     "namespace {\n"
                                     "int g_counter = 0;\n"
                                     "}\n"
                                     "}\n");
    const auto hits = ofRule(findings, "no-unguarded-static");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 3u);
}

TEST(AnalyzeRules, NamespaceScopeFunctionsAndTypesAreSilent)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "namespace dtrank {\n"
        "struct Point { int x; int y; };\n"
        "int add(int a, int b) { return a + b; }\n"
        "const int k_limit = 8;\n"
        "constexpr double k_eps = 1e-9;\n"
        "using Row = Point;\n"
        "namespace fs = Row_is_not_a_namespace_but_parses;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unguarded-static").empty());
}

TEST(AnalyzeRules, LocalVariablesInFunctionBodiesAreSilent)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "int work(int n) {\n"
        "  int total = 0;\n"
        "  std::vector<int> scratch;\n"
        "  return total + static_cast<int>(scratch.size()) + n;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unguarded-static").empty());
}

// ----------------------------------------------------- suppression

TEST(AnalyzeRules, AnalyzeIgnoreSuppressesOnTheLine)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "int &cache() {\n"
        "  // dtrank-analyze-ignore(no-unguarded-static): registry\n"
        "  static int entry = 0;\n"
        "  return entry;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unguarded-static").empty());
}

TEST(AnalyzeRules, LegacyIgnoreSpellingSuppressesNewRules)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "int &cache() {\n"
        "  static int entry = 0; // dtrank-lint-ignore\n"
        "  return entry;\n"
        "}\n");
    EXPECT_TRUE(ofRule(findings, "no-unguarded-static").empty());
}

TEST(AnalyzeRules, SuppressionForAnotherRuleDoesNotApply)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "int &cache() {\n"
        "  static int entry = 0; // dtrank-analyze-ignore(layering)\n"
        "  return entry;\n"
        "}\n");
    EXPECT_EQ(ofRule(findings, "no-unguarded-static").size(), 1u);
}

// ------------------------------------- token accuracy (regressions)

TEST(AnalyzeRules, RulesDoNotFireInCommentsOrStrings)
{
    const auto findings = analyzeAll(
        "src/linalg/x.cpp",
        "// float in a comment, acc += 1.0 too\n"
        "/* static int g_bad; std::rand(); */\n"
        "const char *s = \"float static steady_clock\";\n");
    EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeRules, RulesDoNotFireInRawStrings)
{
    // The old regex linter had no raw-string support at all; the
    // token engine must treat the body as opaque text.
    const auto findings = analyzeAll(
        "src/linalg/x.cpp",
        "const char *s = R\"(float x; static int g; rand();)\";\n");
    EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeRules, LineContinuationCannotHideAViolation)
{
    // `flo\<newline>at` is the token `float`: invisible to a
    // line-based regex, caught by the lexer.
    const auto findings = analyzeContent("src/linalg/x.cpp",
                                         "flo\\\nat x = 0.f;\n",
                                         RuleSet::Legacy);
    ASSERT_EQ(ofRule(findings, "no-float-kernel").size(), 1u);
}

TEST(AnalyzeRules, LegacyRulesStillFireOnRealCode)
{
    const auto findings = analyzeAll(
        "src/core/x.cpp",
        "#include <mutex>\n"
        "std::mutex g_mu; // dtrank-analyze-ignore(no-unguarded-static)\n"
        "int seed = static_cast<int>(time(nullptr));\n");
    EXPECT_EQ(ofRule(findings, "no-std-mutex").size(), 1u);
    EXPECT_EQ(ofRule(findings, "no-raw-rand").size(), 1u);
}

// --------------------------------------------- catalogs and outputs

TEST(AnalyzeRules, LegacyRuleCatalogMatchesTheOldLinter)
{
    const std::vector<std::string> expected = {
        "no-raw-rand",  "no-cout-in-src",    "no-float-kernel",
        "no-naked-new", "no-std-mutex",      "no-raw-intrinsics",
        "no-raw-clock", "pragma-once",
    };
    EXPECT_EQ(dtrank::analyze::ruleIds(RuleSet::Legacy), expected);
    EXPECT_EQ(dtrank::lint::ruleIds(), expected);
}

TEST(AnalyzeRules, FullCatalogAddsTheCrossFileAndContractRules)
{
    const auto ids = dtrank::analyze::ruleIds(RuleSet::All);
    for (const std::string rule :
         {"layering", "include-cycle", "unused-include",
          "no-fp-accumulate", "no-unordered-iteration",
          "no-unguarded-static"})
        EXPECT_NE(std::find(ids.begin(), ids.end(), rule), ids.end())
            << rule;
}

TEST(AnalyzeRules, ShimProducesIdenticalFindingsToTheEngine)
{
    const std::string content =
        "unsigned a = rand();\nfloat x = 1.f;\n";
    const auto lint = dtrank::lint::lintContent("src/ml/x.cpp", content);
    const auto engine =
        analyzeContent("src/ml/x.cpp", content, RuleSet::Legacy);
    ASSERT_EQ(lint.size(), engine.size());
    for (std::size_t i = 0; i < lint.size(); ++i) {
        EXPECT_EQ(lint[i].rule, engine[i].rule);
        EXPECT_EQ(lint[i].line, engine[i].line);
        EXPECT_EQ(lint[i].message, engine[i].message);
    }
}

TEST(AnalyzeRules, JsonOutputEscapesAndCounts)
{
    const std::vector<Finding> findings = {
        {"layering", "src/a\"b.cpp", 3, "line1\nline2"}};
    const std::string json = dtrank::analyze::toJson(findings);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    EXPECT_NE(json.find("src/a\\\"b.cpp"), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(AnalyzeRules, SarifOutputCarriesRuleFileAndLine)
{
    const std::vector<Finding> findings = {
        {"no-fp-accumulate", "src/ml/mlp.cpp", 42, "msg"}};
    const std::string sarif = dtrank::analyze::toSarif(findings);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"no-fp-accumulate\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"src/ml/mlp.cpp\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 42"), std::string::npos);
    EXPECT_NE(sarif.find("dtrank_analyze"), std::string::npos);
}

TEST(AnalyzeRules, EmptyOutputsAreStillWellFormed)
{
    EXPECT_NE(dtrank::analyze::toJson({}).find("\"count\": 0"),
              std::string::npos);
    EXPECT_NE(dtrank::analyze::toSarif({}).find("\"results\": []"),
              std::string::npos);
}

TEST(AnalyzeRules, BaselineRoundTripFiltersTrackedFindings)
{
    const std::vector<Finding> findings = {
        {"no-fp-accumulate", "src/ml/mlp.cpp", 384, "msg"},
        {"no-unguarded-static", "src/obs/trace.cpp", 48, "msg"}};
    const std::string rendered =
        dtrank::analyze::renderBaseline(findings);
    const auto keys = dtrank::analyze::parseBaseline(rendered);
    EXPECT_EQ(keys.size(), 2u);
    EXPECT_TRUE(
        dtrank::analyze::filterBaselined(findings, keys).empty());
}

TEST(AnalyzeRules, BaselineFiltersOnlyExactKeys)
{
    const std::vector<Finding> tracked = {
        {"no-fp-accumulate", "src/ml/mlp.cpp", 384, "msg"}};
    const auto keys = dtrank::analyze::parseBaseline(
        "# comment\nno-fp-accumulate src/ml/mlp.cpp:384\n");
    EXPECT_TRUE(
        dtrank::analyze::filterBaselined(tracked, keys).empty());

    // A different line on the same file is a new finding.
    const std::vector<Finding> moved = {
        {"no-fp-accumulate", "src/ml/mlp.cpp", 385, "msg"}};
    EXPECT_EQ(dtrank::analyze::filterBaselined(moved, keys).size(),
              1u);
}

TEST(AnalyzeRules, FormatFindingIsEditorParsable)
{
    EXPECT_EQ(dtrank::analyze::formatFinding(
                  {"layering", "src/util/x.cpp", 7, "msg"}),
              "src/util/x.cpp:7: [layering] msg");
}

} // namespace
