/**
 * @file
 * Tests for include-graph extraction and the cross-file rules: module
 * layering (the module DAG), module cycles, file-level include
 * cycles, and unused direct includes — all on synthetic source sets,
 * plus the checked-in upward-include fixture that proves the layering
 * rule rejects a real injected violation.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/include_graph.h"

namespace
{

using dtrank::analyze::Finding;
using dtrank::analyze::includeEdges;
using dtrank::analyze::includeGraphFindings;
using dtrank::analyze::moduleLayer;
using dtrank::analyze::moduleOf;
using dtrank::analyze::SourceFile;

std::vector<Finding>
ofRule(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<Finding> matching;
    for (const Finding &finding : findings)
        if (finding.rule == rule)
            matching.push_back(finding);
    return matching;
}

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(DTRANK_ANALYZE_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(IncludeGraph, ModuleOfMapsSrcAndApplicationPaths)
{
    EXPECT_EQ(moduleOf("src/util/rng.h"), "util");
    EXPECT_EQ(moduleOf("src/linalg/matrix.cpp"), "linalg");
    EXPECT_EQ(moduleOf("tools/analyze/analyze.cpp"), "tools");
    EXPECT_EQ(moduleOf("bench/bench_scale.cpp"), "bench");
    EXPECT_EQ(moduleOf("tests/core/test_ranking.cpp"), "tests");
    EXPECT_EQ(moduleOf("examples/quickstart.cpp"), "examples");
}

TEST(IncludeGraph, ModuleOfRejectsUnknownPaths)
{
    EXPECT_EQ(moduleOf("README.md"), "");
    EXPECT_EQ(moduleOf("src/nonexistent/x.h"), "");
    EXPECT_EQ(moduleOf("src"), "");
}

TEST(IncludeGraph, LayerOrderMatchesTheModuleDag)
{
    EXPECT_EQ(moduleLayer("util"), 0);
    EXPECT_LT(moduleLayer("util"), moduleLayer("obs"));
    EXPECT_LT(moduleLayer("obs"), moduleLayer("simd"));
    EXPECT_LT(moduleLayer("simd"), moduleLayer("linalg"));
    EXPECT_LT(moduleLayer("linalg"), moduleLayer("stats"));
    EXPECT_LT(moduleLayer("stats"), moduleLayer("ml"));
    EXPECT_EQ(moduleLayer("ml"), moduleLayer("dataset"));
    EXPECT_LT(moduleLayer("ml"), moduleLayer("baseline"));
    EXPECT_EQ(moduleLayer("baseline"), moduleLayer("core"));
    EXPECT_LT(moduleLayer("core"), moduleLayer("experiments"));
    EXPECT_LT(moduleLayer("experiments"), moduleLayer("serve"));
    EXPECT_LT(moduleLayer("serve"), moduleLayer("tools"));
    EXPECT_EQ(moduleLayer("nonexistent"), -1);
}

TEST(IncludeGraph, EdgesExtractQuotedIncludesOnly)
{
    const SourceFile file{"src/core/x.cpp",
                          "#include <vector>\n"
                          "#include \"util/rng.h\"\n"
                          "#include \"core/ranking.h\"\n"};
    const auto edges = includeEdges(file);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0].target, "src/util/rng.h");
    EXPECT_EQ(edges[0].line, 2u);
    EXPECT_EQ(edges[1].target, "src/core/ranking.h");
    EXPECT_EQ(edges[1].line, 3u);
}

TEST(IncludeGraph, EdgesKeepExplicitTopDirPaths)
{
    const SourceFile file{"tests/lint/test_x.cpp",
                          "#include \"tools/analyze/analyze.h\"\n"};
    const auto edges = includeEdges(file);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].target, "tools/analyze/analyze.h");
}

TEST(IncludeGraph, UpwardIncludeIsALayeringFinding)
{
    const auto findings = includeGraphFindings(
        {{"src/util/helper.cpp", "#include \"core/ranking.h\"\n"}});
    const auto layering = ofRule(findings, "layering");
    ASSERT_EQ(layering.size(), 1u);
    EXPECT_EQ(layering[0].file, "src/util/helper.cpp");
    EXPECT_EQ(layering[0].line, 1u);
    EXPECT_NE(layering[0].message.find("util"), std::string::npos);
    EXPECT_NE(layering[0].message.find("core"), std::string::npos);
}

TEST(IncludeGraph, InjectedUpwardIncludeFixtureIsRejected)
{
    // The acceptance fixture: a file that would sit in util/ and
    // reach up to core/ must be rejected by the layering rule.
    const auto bad = includeGraphFindings(
        {{"src/util/bad_helper.cpp",
          readFixture("upward_include.cpp")}});
    ASSERT_EQ(ofRule(bad, "layering").size(), 1u);
    EXPECT_EQ(ofRule(bad, "layering")[0].line, 3u);

    const auto good = includeGraphFindings(
        {{"src/core/good_helper.cpp",
          readFixture("downward_include.cpp")}});
    EXPECT_TRUE(ofRule(good, "layering").empty());
}

TEST(IncludeGraph, DownwardAndSameModuleIncludesAreClean)
{
    const auto findings = includeGraphFindings(
        {{"src/core/x.cpp", "#include \"util/rng.h\"\n"
                            "#include \"core/ranking.h\"\n"
                            "#include \"linalg/matrix.h\"\n"}});
    EXPECT_TRUE(ofRule(findings, "layering").empty());
}

TEST(IncludeGraph, ApplicationsMayIncludeEverything)
{
    const auto findings = includeGraphFindings(
        {{"tools/cli.cpp", "#include \"experiments/harness.h\"\n"
                           "#include \"util/rng.h\"\n"},
         {"bench/bench_x.cpp", "#include \"core/ranking.h\"\n"}});
    EXPECT_TRUE(ofRule(findings, "layering").empty());
}

TEST(IncludeGraph, SameLayerSingleDirectionIsClean)
{
    const auto findings = includeGraphFindings(
        {{"src/dataset/spec.cpp", "#include \"ml/knn.h\"\n"}});
    EXPECT_TRUE(ofRule(findings, "layering").empty());
}

TEST(IncludeGraph, SameLayerMutualIncludesAreAModuleCycle)
{
    const auto findings = includeGraphFindings(
        {{"src/dataset/spec.cpp", "#include \"ml/knn.h\"\n"},
         {"src/ml/knn.cpp", "#include \"dataset/spec.h\"\n"}});
    const auto layering = ofRule(findings, "layering");
    ASSERT_EQ(layering.size(), 2u); // one finding per direction
    for (const Finding &finding : layering)
        EXPECT_NE(finding.message.find("module cycle"),
                  std::string::npos);
}

TEST(IncludeGraph, FileCycleIsReportedOnce)
{
    const auto findings = includeGraphFindings(
        {{"src/util/a.h", "#pragma once\n#include \"util/b.h\"\n"},
         {"src/util/b.h", "#pragma once\n#include \"util/a.h\"\n"}});
    const auto cycles = ofRule(findings, "include-cycle");
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_NE(cycles[0].message.find("src/util/a.h"),
              std::string::npos);
    EXPECT_NE(cycles[0].message.find("src/util/b.h"),
              std::string::npos);
}

TEST(IncludeGraph, SelfIncludeIsACycle)
{
    const auto findings = includeGraphFindings(
        {{"src/util/a.h", "#pragma once\n#include \"util/a.h\"\n"}});
    EXPECT_EQ(ofRule(findings, "include-cycle").size(), 1u);
}

TEST(IncludeGraph, AcyclicChainHasNoCycleFindings)
{
    const auto findings = includeGraphFindings(
        {{"src/util/a.h", "#pragma once\n#include \"util/b.h\"\n"},
         {"src/util/b.h", "#pragma once\n#include \"util/c.h\"\n"},
         {"src/util/c.h", "#pragma once\nstruct C {};\n"}});
    EXPECT_TRUE(ofRule(findings, "include-cycle").empty());
}

TEST(IncludeGraph, UnusedIncludeFiresWhenNothingIsReferenced)
{
    const auto findings = includeGraphFindings(
        {{"src/util/user.cpp", "#include \"util/dep.h\"\n"
                               "int work() { return 2; }\n"},
         {"src/util/dep.h",
          "#pragma once\nclass Dep {};\nvoid depHelper();\n"}});
    const auto unused = ofRule(findings, "unused-include");
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0].file, "src/util/user.cpp");
    EXPECT_EQ(unused[0].line, 1u);
}

TEST(IncludeGraph, UsedIncludeIsSilent)
{
    const auto findings = includeGraphFindings(
        {{"src/util/user.cpp", "#include \"util/dep.h\"\n"
                               "int work() { Dep d; return 2; }\n"},
         {"src/util/dep.h", "#pragma once\nclass Dep {};\n"}});
    EXPECT_TRUE(ofRule(findings, "unused-include").empty());
}

TEST(IncludeGraph, MacroUseCountsAsUse)
{
    const auto findings = includeGraphFindings(
        {{"src/util/user.cpp", "#include \"util/dep.h\"\n"
                               "int work() { return DEP_LIMIT; }\n"},
         {"src/util/dep.h", "#pragma once\n#define DEP_LIMIT 7\n"}});
    EXPECT_TRUE(ofRule(findings, "unused-include").empty());
}

TEST(IncludeGraph, OwnHeaderIsNeverUnused)
{
    const auto findings = includeGraphFindings(
        {{"src/util/dep.cpp", "#include \"util/dep.h\"\n"
                              "int other() { return 3; }\n"},
         {"src/util/dep.h", "#pragma once\nclass Dep {};\n"}});
    EXPECT_TRUE(ofRule(findings, "unused-include").empty());
}

TEST(IncludeGraph, HeaderOutsideTheSetGetsNoUnusedVerdict)
{
    const auto findings = includeGraphFindings(
        {{"src/util/user.cpp", "#include \"util/unseen.h\"\n"
                               "int work() { return 2; }\n"}});
    EXPECT_TRUE(ofRule(findings, "unused-include").empty());
}

TEST(IncludeGraph, UmbrellaHeaderWithNoDeclarationsGetsNoVerdict)
{
    const auto findings = includeGraphFindings(
        {{"src/util/user.cpp", "#include \"util/umbrella.h\"\n"
                               "int work() { return 2; }\n"},
         {"src/util/umbrella.h",
          "#pragma once\n#include \"util/other.h\"\n"}});
    EXPECT_TRUE(ofRule(findings, "unused-include").empty());
}

} // namespace
