/**
 * @file
 * Unit tests for the binary columnar database format: bit-identical
 * round trips (scores are raw IEEE bits), metadata fidelity, zero-copy
 * column access, and rejection of truncated, corrupted or foreign
 * files.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/columnar_io.h"
#include "dataset/scaled_spec.h"
#include "dataset/synthetic_spec.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using namespace dtrank::dataset;

std::string
tempPath(const std::string &stem)
{
    return ::testing::TempDir() + stem;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool
scoresBitEqual(const PerfDatabase &a, const PerfDatabase &b)
{
    const auto &da = a.scores().data();
    const auto &db = b.scores().data();
    return da.size() == db.size() &&
           std::memcmp(da.data(), db.data(),
                       da.size() * sizeof(double)) == 0;
}

TEST(ColumnarIo, PaperDatabaseRoundTripsBitIdentically)
{
    const std::string path = tempPath("dtrank_paper.dtc");
    const PerfDatabase db = makePaperDataset(2011);
    saveColumnar(db, path);
    const PerfDatabase loaded = loadColumnar(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.benchmarkCount(), db.benchmarkCount());
    ASSERT_EQ(loaded.machineCount(), db.machineCount());
    EXPECT_TRUE(scoresBitEqual(db, loaded));
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b) {
        EXPECT_EQ(loaded.benchmark(b).name, db.benchmark(b).name);
        EXPECT_EQ(loaded.benchmark(b).domain, db.benchmark(b).domain);
        EXPECT_EQ(loaded.benchmark(b).language,
                  db.benchmark(b).language);
        EXPECT_EQ(loaded.benchmark(b).area, db.benchmark(b).area);
    }
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        EXPECT_EQ(loaded.machine(m).name(), db.machine(m).name());
        EXPECT_EQ(loaded.machine(m).vendor, db.machine(m).vendor);
        EXPECT_EQ(loaded.machine(m).isa, db.machine(m).isa);
        EXPECT_EQ(loaded.machine(m).releaseYear,
                  db.machine(m).releaseYear);
        EXPECT_EQ(loaded.machine(m).variant, db.machine(m).variant);
    }
}

TEST(ColumnarIo, ScaledDatabaseRoundTripsBitIdentically)
{
    const std::string path = tempPath("dtrank_scaled.dtc");
    const PerfDatabase db = makeScaledDataset(1000, 29, 7);
    saveColumnar(db, path);
    const PerfDatabase loaded = loadColumnar(path);
    std::remove(path.c_str());
    EXPECT_TRUE(scoresBitEqual(db, loaded));
}

TEST(ColumnarIo, ZeroCopyColumnsMatchTheSource)
{
    const std::string path = tempPath("dtrank_columns.dtc");
    const PerfDatabase db = makeScaledDataset(200, 29, 3);
    saveColumnar(db, path);
    const auto columnar = ColumnarDatabase::open(path);
    std::remove(path.c_str());

    ASSERT_EQ(columnar.machineCount(), db.machineCount());
    ASSERT_EQ(columnar.benchmarkCount(), db.benchmarkCount());
    for (std::size_t m = 0; m < db.machineCount(); m += 17) {
        const double *page = columnar.machineColumn(m);
        for (std::size_t b = 0; b < db.benchmarkCount(); ++b) {
            EXPECT_EQ(page[b], db.score(b, m));
            EXPECT_EQ(columnar.score(b, m), db.score(b, m));
        }
    }
}

TEST(ColumnarIo, IsColumnarFileDetectsTheMagic)
{
    const std::string dtc = tempPath("dtrank_magic.dtc");
    const std::string csv = tempPath("dtrank_magic.csv");
    const PerfDatabase db = makePaperDataset(2011);
    saveColumnar(db, dtc);
    db.saveCsv(csv);
    EXPECT_TRUE(isColumnarFile(dtc));
    EXPECT_FALSE(isColumnarFile(csv));
    EXPECT_FALSE(isColumnarFile(tempPath("dtrank_missing.dtc")));

    // loadDatabaseAuto dispatches on content, not extension.
    const PerfDatabase from_dtc = loadDatabaseAuto(dtc);
    const PerfDatabase from_csv = loadDatabaseAuto(csv);
    EXPECT_TRUE(scoresBitEqual(db, from_dtc));
    EXPECT_EQ(from_csv.machineCount(), db.machineCount());
    std::remove(dtc.c_str());
    std::remove(csv.c_str());
}

TEST(ColumnarIo, RejectsTruncatedFiles)
{
    const std::string path = tempPath("dtrank_trunc.dtc");
    saveColumnar(makePaperDataset(2011), path);
    auto bytes = readAll(path);
    ASSERT_GT(bytes.size(), 256u);

    // Cut mid-scores, mid-metadata, and mid-header.
    for (const std::size_t keep :
         {bytes.size() - 64, bytes.size() / 2, std::size_t{32}}) {
        writeAll(path, std::vector<char>(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<long>(keep)));
        EXPECT_THROW(loadColumnar(path), util::IoError)
            << "truncation to " << keep << " bytes was accepted";
    }
    std::remove(path.c_str());
}

TEST(ColumnarIo, RejectsCorruptedScoreBytes)
{
    const std::string path = tempPath("dtrank_corrupt.dtc");
    saveColumnar(makePaperDataset(2011), path);
    auto bytes = readAll(path);
    bytes[bytes.size() - 5] ^= 0x40; // flip one payload bit
    writeAll(path, bytes);
    EXPECT_THROW(loadColumnar(path), util::IoError);
    std::remove(path.c_str());
}

TEST(ColumnarIo, RejectsCorruptedMetadata)
{
    const std::string path = tempPath("dtrank_meta.dtc");
    saveColumnar(makePaperDataset(2011), path);
    auto bytes = readAll(path);
    bytes[70] = static_cast<char>(bytes[70] + 1); // inside metadata
    writeAll(path, bytes);
    EXPECT_THROW(loadColumnar(path), util::IoError);
    std::remove(path.c_str());
}

TEST(ColumnarIo, RejectsForeignAndDamagedHeaders)
{
    const std::string path = tempPath("dtrank_foreign.dtc");
    writeAll(path, std::vector<char>(128, 'x'));
    EXPECT_THROW(loadColumnar(path), util::IoError);

    saveColumnar(makePaperDataset(2011), path);
    auto bytes = readAll(path);
    bytes[8] = 9; // unsupported version
    writeAll(path, bytes);
    EXPECT_THROW(loadColumnar(path), util::IoError);
    std::remove(path.c_str());

    EXPECT_THROW(loadColumnar(tempPath("dtrank_nonexistent.dtc")),
                 util::IoError);
}

} // namespace
