/**
 * @file
 * Unit tests for the scaled dataset generator: exact reproducibility
 * across thread counts and seeds, and preservation of the structural
 * invariants the methodology depends on (family count, outlier
 * fraction, score positivity) at 1k and 10k machines.
 */

#include <cstring>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "dataset/latent_model.h"
#include "dataset/scaled_spec.h"

namespace
{

using namespace dtrank;
using namespace dtrank::dataset;

constexpr std::size_t kMemBw =
    static_cast<std::size_t>(CapabilityDim::MemBandwidth);

/** Bitwise equality of two score matrices. */
bool
scoresBitEqual(const PerfDatabase &a, const PerfDatabase &b)
{
    const auto &da = a.scores().data();
    const auto &db = b.scores().data();
    return da.size() == db.size() &&
           std::memcmp(da.data(), db.data(),
                       da.size() * sizeof(double)) == 0;
}

PerfDatabase
generate(std::size_t machines, std::size_t benchmarks,
         std::uint64_t seed, std::size_t threads)
{
    ScaledSpecConfig config;
    config.machines = machines;
    config.benchmarks = benchmarks;
    config.seed = seed;
    config.threads = threads;
    return ScaledSpecGenerator(config).generate();
}

TEST(ScaledSpec, ThreadCountCannotChangeOutput)
{
    const auto serial = generate(1000, 29, 7, 1);
    const auto parallel = generate(1000, 29, 7, 4);
    ASSERT_EQ(serial.machineCount(), 1000u);
    EXPECT_TRUE(scoresBitEqual(serial, parallel));
    for (std::size_t m = 0; m < serial.machineCount(); ++m)
        ASSERT_EQ(serial.machine(m).name(), parallel.machine(m).name());
}

TEST(ScaledSpec, SameSeedReproducesDifferentSeedDoesNot)
{
    const auto first = generate(500, 29, 11, 0);
    const auto again = generate(500, 29, 11, 0);
    const auto other = generate(500, 29, 12, 0);
    EXPECT_TRUE(scoresBitEqual(first, again));
    EXPECT_FALSE(scoresBitEqual(first, other));
}

TEST(ScaledSpec, PaperSizeKeepsPaperShape)
{
    const auto db = makeScaledDataset(117, 29, 2011);
    EXPECT_EQ(db.machineCount(), 117u);
    EXPECT_EQ(db.benchmarkCount(), 29u);
    EXPECT_EQ(db.families().size(), 17u);
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b)
        for (std::size_t m = 0; m < db.machineCount(); ++m)
            ASSERT_GT(db.score(b, m), 0.0);
}

TEST(ScaledSpec, FamilyStructureMatchesNicknameProfilesAt1k)
{
    const std::size_t machines = 1000;
    const auto db = generate(machines, 29, 2011, 0);
    const std::size_t n_nick =
        (machines + kMachinesPerNickname - 1) / kMachinesPerNickname;
    const auto profiles = makeScaledNicknameProfiles(n_nick, 2011);

    std::set<std::string> expected;
    for (const auto &p : profiles)
        expected.insert(p.family);
    EXPECT_EQ(db.families().size(), expected.size());
    EXPECT_GT(db.families().size(), 17u);
}

TEST(ScaledSpec, FamilyStructureMatchesNicknameProfilesAt10k)
{
    const std::size_t machines = 10000;
    const auto db = generate(machines, 29, 2011, 0);
    EXPECT_EQ(db.machineCount(), machines);
    const std::size_t n_nick =
        (machines + kMachinesPerNickname - 1) / kMachinesPerNickname;
    const auto profiles = makeScaledNicknameProfiles(n_nick, 2011);
    std::set<std::string> expected;
    for (const auto &p : profiles)
        expected.insert(p.family);
    EXPECT_EQ(db.families().size(), expected.size());
    // Every generation multiplies the 17 base families.
    EXPECT_GE(db.families().size(), 17u * (n_nick / 39));
}

TEST(ScaledSpec, DerivedNicknamesInheritStreamingBoostAndYear)
{
    const auto profiles = makeScaledNicknameProfiles(78, 5);
    const auto &catalog = nicknameCatalog();
    ASSERT_EQ(catalog.size(), 39u);
    for (std::size_t i = 39; i < 78; ++i) {
        const auto &base = catalog[i % 39];
        EXPECT_EQ(profiles[i].streamingPlatformBoost,
                  base.streamingPlatformBoost);
        EXPECT_EQ(profiles[i].releaseYear, base.releaseYear);
        EXPECT_EQ(profiles[i].vendor, base.vendor);
        EXPECT_NE(profiles[i].family, base.family);
    }
}

TEST(ScaledSpec, OutlierFractionExactlyPreserved)
{
    const auto &catalog = benchmarkCatalog();
    std::size_t base_mem_cluster = 0;
    std::size_t base_boosted = 0;
    for (const auto &b : catalog) {
        if (b.demand[kMemBw] >= 0.30)
            ++base_mem_cluster;
        if (b.demand[kMemBw] >= 0.50)
            ++base_boosted;
    }
    ASSERT_GT(base_mem_cluster, 0u);

    const auto profiles = makeScaledBenchmarkProfiles(2 * 29, 2011);
    std::size_t mem_cluster = 0;
    std::size_t boosted = 0;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const auto &base = catalog[i % 29];
        // Bandwidth demand is copied bit-exactly, so both the MICA
        // memory-cluster cut (0.30) and the streaming-boost cut (0.50)
        // see the same fraction at any scale.
        EXPECT_EQ(profiles[i].demand[kMemBw], base.demand[kMemBw]);
        if (profiles[i].demand[kMemBw] >= 0.30)
            ++mem_cluster;
        if (profiles[i].demand[kMemBw] >= 0.50)
            ++boosted;
    }
    EXPECT_EQ(mem_cluster, 2 * base_mem_cluster);
    EXPECT_EQ(boosted, 2 * base_boosted);
}

TEST(ScaledSpec, DerivedBenchmarkDemandStaysNormalized)
{
    const auto profiles = makeScaledBenchmarkProfiles(3 * 29, 3);
    for (const auto &p : profiles) {
        double sum = 0.0;
        for (std::size_t d = 0; d < kCapabilityDims; ++d) {
            EXPECT_GE(p.demand[d], 0.0);
            sum += p.demand[d];
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(ScaledSpec, ConvenienceBuilderMatchesGenerator)
{
    const auto via_helper = makeScaledDataset(300, 29, 9);
    const auto via_generator = generate(300, 29, 9, 0);
    EXPECT_TRUE(scoresBitEqual(via_helper, via_generator));
}

} // namespace
