/**
 * @file
 * Unit tests for the PerfDatabase container.
 */

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "dataset/perf_database.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using dataset::BenchmarkDomain;
using dataset::BenchmarkInfo;
using dataset::MachineInfo;
using dataset::PerfDatabase;

PerfDatabase
makeSmallDb()
{
    std::vector<BenchmarkInfo> benchmarks = {
        {"alpha", BenchmarkDomain::Integer, "C", "Area A"},
        {"beta", BenchmarkDomain::FloatingPoint, "C++", "Area B"},
        {"gamma", BenchmarkDomain::Integer, "Fortran", "Area C"},
    };
    std::vector<MachineInfo> machines;
    MachineInfo m1{"VendorX", "FamX", "NickA", "isa1", 2007, 0};
    MachineInfo m2{"VendorX", "FamX", "NickA", "isa1", 2007, 1};
    MachineInfo m3{"VendorY", "FamY", "NickB", "isa2", 2009, 0};
    machines = {m1, m2, m3};
    linalg::Matrix scores{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    return PerfDatabase(std::move(benchmarks), std::move(machines),
                        std::move(scores));
}

TEST(PerfDatabase, BasicAccessors)
{
    const PerfDatabase db = makeSmallDb();
    EXPECT_EQ(db.benchmarkCount(), 3u);
    EXPECT_EQ(db.machineCount(), 3u);
    EXPECT_DOUBLE_EQ(db.score(1, 2), 6.0);
    EXPECT_EQ(db.benchmark(0).name, "alpha");
    EXPECT_EQ(db.machine(2).family, "FamY");
    EXPECT_THROW(db.benchmark(3), util::InvalidArgument);
    EXPECT_THROW(db.machine(3), util::InvalidArgument);
    EXPECT_THROW(db.score(3, 0), util::InvalidArgument);
}

TEST(PerfDatabase, MachineNameFormat)
{
    const PerfDatabase db = makeSmallDb();
    EXPECT_EQ(db.machine(0).name(), "FamX/NickA#0");
    EXPECT_EQ(db.machine(1).name(), "FamX/NickA#1");
}

TEST(PerfDatabase, RowColumnViews)
{
    const PerfDatabase db = makeSmallDb();
    EXPECT_EQ(db.benchmarkScores(1), (std::vector<double>{4, 5, 6}));
    EXPECT_EQ(db.machineScores(0), (std::vector<double>{1, 4, 7}));
    EXPECT_THROW(db.benchmarkScores(5), util::InvalidArgument);
    EXPECT_THROW(db.machineScores(5), util::InvalidArgument);
}

TEST(PerfDatabase, BenchmarkLookup)
{
    const PerfDatabase db = makeSmallDb();
    EXPECT_EQ(db.benchmarkIndex("beta"), 1u);
    EXPECT_TRUE(db.hasBenchmark("gamma"));
    EXPECT_FALSE(db.hasBenchmark("delta"));
    EXPECT_THROW(db.benchmarkIndex("delta"), util::InvalidArgument);
}

TEST(PerfDatabase, RejectsNonPositiveScores)
{
    std::vector<BenchmarkInfo> b = {
        {"x", BenchmarkDomain::Integer, "C", ""}};
    std::vector<MachineInfo> m = {{"v", "f", "n", "i", 2000, 0}};
    EXPECT_THROW(PerfDatabase(b, m, linalg::Matrix{{0.0}}),
                 util::InvalidArgument);
    EXPECT_THROW(PerfDatabase(b, m, linalg::Matrix{{-1.0}}),
                 util::InvalidArgument);
}

TEST(PerfDatabase, RejectsShapeMismatch)
{
    std::vector<BenchmarkInfo> b = {
        {"x", BenchmarkDomain::Integer, "C", ""}};
    std::vector<MachineInfo> m = {{"v", "f", "n", "i", 2000, 0}};
    EXPECT_THROW(PerfDatabase(b, m, linalg::Matrix(2, 1, 1.0)),
                 util::InvalidArgument);
    EXPECT_THROW(PerfDatabase(b, m, linalg::Matrix(1, 2, 1.0)),
                 util::InvalidArgument);
}

TEST(PerfDatabase, SelectMachinesKeepsOrder)
{
    const PerfDatabase db = makeSmallDb();
    const PerfDatabase sub = db.selectMachines({2, 0});
    EXPECT_EQ(sub.machineCount(), 2u);
    EXPECT_EQ(sub.machine(0).family, "FamY");
    EXPECT_EQ(sub.machine(1).family, "FamX");
    EXPECT_DOUBLE_EQ(sub.score(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(sub.score(0, 1), 1.0);
    EXPECT_THROW(db.selectMachines({9}), util::InvalidArgument);
}

TEST(PerfDatabase, SelectBenchmarksKeepsOrder)
{
    const PerfDatabase db = makeSmallDb();
    const PerfDatabase sub = db.selectBenchmarks({2, 1});
    EXPECT_EQ(sub.benchmarkCount(), 2u);
    EXPECT_EQ(sub.benchmark(0).name, "gamma");
    EXPECT_DOUBLE_EQ(sub.score(1, 0), 4.0);
    EXPECT_THROW(db.selectBenchmarks({9}), util::InvalidArgument);
}

TEST(PerfDatabase, MachineQueries)
{
    const PerfDatabase db = makeSmallDb();
    EXPECT_EQ(db.machineIndicesByFamily("FamX"),
              (std::vector<std::size_t>{0, 1}));
    EXPECT_TRUE(db.machineIndicesByFamily("nope").empty());
    EXPECT_EQ(db.machineIndicesByYear(2009),
              (std::vector<std::size_t>{2}));
    EXPECT_EQ(db.machineIndicesBeforeYear(2009),
              (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(db.machinesWhere([](const MachineInfo &m) {
                  return m.vendor == "VendorY";
              }),
              (std::vector<std::size_t>{2}));
}

TEST(PerfDatabase, FamiliesAndYearsSortedUnique)
{
    const PerfDatabase db = makeSmallDb();
    EXPECT_EQ(db.families(),
              (std::vector<std::string>{"FamX", "FamY"}));
    EXPECT_EQ(db.releaseYears(), (std::vector<int>{2007, 2009}));
}

TEST(PerfDatabase, GeometricMeans)
{
    const PerfDatabase db = makeSmallDb();
    const auto gm = db.machineGeometricMeans();
    ASSERT_EQ(gm.size(), 3u);
    EXPECT_NEAR(gm[0], std::cbrt(1.0 * 4.0 * 7.0), 1e-12);
}

TEST(PerfDatabase, CsvRoundTrip)
{
    const PerfDatabase db = makeSmallDb();
    const std::string path =
        ::testing::TempDir() + "dtrank_db_test.csv";
    db.saveCsv(path);
    const PerfDatabase loaded = PerfDatabase::loadCsv(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.benchmarkCount(), db.benchmarkCount());
    ASSERT_EQ(loaded.machineCount(), db.machineCount());
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b) {
        EXPECT_EQ(loaded.benchmark(b).name, db.benchmark(b).name);
        EXPECT_EQ(loaded.benchmark(b).domain, db.benchmark(b).domain);
        EXPECT_EQ(loaded.benchmark(b).language,
                  db.benchmark(b).language);
    }
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        EXPECT_EQ(loaded.machine(m).name(), db.machine(m).name());
        EXPECT_EQ(loaded.machine(m).releaseYear,
                  db.machine(m).releaseYear);
        EXPECT_EQ(loaded.machine(m).vendor, db.machine(m).vendor);
        EXPECT_EQ(loaded.machine(m).isa, db.machine(m).isa);
    }
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b)
        for (std::size_t m = 0; m < db.machineCount(); ++m)
            EXPECT_NEAR(loaded.score(b, m), db.score(b, m), 1e-6);
}

TEST(PerfDatabase, LoadMissingFileThrows)
{
    EXPECT_THROW(PerfDatabase::loadCsv("/nonexistent/nope.csv"),
                 util::IoError);
}

} // namespace
