/**
 * @file
 * Tests for the synthetic SPEC database generator, including the
 * structural properties the paper reproduction relies on.
 */

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "dataset/synthetic_spec.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using namespace dtrank::dataset;

TEST(SyntheticSpec, ProducesThePaperShapedDatabase)
{
    const PerfDatabase db = makePaperDataset();
    EXPECT_EQ(db.machineCount(), 117u);
    EXPECT_EQ(db.benchmarkCount(), 29u);
    EXPECT_EQ(db.families().size(), 17u);
}

TEST(SyntheticSpec, DeterministicForFixedSeed)
{
    const PerfDatabase a = makePaperDataset(123);
    const PerfDatabase b = makePaperDataset(123);
    EXPECT_TRUE(a.scores().approxEquals(b.scores(), 0.0));
}

TEST(SyntheticSpec, DifferentSeedsDiffer)
{
    const PerfDatabase a = makePaperDataset(1);
    const PerfDatabase b = makePaperDataset(2);
    EXPECT_FALSE(a.scores().approxEquals(b.scores(), 1e-6));
}

TEST(SyntheticSpec, AllScoresPositiveAndPlausible)
{
    const PerfDatabase db = makePaperDataset();
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b) {
        for (std::size_t m = 0; m < db.machineCount(); ++m) {
            const double s = db.score(b, m);
            EXPECT_GT(s, 0.5);
            EXPECT_LT(s, 500.0);
        }
    }
}

TEST(SyntheticSpec, ThreeMachinesPerNickname)
{
    const PerfDatabase db = makePaperDataset();
    std::map<std::string, int> counts;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        ++counts[db.machine(m).family + "/" + db.machine(m).nickname];
    for (const auto &[name, count] : counts)
        EXPECT_EQ(count, kMachinesPerNickname) << name;
}

TEST(SyntheticSpec, WithinNicknameMachinesAreHighlyCorrelated)
{
    const PerfDatabase db = makePaperDataset();
    // Machines 0..2 share a nickname; their benchmark columns must be
    // nearly collinear in log space.
    std::vector<double> a;
    std::vector<double> b;
    for (std::size_t i = 0; i < db.benchmarkCount(); ++i) {
        a.push_back(std::log2(db.score(i, 0)));
        b.push_back(std::log2(db.score(i, 1)));
    }
    EXPECT_GT(stats::pearson(a, b), 0.98);
}

TEST(SyntheticSpec, LibquantumPeaksOnGainestown)
{
    const PerfDatabase db = makePaperDataset();
    const std::size_t lq = db.benchmarkIndex("libquantum");
    const auto scores = db.benchmarkScores(lq);
    const std::size_t best = stats::argMax(scores);
    EXPECT_EQ(db.machine(best).nickname, "Gainestown");
}

TEST(SyntheticSpec, NamdAndHmmerPeakOnMontecito)
{
    const PerfDatabase db = makePaperDataset();
    for (const char *bench : {"namd", "hmmer"}) {
        const auto scores = db.benchmarkScores(db.benchmarkIndex(bench));
        const std::size_t best = stats::argMax(scores);
        EXPECT_EQ(db.machine(best).nickname, "Montecito") << bench;
    }
}

TEST(SyntheticSpec, NamdAndHmmerScoreBelowAverage)
{
    // Section 6.2: namd and hmmer have lower-than-average SPEC scores.
    const PerfDatabase db = makePaperDataset();
    std::vector<double> bench_means;
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b)
        bench_means.push_back(stats::mean(db.benchmarkScores(b)));
    const double suite_mean = stats::mean(bench_means);
    EXPECT_LT(bench_means[db.benchmarkIndex("namd")], suite_mean);
    EXPECT_LT(bench_means[db.benchmarkIndex("hmmer")], suite_mean);
}

TEST(SyntheticSpec, LibquantumScoresAboveAverage)
{
    // Section 6.2: libquantum/cactusADM are higher-than-average.
    const PerfDatabase db = makePaperDataset();
    std::vector<double> bench_means;
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b)
        bench_means.push_back(stats::mean(db.benchmarkScores(b)));
    const double suite_mean = stats::mean(bench_means);
    EXPECT_GT(bench_means[db.benchmarkIndex("libquantum")], suite_mean);
    EXPECT_GT(bench_means[db.benchmarkIndex("cactusADM")], suite_mean);
}

TEST(SyntheticSpec, NewerMachinesAreFasterOnAverage)
{
    const PerfDatabase db = makePaperDataset();
    const auto gm = db.machineGeometricMeans();
    stats::Summary old_machines;
    stats::Summary new_machines;
    for (std::size_t m = 0; m < db.machineCount(); ++m) {
        if (db.machine(m).releaseYear <= 2006)
            old_machines.add(gm[m]);
        else if (db.machine(m).releaseYear >= 2008)
            new_machines.add(gm[m]);
    }
    EXPECT_GT(new_machines.mean(), old_machines.mean());
}

TEST(SyntheticSpec, ConfigurableMachinesPerNickname)
{
    SyntheticSpecConfig config;
    config.machinesPerNickname = 2;
    const PerfDatabase db = SyntheticSpecGenerator(config).generate();
    EXPECT_EQ(db.machineCount(), 39u * 2u);
}

TEST(SyntheticSpec, NoiseKnobChangesSpread)
{
    SyntheticSpecConfig quiet;
    quiet.measurementNoiseSigma = 0.0;
    quiet.variantCapabilityJitter = 0.0;
    quiet.fpDomainBiasSigma = 0.0;
    SyntheticSpecConfig noisy = quiet;
    noisy.measurementNoiseSigma = 0.2;

    const PerfDatabase a = SyntheticSpecGenerator(quiet).generate();
    const PerfDatabase b = SyntheticSpecGenerator(noisy).generate();

    // Within-nickname spread of one benchmark must grow with noise.
    auto spread = [](const PerfDatabase &db) {
        double acc = 0.0;
        for (std::size_t m = 0; m + 2 < db.machineCount(); m += 3) {
            const double s0 = std::log2(db.score(0, m));
            const double s1 = std::log2(db.score(0, m + 1));
            const double s2 = std::log2(db.score(0, m + 2));
            acc += stats::stddevSample({s0, s1, s2});
        }
        return acc;
    };
    EXPECT_GT(spread(b), spread(a));
}

TEST(SyntheticSpec, ValidatesConfig)
{
    SyntheticSpecConfig config;
    config.measurementNoiseSigma = -0.1;
    EXPECT_THROW(SyntheticSpecGenerator{config}, util::InvalidArgument);

    config = SyntheticSpecConfig{};
    config.variantSpread = -1.0;
    EXPECT_THROW(SyntheticSpecGenerator{config}, util::InvalidArgument);

    config = SyntheticSpecConfig{};
    config.machinesPerNickname = 0;
    EXPECT_THROW(SyntheticSpecGenerator{config}, util::InvalidArgument);

    config = SyntheticSpecConfig{};
    config.variantMemSpread = -0.1;
    EXPECT_THROW(SyntheticSpecGenerator{config}, util::InvalidArgument);
}

TEST(SyntheticSpec, StreamingBoostLiftsStreamingCodesOnServerNehalem)
{
    SyntheticSpecConfig with;
    SyntheticSpecConfig without = with;
    without.streamingBoost = 0.0;
    const PerfDatabase a = SyntheticSpecGenerator(with).generate();
    const PerfDatabase b = SyntheticSpecGenerator(without).generate();

    const std::size_t lq = a.benchmarkIndex("libquantum");
    const auto gainestown = a.machineIndicesByFamily("Intel Xeon");
    double ratio_sum = 0.0;
    std::size_t count = 0;
    for (std::size_t m : gainestown) {
        if (a.machine(m).nickname != "Gainestown")
            continue;
        ratio_sum += a.score(lq, m) / b.score(lq, m);
        ++count;
    }
    ASSERT_GT(count, 0u);
    // The boosted database scores 2^boost higher on these machines.
    EXPECT_NEAR(ratio_sum / static_cast<double>(count),
                std::exp2(with.streamingBoost), 0.01);
}

} // namespace
