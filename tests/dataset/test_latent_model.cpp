/**
 * @file
 * Invariant tests for the latent-model catalogs that encode Table 1 of
 * the paper and the SPEC CPU2006 benchmark suite.
 */

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "dataset/latent_model.h"

namespace
{

using namespace dtrank;
using namespace dtrank::dataset;

TEST(NicknameCatalog, Has39NicknamesAcross17Families)
{
    const auto &catalog = nicknameCatalog();
    EXPECT_EQ(catalog.size(), 39u);
    std::set<std::string> families;
    for (const auto &n : catalog)
        families.insert(n.family);
    EXPECT_EQ(families.size(), 17u);
}

TEST(NicknameCatalog, YieldsThePapers117Machines)
{
    EXPECT_EQ(nicknameCatalog().size() * kMachinesPerNickname, 117u);
}

TEST(NicknameCatalog, NicknamesUniqueWithinFamily)
{
    std::set<std::pair<std::string, std::string>> seen;
    for (const auto &n : nicknameCatalog()) {
        const auto key = std::make_pair(n.family, n.nickname);
        EXPECT_TRUE(seen.insert(key).second)
            << n.family << "/" << n.nickname << " duplicated";
    }
}

TEST(NicknameCatalog, ContainsThePapersKeyMachines)
{
    std::map<std::string, const NicknameProfile *> by_nickname;
    for (const auto &n : nicknameCatalog())
        by_nickname[n.family + "/" + n.nickname] = &n;
    EXPECT_TRUE(by_nickname.count("Intel Xeon/Gainestown"));
    EXPECT_TRUE(by_nickname.count("Intel Itanium/Montecito"));
    EXPECT_TRUE(by_nickname.count("Intel Core i7/Bloomfield XE"));
    EXPECT_TRUE(by_nickname.count("AMD Opteron (K10)/Istanbul"));
    EXPECT_TRUE(by_nickname.count("SPARC64 VII/Jupiter"));
    EXPECT_TRUE(by_nickname.count("UltraSPARC III/Cheetah+"));
}

TEST(NicknameCatalog, ReleaseYearsSpanTheStudy)
{
    int min_year = 9999;
    int max_year = 0;
    std::size_t year2009 = 0;
    std::size_t year2008 = 0;
    for (const auto &n : nicknameCatalog()) {
        min_year = std::min(min_year, n.releaseYear);
        max_year = std::max(max_year, n.releaseYear);
        if (n.releaseYear == 2009)
            ++year2009;
        if (n.releaseYear == 2008)
            ++year2008;
    }
    EXPECT_LE(min_year, 2005);
    EXPECT_EQ(max_year, 2009);
    // The future-prediction and subset protocols need machines in both
    // years.
    EXPECT_GE(year2009, 3u);
    EXPECT_GE(year2008, 3u);
}

TEST(NicknameCatalog, GainestownHasTheBandwidthCrown)
{
    double gainestown_membw = 0.0;
    double best_other = 0.0;
    for (const auto &n : nicknameCatalog()) {
        const double membw = n.capability[static_cast<std::size_t>(
            CapabilityDim::MemBandwidth)];
        if (n.nickname == "Gainestown")
            gainestown_membw = membw;
        else
            best_other = std::max(best_other, membw);
    }
    EXPECT_GT(gainestown_membw, 0.0);
    EXPECT_GE(gainestown_membw, best_other);
}

TEST(NicknameCatalog, MontecitoHasTheCacheCrown)
{
    double montecito_cache = 0.0;
    double best_other = 0.0;
    for (const auto &n : nicknameCatalog()) {
        const double cache = n.capability[static_cast<std::size_t>(
            CapabilityDim::Cache)];
        if (n.nickname == "Montecito")
            montecito_cache = cache;
        else
            best_other = std::max(best_other, cache);
    }
    EXPECT_GT(montecito_cache, best_other);
}

TEST(NicknameCatalog, StreamingBoostOnlyOnServerNehalem)
{
    for (const auto &n : nicknameCatalog()) {
        const bool is_server_nehalem =
            n.family == "Intel Xeon" &&
            (n.nickname == "Gainestown" || n.nickname == "Bloomfield" ||
             n.nickname == "Lynnfield");
        EXPECT_EQ(n.streamingPlatformBoost, is_server_nehalem)
            << n.family << "/" << n.nickname;
    }
}

TEST(BenchmarkCatalog, HasThe29SpecCpu2006Benchmarks)
{
    const auto &catalog = benchmarkCatalog();
    EXPECT_EQ(catalog.size(), 29u);
    std::size_t ints = 0;
    std::size_t fps = 0;
    for (const auto &b : catalog) {
        if (b.info.domain == BenchmarkDomain::Integer)
            ++ints;
        else
            ++fps;
    }
    EXPECT_EQ(ints, 12u);
    EXPECT_EQ(fps, 17u);
}

TEST(BenchmarkCatalog, NamesAreUniqueAndIncludeTheOutliers)
{
    std::set<std::string> names;
    for (const auto &b : benchmarkCatalog())
        EXPECT_TRUE(names.insert(b.info.name).second);
    for (const char *outlier :
         {"libquantum", "leslie3d", "cactusADM", "namd", "hmmer"})
        EXPECT_TRUE(names.count(outlier)) << outlier;
}

TEST(BenchmarkCatalog, DemandsAreDistributions)
{
    for (const auto &b : benchmarkCatalog()) {
        double sum = 0.0;
        for (double w : b.demand) {
            EXPECT_GE(w, 0.0) << b.info.name;
            sum += w;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9) << b.info.name;
    }
}

TEST(BenchmarkCatalog, OutliersHaveTheDocumentedProfiles)
{
    const auto membw = static_cast<std::size_t>(
        CapabilityDim::MemBandwidth);
    const auto cache = static_cast<std::size_t>(CapabilityDim::Cache);
    for (const auto &b : benchmarkCatalog()) {
        if (b.info.name == "libquantum")
            EXPECT_GE(b.demand[membw], 0.6);
        if (b.info.name == "leslie3d" || b.info.name == "cactusADM")
            EXPECT_GE(b.demand[membw], 0.5);
        if (b.info.name == "namd" || b.info.name == "hmmer") {
            EXPECT_GE(b.demand[cache], 0.45);
            // Lower-than-average scale offset (Section 6.2).
            EXPECT_LT(b.offset, 2.0);
        }
    }
}

TEST(ExpectedLogScore, MatchesManualDotProduct)
{
    const auto &b = benchmarkCatalog().front();
    const auto &m = nicknameCatalog().front();
    double expected = b.offset;
    for (std::size_t d = 0; d < kCapabilityDims; ++d)
        expected += b.demand[d] * m.capability[d];
    EXPECT_DOUBLE_EQ(expectedLogScore(b, m), expected);
}

TEST(ExpectedLogScore, NamdPeaksOnMontecito)
{
    const BenchmarkProfile *namd = nullptr;
    for (const auto &b : benchmarkCatalog())
        if (b.info.name == "namd")
            namd = &b;
    ASSERT_NE(namd, nullptr);

    double montecito = 0.0;
    double best_other = -1e9;
    for (const auto &m : nicknameCatalog()) {
        const double s = expectedLogScore(*namd, m);
        if (m.nickname == "Montecito")
            montecito = s;
        else
            best_other = std::max(best_other, s);
    }
    EXPECT_GT(montecito, best_other);
}

TEST(CapabilityDimNames, AllDistinct)
{
    std::set<std::string> names;
    for (std::size_t d = 0; d < kCapabilityDims; ++d)
        EXPECT_TRUE(
            names.insert(capabilityDimName(static_cast<CapabilityDim>(d)))
                .second);
}

TEST(PaperOutliers, ListedBenchmarksExist)
{
    std::set<std::string> names;
    for (const auto &b : benchmarkCatalog())
        names.insert(b.info.name);
    for (const auto &outlier : paperOutlierBenchmarks())
        EXPECT_TRUE(names.count(outlier)) << outlier;
}

} // namespace
