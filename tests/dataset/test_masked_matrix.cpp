/**
 * @file
 * The ragged-score-matrix layer: ScoreMask invariants (dense sentinel,
 * deterministic sampling with all-missing repair, padding-bit hygiene),
 * masked PerfDatabase construction with NaN poisoning, the
 * applyMissingness / imputeObserved pair, and the .dtc v2 mask page —
 * bit-identical round trips for masked databases, byte-identical
 * version-1 files for dense ones, and rejection of corrupted or
 * inconsistent mask pages.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/columnar_io.h"
#include "dataset/masked_matrix.h"
#include "dataset/synthetic_spec.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using namespace dtrank::dataset;

std::string
tempPath(const std::string &stem)
{
    return ::testing::TempDir() + stem;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ScoreMask, DenseSentinelOwnsNoStorageAndAnswersValid)
{
    const ScoreMask mask;
    EXPECT_TRUE(mask.dense());
    EXPECT_TRUE(mask.words().empty());
    EXPECT_EQ(mask.rowWords(), 0u);
    EXPECT_TRUE(mask.valid(0, 0));
    EXPECT_TRUE(mask.valid(117, 29));
    // Selections of the sentinel stay the sentinel.
    EXPECT_TRUE(mask.selectRows({0, 1}).dense());
    EXPECT_TRUE(mask.selectColumns({3}).dense());
    EXPECT_TRUE(mask.selectRowsExcept(0).dense());
}

TEST(ScoreMask, MaterializedAllValidIsNotTheSentinel)
{
    const ScoreMask mask(4, 70, true);
    EXPECT_FALSE(mask.dense());
    EXPECT_EQ(mask.rowWords(), 2u);
    EXPECT_EQ(mask.observedCount(), 4u * 70u);
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_EQ(mask.observedInRow(r), 70u);
    // Padding bits of the last word stay zero.
    EXPECT_EQ(mask.words()[1] >> (70 % 64), 0u);
}

TEST(ScoreMask, SampleIsDeterministicAndRepairsEmptyLines)
{
    const ScoreMask a = ScoreMask::sample(29, 117, 0.3, 7);
    const ScoreMask b = ScoreMask::sample(29, 117, 0.3, 7);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, ScoreMask::sample(29, 117, 0.3, 8));

    const std::size_t observed = a.observedCount();
    const double density =
        static_cast<double>(observed) / (29.0 * 117.0);
    EXPECT_NEAR(density, 0.7, 0.05);
    EXPECT_NO_THROW(a.requireNoEmptyLines("test"));

    // Even an extreme fraction keeps every row and column observed.
    const ScoreMask extreme = ScoreMask::sample(10, 10, 0.95, 3);
    EXPECT_NO_THROW(extreme.requireNoEmptyLines("test"));
}

TEST(ScoreMask, RequireNoEmptyLinesNamesTheOffendingLine)
{
    ScoreMask mask(3, 4, true);
    for (std::size_t c = 0; c < 4; ++c)
        mask.set(1, c, false);
    try {
        mask.requireNoEmptyLines("ctx");
        FAIL() << "all-missing row was accepted";
    } catch (const util::InvalidArgument &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "ctx: row 1 has no valid entries"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ScoreMask, FromWordsRejectsBadSizesAndPaddingBits)
{
    EXPECT_THROW(ScoreMask::fromWords(2, 70, {1, 2, 3}),
                 util::InvalidArgument);
    std::vector<std::uint64_t> words(4, 0);
    words[1] = std::uint64_t{1} << 40; // padding bit of row 0 (cols=70)
    EXPECT_THROW(ScoreMask::fromWords(2, 70, words),
                 util::InvalidArgument);
    words[1] = 0;
    EXPECT_NO_THROW(ScoreMask::fromWords(2, 70, words));
}

TEST(MaskedDatabase, ConstructorPoisonsUnobservedCellsWithNaN)
{
    const PerfDatabase dense = makePaperDataset(2011);
    const PerfDatabase masked = applyMissingness(dense, 0.3, 7);

    ASSERT_TRUE(masked.masked());
    EXPECT_FALSE(dense.masked());
    const ScoreMask expected = ScoreMask::sample(
        dense.benchmarkCount(), dense.machineCount(), 0.3, 7);
    EXPECT_EQ(masked.mask(), expected);

    for (std::size_t b = 0; b < dense.benchmarkCount(); ++b)
        for (std::size_t m = 0; m < dense.machineCount(); ++m) {
            if (masked.mask().valid(b, m))
                EXPECT_EQ(masked.score(b, m), dense.score(b, m));
            else
                EXPECT_TRUE(std::isnan(masked.score(b, m)));
        }
}

TEST(MaskedDatabase, ApplyMissingnessAtZeroFractionStaysDense)
{
    const PerfDatabase dense = makePaperDataset(2011);
    EXPECT_FALSE(applyMissingness(dense, 0.0, 7).masked());
    EXPECT_THROW(applyMissingness(dense, 1.0, 7),
                 util::InvalidArgument);
}

TEST(MaskedDatabase, RejectsAllMissingRowsWithClearMessage)
{
    const PerfDatabase dense = makePaperDataset(2011);
    ScoreMask mask(dense.benchmarkCount(), dense.machineCount(), true);
    for (std::size_t m = 0; m < dense.machineCount(); ++m)
        mask.set(2, m, false);
    try {
        PerfDatabase(dense.benchmarks(), dense.machines(),
                     dense.scores(), mask);
        FAIL() << "all-missing benchmark row was accepted";
    } catch (const util::InvalidArgument &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "row 2 has no valid entries (all-missing row)"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MaskedDatabase, SelectionsCarryTheMask)
{
    const PerfDatabase masked =
        applyMissingness(makePaperDataset(2011), 0.3, 7);
    const PerfDatabase cols = masked.selectMachines({0, 5, 10, 15});
    ASSERT_TRUE(cols.masked());
    for (std::size_t b = 0; b < cols.benchmarkCount(); ++b) {
        EXPECT_EQ(cols.mask().valid(b, 1), masked.mask().valid(b, 5));
        EXPECT_EQ(cols.mask().valid(b, 3), masked.mask().valid(b, 15));
    }
}

TEST(MaskedDatabase, ImputeObservedPreservesObservedCellsBitForBit)
{
    const PerfDatabase dense = makePaperDataset(2011);
    const PerfDatabase masked = applyMissingness(dense, 0.3, 7);
    const PerfDatabase imputed = imputeObserved(masked);

    EXPECT_FALSE(imputed.masked());
    for (std::size_t b = 0; b < dense.benchmarkCount(); ++b)
        for (std::size_t m = 0; m < dense.machineCount(); ++m) {
            const double v = imputed.score(b, m);
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GT(v, 0.0);
            if (masked.mask().valid(b, m)) {
                EXPECT_EQ(v, dense.score(b, m));
            }
        }
}

TEST(MaskedColumnarIo, MaskedDatabaseRoundTripsBitIdentically)
{
    const std::string path = tempPath("dtrank_masked.dtc");
    const PerfDatabase db =
        applyMissingness(makePaperDataset(2011), 0.3, 7);
    saveColumnar(db, path);
    const PerfDatabase loaded = loadColumnar(path);
    std::remove(path.c_str());

    ASSERT_TRUE(loaded.masked());
    EXPECT_EQ(loaded.mask(), db.mask());
    const auto &da = db.scores().data();
    const auto &dl = loaded.scores().data();
    ASSERT_EQ(da.size(), dl.size());
    // memcmp, not ==: the NaN-poisoned cells must round-trip too.
    EXPECT_EQ(std::memcmp(da.data(), dl.data(),
                          da.size() * sizeof(double)),
              0);
}

TEST(MaskedColumnarIo, DenseFilesStayVersionOneWithNoMaskOffset)
{
    const std::string path = tempPath("dtrank_dense_v1.dtc");
    saveColumnar(makePaperDataset(2011), path);
    const auto bytes = readAll(path);
    std::remove(path.c_str());
    ASSERT_GT(bytes.size(), 64u);
    EXPECT_EQ(bytes[8], 1); // format version
    for (std::size_t i = 56; i < 64; ++i)
        EXPECT_EQ(bytes[i], 0) << "mask offset byte " << i;
}

TEST(MaskedColumnarIo, RejectsFlippedMaskBits)
{
    const std::string path = tempPath("dtrank_maskflip.dtc");
    saveColumnar(applyMissingness(makePaperDataset(2011), 0.3, 7),
                 path);
    auto bytes = readAll(path);
    bytes[bytes.size() - 3] ^= 0x10; // inside the trailing mask page
    writeAll(path, bytes);
    EXPECT_THROW(loadColumnar(path), util::IoError);
    std::remove(path.c_str());
}

TEST(MaskedColumnarIo, RejectsTruncatedMaskPage)
{
    const std::string path = tempPath("dtrank_masktrunc.dtc");
    saveColumnar(applyMissingness(makePaperDataset(2011), 0.3, 7),
                 path);
    const auto bytes = readAll(path);
    writeAll(path, std::vector<char>(bytes.begin(), bytes.end() - 16));
    EXPECT_THROW(loadColumnar(path), util::IoError);
    std::remove(path.c_str());
}

TEST(MaskedColumnarIo, RejectsVersionOneFileDeclaringAMask)
{
    const std::string path = tempPath("dtrank_v1mask.dtc");
    saveColumnar(makePaperDataset(2011), path);
    auto bytes = readAll(path);
    bytes[56] = 64; // dense (version 1) file with a mask offset
    writeAll(path, bytes);
    EXPECT_THROW(loadColumnar(path), util::IoError);
    std::remove(path.c_str());
}

} // namespace
