/**
 * @file
 * Tests for the synthetic MICA characteristic generator, including the
 * outlier geometry the GA-kNN baseline's documented weakness rests on.
 */

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "linalg/vector_ops.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using namespace dtrank::dataset;

/** Indices of the k nearest rows to row `query` (unweighted). */
std::vector<std::size_t>
nearestRows(const linalg::Matrix &chars, std::size_t query, std::size_t k)
{
    std::vector<std::pair<double, std::size_t>> dist;
    for (std::size_t j = 0; j < chars.rows(); ++j) {
        if (j == query)
            continue;
        dist.emplace_back(
            linalg::squaredDistance(chars.row(query), chars.row(j)), j);
    }
    std::sort(dist.begin(), dist.end());
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < k && i < dist.size(); ++i)
        out.push_back(dist[i].second);
    return out;
}

TEST(Mica, ShapeMatchesCatalog)
{
    const linalg::Matrix chars = MicaGenerator().generateForCatalog();
    EXPECT_EQ(chars.rows(), benchmarkCatalog().size());
    EXPECT_EQ(chars.cols(), micaCharacteristicCount());
    EXPECT_EQ(micaCharacteristicNames().size(),
              micaCharacteristicCount());
}

TEST(Mica, DeterministicForFixedSeed)
{
    const linalg::Matrix a = MicaGenerator().generateForCatalog();
    const linalg::Matrix b = MicaGenerator().generateForCatalog();
    EXPECT_TRUE(a.approxEquals(b, 0.0));
}

TEST(Mica, SeedChangesOutput)
{
    MicaConfig config;
    config.seed = 1234;
    const linalg::Matrix a = MicaGenerator().generateForCatalog();
    const linalg::Matrix b =
        MicaGenerator(config).generateForCatalog();
    EXPECT_FALSE(a.approxEquals(b, 1e-9));
}

TEST(Mica, StandardizedColumnsHaveZeroMeanUnitVariance)
{
    const linalg::Matrix chars = MicaGenerator().generateForCatalog();
    for (std::size_t c = 0; c < chars.cols(); ++c) {
        double mean = 0.0;
        for (std::size_t r = 0; r < chars.rows(); ++r)
            mean += chars(r, c);
        mean /= static_cast<double>(chars.rows());
        EXPECT_NEAR(mean, 0.0, 1e-9);
    }
}

TEST(Mica, ClusterAssignmentFollowsDemandAndDomain)
{
    for (const auto &b : benchmarkCatalog()) {
        const double membw = b.demand[static_cast<std::size_t>(
            CapabilityDim::MemBandwidth)];
        const MicaCluster cluster = micaClusterOf(b);
        if (membw >= 0.30) {
            EXPECT_EQ(cluster, MicaCluster::Memory) << b.info.name;
        } else if (b.info.domain == BenchmarkDomain::Integer) {
            EXPECT_EQ(cluster, MicaCluster::IntCompute) << b.info.name;
        } else {
            EXPECT_EQ(cluster, MicaCluster::FpNumeric) << b.info.name;
        }
    }
}

TEST(Mica, DisguisedOutliersHaveNoMemoryNeighbours)
{
    // The core property behind the paper's GA-kNN failures: the
    // nearest neighbours of leslie3d, cactusADM and libquantum are all
    // compute benchmarks in (unweighted) characteristic space.
    const auto &catalog = benchmarkCatalog();
    const linalg::Matrix chars = MicaGenerator().generateForCatalog();
    for (const auto &[outlier, twin] : characteristicDisguises()) {
        std::size_t row = catalog.size();
        for (std::size_t b = 0; b < catalog.size(); ++b)
            if (catalog[b].info.name == outlier)
                row = b;
        ASSERT_LT(row, catalog.size()) << outlier;

        for (std::size_t j : nearestRows(chars, row, 10)) {
            const double membw =
                catalog[j].demand[static_cast<std::size_t>(
                    CapabilityDim::MemBandwidth)];
            EXPECT_LT(membw, 0.45)
                << outlier << " neighbours " << catalog[j].info.name;
        }
    }
}

TEST(Mica, DisguisedOutliersStayOutOfMainstreamNeighbourLists)
{
    const auto &catalog = benchmarkCatalog();
    const auto &disguises = characteristicDisguises();
    const linalg::Matrix chars = MicaGenerator().generateForCatalog();

    std::set<std::string> disguised;
    for (const auto &[outlier, twin] : disguises)
        disguised.insert(outlier);

    for (std::size_t b = 0; b < catalog.size(); ++b) {
        if (disguised.count(catalog[b].info.name))
            continue;
        for (std::size_t j : nearestRows(chars, b, 10))
            EXPECT_FALSE(disguised.count(catalog[j].info.name))
                << catalog[b].info.name << " neighbours "
                << catalog[j].info.name;
    }
}

TEST(Mica, HonestModeRestoresMemoryNeighbours)
{
    // With disguises disabled, libquantum's neighbours include other
    // memory-bound codes — the ablation where GA-kNN has no weakness.
    MicaConfig config;
    config.disguiseOutliers = false;
    const auto &catalog = benchmarkCatalog();
    const linalg::Matrix chars =
        MicaGenerator(config).generateForCatalog();

    std::size_t lq = catalog.size();
    for (std::size_t b = 0; b < catalog.size(); ++b)
        if (catalog[b].info.name == "libquantum")
            lq = b;
    ASSERT_LT(lq, catalog.size());

    bool found_memory_neighbour = false;
    for (std::size_t j : nearestRows(chars, lq, 5)) {
        const double membw = catalog[j].demand[static_cast<std::size_t>(
            CapabilityDim::MemBandwidth)];
        if (membw >= 0.40)
            found_memory_neighbour = true;
    }
    EXPECT_TRUE(found_memory_neighbour);
}

TEST(Mica, DisguiseFallsBackWhenTwinIsAbsent)
{
    // Generate over a subset that contains libquantum but not its
    // twin: the generator must fall back to honest characteristics
    // instead of failing.
    std::vector<BenchmarkProfile> subset;
    for (const auto &b : benchmarkCatalog())
        if (b.info.name == "libquantum" || b.info.name == "mcf" ||
            b.info.name == "gcc" || b.info.name == "lbm")
            subset.push_back(b);
    ASSERT_EQ(subset.size(), 4u);
    const linalg::Matrix chars = MicaGenerator().generate(subset);
    EXPECT_EQ(chars.rows(), 4u);
}

TEST(Mica, ValidatesConfig)
{
    MicaConfig config;
    config.noiseSigma = -0.1;
    EXPECT_THROW(MicaGenerator{config}, util::InvalidArgument);

    config = MicaConfig{};
    config.intraClusterSigma = 0.0;
    EXPECT_THROW(MicaGenerator{config}, util::InvalidArgument);

    config = MicaConfig{};
    config.ringRadius = 0.9;
    EXPECT_THROW(MicaGenerator{config}, util::InvalidArgument);
}

TEST(Mica, RejectsEmptyProfileList)
{
    EXPECT_THROW(MicaGenerator().generate({}), util::InvalidArgument);
}

TEST(Mica, CharacteristicNamesLookSane)
{
    const auto &names = micaCharacteristicNames();
    EXPECT_TRUE(std::find(names.begin(), names.end(),
                          "working_set_size") != names.end());
    EXPECT_TRUE(std::find(names.begin(), names.end(), "ilp_window") !=
                names.end());
}

} // namespace
