/**
 * @file
 * Unit tests for the characteristics CSV persistence.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "dataset/characteristics_io.h"
#include "dataset/mica.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using namespace dtrank::dataset;

CharacteristicsTable
smallTable()
{
    CharacteristicsTable table;
    table.benchmarks = {"alpha", "beta"};
    table.characteristics = {"ilp", "mem"};
    table.values = linalg::Matrix{{0.5, -1.25}, {2.0, 0.0}};
    return table;
}

TEST(CharacteristicsIo, RoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "dtrank_chars_test.csv";
    const auto table = smallTable();
    saveCharacteristicsCsv(path, table);
    const auto loaded = loadCharacteristicsCsv(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.benchmarks, table.benchmarks);
    EXPECT_EQ(loaded.characteristics, table.characteristics);
    EXPECT_TRUE(loaded.values.approxEquals(table.values, 1e-8));
}

TEST(CharacteristicsIo, RoundTripsTheMicaCatalog)
{
    const std::string path =
        ::testing::TempDir() + "dtrank_mica_test.csv";
    CharacteristicsTable table;
    for (const auto &b : benchmarkCatalog())
        table.benchmarks.push_back(b.info.name);
    table.characteristics = micaCharacteristicNames();
    table.values = MicaGenerator().generateForCatalog();

    saveCharacteristicsCsv(path, table);
    const auto loaded = loadCharacteristicsCsv(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.benchmarks.size(), 29u);
    EXPECT_EQ(loaded.characteristics.size(),
              micaCharacteristicCount());
    EXPECT_TRUE(loaded.values.approxEquals(table.values, 1e-8));
}

TEST(CharacteristicsIo, SaveValidatesShape)
{
    auto table = smallTable();
    table.benchmarks.pop_back();
    EXPECT_THROW(saveCharacteristicsCsv("/tmp/never_written.csv", table),
                 util::InvalidArgument);

    table = smallTable();
    table.characteristics.push_back("extra");
    EXPECT_THROW(saveCharacteristicsCsv("/tmp/never_written.csv", table),
                 util::InvalidArgument);
}

TEST(CharacteristicsIo, LoadRejectsMissingOrMalformed)
{
    EXPECT_THROW(loadCharacteristicsCsv("/nonexistent/file.csv"),
                 util::IoError);

    const std::string path =
        ::testing::TempDir() + "dtrank_chars_bad.csv";
    {
        FILE *f = fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        fputs("benchmark,ilp\nalpha,0.5,extra-cell\n", f);
        fclose(f);
    }
    EXPECT_THROW(loadCharacteristicsCsv(path), util::IoError);
    std::remove(path.c_str());
}

} // namespace
