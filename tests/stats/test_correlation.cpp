/**
 * @file
 * Unit and property tests for Pearson, Spearman and R².
 */

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(Pearson, PerfectLinearRelation)
{
    EXPECT_NEAR(stats::pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(stats::pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariant)
{
    const std::vector<double> x = {1, 5, 2, 8, 3};
    const std::vector<double> y = {2, 1, 4, 3, 5};
    const double base = stats::pearson(x, y);
    std::vector<double> y2(y);
    for (double &v : y2)
        v = 3.0 * v + 10.0;
    EXPECT_NEAR(stats::pearson(x, y2), base, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero)
{
    EXPECT_DOUBLE_EQ(stats::pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, Validation)
{
    EXPECT_THROW(stats::pearson({1}, {1}), util::InvalidArgument);
    EXPECT_THROW(stats::pearson({1, 2}, {1}), util::InvalidArgument);
}

TEST(Pearson, KnownValue)
{
    // Hand-computed on a small sample.
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {1, 3, 2, 4};
    // cov = 1.0, sx = sqrt(1.25), sy = sqrt(1.25) (population)
    EXPECT_NEAR(stats::pearson(x, y), 1.0 / 1.25, 1e-12);
}

TEST(Spearman, MonotoneNonlinearIsPerfect)
{
    // y = x^3 is monotone, so Spearman is 1 even though Pearson < 1.
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {1, 8, 27, 64, 125};
    EXPECT_NEAR(stats::spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(stats::pearson(x, y), 1.0);
}

TEST(Spearman, ReversedIsMinusOne)
{
    EXPECT_NEAR(stats::spearman({1, 2, 3, 4}, {9, 7, 5, 3.5}), -1.0,
                1e-12);
}

TEST(Spearman, HandlesTies)
{
    // With average ranks, ties reduce but do not break the measure.
    const double rho = stats::spearman({1, 2, 2, 3}, {1, 2, 2, 3});
    EXPECT_NEAR(rho, 1.0, 1e-12);
}

TEST(Spearman, InvariantToMonotoneTransform)
{
    util::Rng rng(3);
    std::vector<double> x(30);
    std::vector<double> y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        x[i] = rng.uniform(0.0, 10.0);
        y[i] = rng.uniform(0.0, 10.0);
    }
    const double base = stats::spearman(x, y);
    std::vector<double> y_exp(y);
    for (double &v : y_exp)
        v = std::exp(v); // strictly monotone
    EXPECT_NEAR(stats::spearman(x, y_exp), base, 1e-12);
}

TEST(RSquared, PerfectPrediction)
{
    EXPECT_DOUBLE_EQ(stats::rSquared({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(RSquared, MeanPredictionIsZero)
{
    EXPECT_NEAR(stats::rSquared({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(RSquared, WorseThanMeanIsNegative)
{
    EXPECT_LT(stats::rSquared({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(RSquared, ConstantActuals)
{
    EXPECT_DOUBLE_EQ(stats::rSquared({2, 2}, {2, 2}), 1.0);
    EXPECT_DOUBLE_EQ(stats::rSquared({2, 2}, {2, 3}), 0.0);
}

TEST(RSquared, Validation)
{
    EXPECT_THROW(stats::rSquared({}, {}), util::InvalidArgument);
    EXPECT_THROW(stats::rSquared({1}, {1, 2}), util::InvalidArgument);
}

TEST(Covariance, KnownValue)
{
    EXPECT_DOUBLE_EQ(stats::covariancePopulation({1, 2, 3}, {4, 6, 8}),
                     2.0 / 3.0 * 2.0); // cov = E[xy]-E[x]E[y] = 4/3
    EXPECT_THROW(stats::covariancePopulation({}, {}),
                 util::InvalidArgument);
}

} // namespace
