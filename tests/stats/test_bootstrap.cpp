/**
 * @file
 * Unit tests for the bootstrap confidence intervals.
 */

#include <gtest/gtest.h>

#include "stats/bootstrap.h"
#include "stats/correlation.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(Bootstrap, PointEstimateMatchesDirectStatistic)
{
    const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<double> y = {2, 1, 4, 3, 6, 5, 8, 7};
    const auto ci = stats::bootstrapSpearman(x, y, 0.95, 200);
    EXPECT_DOUBLE_EQ(ci.pointEstimate, stats::spearman(x, y));
}

TEST(Bootstrap, IntervalBracketsThePointEstimate)
{
    util::Rng rng(1);
    std::vector<double> x(40);
    std::vector<double> y(40);
    for (std::size_t i = 0; i < 40; ++i) {
        x[i] = rng.uniform(1.0, 50.0);
        y[i] = x[i] * 1.5 + rng.gaussian(0.0, 4.0);
    }
    const auto ci = stats::bootstrapSpearman(x, y);
    EXPECT_LE(ci.lower, ci.pointEstimate + 1e-9);
    EXPECT_GE(ci.upper, ci.pointEstimate - 1e-9);
    EXPECT_LE(ci.upper, 1.0);
    EXPECT_GE(ci.lower, -1.0);
}

TEST(Bootstrap, PerfectCorrelationGivesDegenerateInterval)
{
    const std::vector<double> x = {1, 2, 3, 4, 5, 6};
    const std::vector<double> y = {2, 4, 6, 8, 10, 12};
    const auto ci = stats::bootstrapSpearman(x, y, 0.95, 200);
    EXPECT_DOUBLE_EQ(ci.pointEstimate, 1.0);
    // Resamples of a perfectly monotone relation stay perfectly
    // monotone (ties only tighten toward 1 or produce 0-variance
    // degenerate cases, which pearson maps to 0; the upper end is 1).
    EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(Bootstrap, NoisierDataGivesWiderIntervals)
{
    util::Rng rng(2);
    std::vector<double> x(30);
    std::vector<double> clean(30);
    std::vector<double> noisy(30);
    for (std::size_t i = 0; i < 30; ++i) {
        x[i] = rng.uniform(0.0, 100.0);
        clean[i] = x[i] + rng.gaussian(0.0, 1.0);
        noisy[i] = x[i] + rng.gaussian(0.0, 60.0);
    }
    const auto ci_clean = stats::bootstrapSpearman(x, clean);
    const auto ci_noisy = stats::bootstrapSpearman(x, noisy);
    EXPECT_LT(ci_clean.upper - ci_clean.lower,
              ci_noisy.upper - ci_noisy.lower);
}

TEST(Bootstrap, DeterministicGivenSeed)
{
    const std::vector<double> x = {5, 1, 4, 2, 3, 9, 7};
    const std::vector<double> y = {4, 2, 5, 1, 3, 8, 6};
    const auto a = stats::bootstrapSpearman(x, y, 0.9, 300, 42);
    const auto b = stats::bootstrapSpearman(x, y, 0.9, 300, 42);
    EXPECT_DOUBLE_EQ(a.lower, b.lower);
    EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, CustomStatistic)
{
    // Bootstrap the mean difference.
    const std::vector<double> x = {10, 12, 14, 16};
    const std::vector<double> y = {9, 11, 13, 15};
    util::Rng rng(3);
    const auto ci = stats::bootstrapPaired(
        x, y,
        [](const std::vector<double> &a, const std::vector<double> &b) {
            double acc = 0.0;
            for (std::size_t i = 0; i < a.size(); ++i)
                acc += a[i] - b[i];
            return acc / static_cast<double>(a.size());
        },
        0.95, 200, rng);
    // The difference is exactly 1 for every pair.
    EXPECT_DOUBLE_EQ(ci.pointEstimate, 1.0);
    EXPECT_DOUBLE_EQ(ci.lower, 1.0);
    EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(Bootstrap, Validation)
{
    util::Rng rng(4);
    const auto stat = [](const std::vector<double> &,
                         const std::vector<double> &) { return 0.0; };
    EXPECT_THROW(stats::bootstrapPaired({1}, {1}, stat, 0.9, 100, rng),
                 util::InvalidArgument);
    EXPECT_THROW(
        stats::bootstrapPaired({1, 2}, {1}, stat, 0.9, 100, rng),
        util::InvalidArgument);
    EXPECT_THROW(
        stats::bootstrapPaired({1, 2}, {1, 2}, stat, 1.5, 100, rng),
        util::InvalidArgument);
    EXPECT_THROW(
        stats::bootstrapPaired({1, 2}, {1, 2}, stat, 0.9, 5, rng),
        util::InvalidArgument);
    EXPECT_THROW(stats::bootstrapPaired({1, 2}, {1, 2}, {}, 0.9, 100,
                                        rng),
                 util::InvalidArgument);
}

} // namespace
