/**
 * @file
 * Unit tests for rank computation with ties.
 */

#include <gtest/gtest.h>

#include "stats/ranking.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(RankData, NoTies)
{
    const auto r = stats::rankData({30, 10, 20});
    EXPECT_EQ(r, (std::vector<double>{3, 1, 2}));
}

TEST(RankData, AverageTies)
{
    // 10 appears twice at positions 1 and 2 -> rank 1.5 each.
    const auto r = stats::rankData({10, 10, 20});
    EXPECT_EQ(r, (std::vector<double>{1.5, 1.5, 3}));
}

TEST(RankData, MinTies)
{
    const auto r = stats::rankData({10, 10, 20}, stats::TieMethod::Min);
    EXPECT_EQ(r, (std::vector<double>{1, 1, 3}));
}

TEST(RankData, OrdinalTies)
{
    const auto r =
        stats::rankData({10, 10, 20}, stats::TieMethod::Ordinal);
    EXPECT_EQ(r, (std::vector<double>{1, 2, 3}));
}

TEST(RankData, AllEqualAverage)
{
    const auto r = stats::rankData({5, 5, 5, 5});
    for (double v : r)
        EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(RankData, EmptyInput)
{
    EXPECT_TRUE(stats::rankData({}).empty());
}

TEST(RankData, RanksSumIsInvariant)
{
    // Sum of average ranks is always n(n+1)/2 regardless of ties.
    const std::vector<double> v = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
    const auto r = stats::rankData(v);
    double sum = 0.0;
    for (double x : r)
        sum += x;
    EXPECT_DOUBLE_EQ(sum, 55.0);
}

TEST(OrderDescending, SortsByValue)
{
    const auto order = stats::orderDescending({10, 30, 20});
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(OrderDescending, StableOnTies)
{
    const auto order = stats::orderDescending({5, 7, 5});
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(OrderAscending, SortsByValue)
{
    const auto order = stats::orderAscending({10, 30, 20});
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(PositionInDescendingOrder, FindsPosition)
{
    const std::vector<double> v = {10, 30, 20};
    EXPECT_EQ(stats::positionInDescendingOrder(v, 1), 0u);
    EXPECT_EQ(stats::positionInDescendingOrder(v, 2), 1u);
    EXPECT_EQ(stats::positionInDescendingOrder(v, 0), 2u);
    EXPECT_THROW(stats::positionInDescendingOrder(v, 3),
                 util::InvalidArgument);
}

} // namespace
