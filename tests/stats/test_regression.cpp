/**
 * @file
 * Unit and property tests for the regression models.
 */

#include <gtest/gtest.h>

#include "stats/regression.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(SimpleLinearRegression, ExactLine)
{
    const stats::SimpleLinearRegression fit({1, 2, 3}, {5, 7, 9});
    EXPECT_NEAR(fit.slope(), 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept(), 3.0, 1e-12);
    EXPECT_NEAR(fit.rSquared(), 1.0, 1e-12);
    EXPECT_NEAR(fit.residualSumSquares(), 0.0, 1e-12);
    EXPECT_NEAR(fit.predict(10.0), 23.0, 1e-12);
    EXPECT_EQ(fit.sampleSize(), 3u);
}

TEST(SimpleLinearRegression, KnownNoisyFit)
{
    // Classic example: y on x with known OLS solution.
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {2, 2, 3, 5, 5};
    const stats::SimpleLinearRegression fit(x, y);
    // slope = Sxy/Sxx = 9/10, intercept = 3.4 - 0.9*3 = 0.7.
    EXPECT_NEAR(fit.slope(), 0.9, 1e-12);
    EXPECT_NEAR(fit.intercept(), 0.7, 1e-12);
    EXPECT_GT(fit.rSquared(), 0.8);
    EXPECT_LT(fit.rSquared(), 1.0);
}

TEST(SimpleLinearRegression, ConstantPredictorFallsBackToMean)
{
    const stats::SimpleLinearRegression fit({2, 2, 2}, {1, 5, 9});
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept(), 5.0);
    EXPECT_DOUBLE_EQ(fit.predict(100.0), 5.0);
}

TEST(SimpleLinearRegression, ConstantResponsePerfectFit)
{
    const stats::SimpleLinearRegression fit({1, 2, 3}, {4, 4, 4});
    EXPECT_NEAR(fit.slope(), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(fit.rSquared(), 1.0);
}

TEST(SimpleLinearRegression, BatchPredict)
{
    const stats::SimpleLinearRegression fit({0, 1}, {1, 3});
    EXPECT_EQ(fit.predict(std::vector<double>{2, 3}),
              (std::vector<double>{5, 7}));
}

TEST(SimpleLinearRegression, Validation)
{
    EXPECT_THROW(stats::SimpleLinearRegression({1}, {1}),
                 util::InvalidArgument);
    EXPECT_THROW(stats::SimpleLinearRegression({1, 2}, {1}),
                 util::InvalidArgument);
}

class SlrRecoveryTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SlrRecoveryTest, RecoversRandomLines)
{
    util::Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
    const double a = rng.uniform(-5.0, 5.0);
    const double b = rng.uniform(-3.0, 3.0);
    std::vector<double> x(50);
    std::vector<double> y(50);
    for (std::size_t i = 0; i < 50; ++i) {
        x[i] = rng.uniform(-10.0, 10.0);
        y[i] = a + b * x[i];
    }
    const stats::SimpleLinearRegression fit(x, y);
    EXPECT_NEAR(fit.intercept(), a, 1e-9);
    EXPECT_NEAR(fit.slope(), b, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlrRecoveryTest, ::testing::Range(0, 10));

TEST(MultipleLinearRegression, RecoversPlane)
{
    // y = 1 + 2*x1 - 3*x2.
    linalg::Matrix x{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}};
    std::vector<double> y;
    for (std::size_t r = 0; r < x.rows(); ++r)
        y.push_back(1.0 + 2.0 * x(r, 0) - 3.0 * x(r, 1));
    const stats::MultipleLinearRegression fit(x, y);
    EXPECT_NEAR(fit.intercept(), 1.0, 1e-10);
    const auto slopes = fit.slopes();
    EXPECT_NEAR(slopes[0], 2.0, 1e-10);
    EXPECT_NEAR(slopes[1], -3.0, 1e-10);
    EXPECT_NEAR(fit.rSquared(), 1.0, 1e-12);
    EXPECT_NEAR(fit.predict(std::vector<double>{3.0, 2.0}), 1.0, 1e-9);
}

TEST(MultipleLinearRegression, BatchPredictMatchesScalar)
{
    linalg::Matrix x{{1, 2}, {3, 4}, {5, 6}, {7, 9}};
    const std::vector<double> y = {1, 2, 3, 5};
    const stats::MultipleLinearRegression fit(x, y);
    const auto batch = fit.predict(x);
    for (std::size_t r = 0; r < x.rows(); ++r)
        EXPECT_DOUBLE_EQ(batch[r], fit.predict(x.row(r)));
}

TEST(MultipleLinearRegression, RidgeHandlesFewObservations)
{
    // 2 observations, 3 features: only solvable with ridge.
    linalg::Matrix x{{1, 2, 3}, {4, 5, 6}};
    const std::vector<double> y = {1, 2};
    EXPECT_THROW(stats::MultipleLinearRegression(x, y),
                 util::InvalidArgument);
    const stats::MultipleLinearRegression fit(x, y, 0.1);
    EXPECT_TRUE(std::isfinite(fit.intercept()));
}

TEST(MultipleLinearRegression, PredictValidatesFeatureCount)
{
    linalg::Matrix x{{1}, {2}, {3}};
    const stats::MultipleLinearRegression fit(x, {1, 2, 3});
    EXPECT_THROW(fit.predict(std::vector<double>{1.0, 2.0}), util::InvalidArgument);
}

} // namespace
