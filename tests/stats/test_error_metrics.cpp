/**
 * @file
 * Unit tests for the paper's error metrics.
 */

#include <gtest/gtest.h>

#include "stats/error_metrics.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(RelativeError, Basics)
{
    EXPECT_DOUBLE_EQ(stats::relativeErrorPercent(10.0, 12.0), 20.0);
    EXPECT_DOUBLE_EQ(stats::relativeErrorPercent(10.0, 8.0), 20.0);
    EXPECT_DOUBLE_EQ(stats::relativeErrorPercent(10.0, 10.0), 0.0);
    EXPECT_THROW(stats::relativeErrorPercent(0.0, 1.0),
                 util::InvalidArgument);
    EXPECT_THROW(stats::relativeErrorPercent(-1.0, 1.0),
                 util::InvalidArgument);
}

TEST(MeanRelativeError, AveragesAcrossElements)
{
    EXPECT_DOUBLE_EQ(
        stats::meanRelativeErrorPercent({10, 20}, {12, 20}), 10.0);
    EXPECT_THROW(stats::meanRelativeErrorPercent({}, {}),
                 util::InvalidArgument);
    EXPECT_THROW(stats::meanRelativeErrorPercent({1}, {1, 2}),
                 util::InvalidArgument);
}

TEST(Top1Deficiency, ZeroWhenPredictionPicksBest)
{
    // Predicted ranking picks machine 2, which is the actual best.
    EXPECT_DOUBLE_EQ(
        stats::top1DeficiencyPercent({10, 20, 30}, {1, 2, 3}), 0.0);
}

TEST(Top1Deficiency, PenalizesWrongPick)
{
    // Predicted top = machine 0 (actual 10); actual best is 30.
    EXPECT_DOUBLE_EQ(
        stats::top1DeficiencyPercent({10, 20, 30}, {9, 2, 3}), 200.0);
}

TEST(Top1Deficiency, CanExceedOneHundredPercent)
{
    // The paper's failure mode: predicted machine less than half the
    // best -> deficiency > 100%.
    const double d =
        stats::top1DeficiencyPercent({4, 10}, {5, 1});
    EXPECT_DOUBLE_EQ(d, 150.0);
}

TEST(Top1Deficiency, TieOnPredictedUsesFirst)
{
    // Stable ordering: with equal predictions the first machine wins.
    EXPECT_DOUBLE_EQ(
        stats::top1DeficiencyPercent({10, 20}, {5, 5}), 100.0);
}

TEST(TopNDeficiency, LargerNCanOnlyHelp)
{
    const std::vector<double> actual = {10, 30, 20};
    const std::vector<double> predicted = {3, 1, 2};
    const double d1 = stats::topNDeficiencyPercent(actual, predicted, 1);
    const double d2 = stats::topNDeficiencyPercent(actual, predicted, 2);
    const double d3 = stats::topNDeficiencyPercent(actual, predicted, 3);
    EXPECT_GE(d1, d2);
    EXPECT_GE(d2, d3);
    EXPECT_DOUBLE_EQ(d3, 0.0);
}

TEST(TopNDeficiency, PicksBestActualAmongTopN)
{
    // Predicted order: 0, 1, 2. Actual: 10, 25, 30.
    const std::vector<double> actual = {10, 25, 30};
    const std::vector<double> predicted = {9, 8, 7};
    EXPECT_DOUBLE_EQ(stats::topNDeficiencyPercent(actual, predicted, 2),
                     (30.0 - 25.0) / 25.0 * 100.0);
}

TEST(TopNDeficiency, Validation)
{
    EXPECT_THROW(stats::topNDeficiencyPercent({}, {}, 1),
                 util::InvalidArgument);
    EXPECT_THROW(stats::topNDeficiencyPercent({1, 2}, {1}, 1),
                 util::InvalidArgument);
    EXPECT_THROW(stats::topNDeficiencyPercent({1, 2}, {1, 2}, 0),
                 util::InvalidArgument);
    EXPECT_THROW(stats::topNDeficiencyPercent({1, 2}, {1, 2}, 3),
                 util::InvalidArgument);
}

} // namespace
