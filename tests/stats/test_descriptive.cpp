/**
 * @file
 * Unit tests for descriptive statistics and the Summary accumulator.
 */

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(Descriptive, Mean)
{
    EXPECT_DOUBLE_EQ(stats::mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(stats::mean({5}), 5.0);
    EXPECT_THROW(stats::mean({}), util::InvalidArgument);
}

TEST(Descriptive, Variance)
{
    const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(stats::variancePopulation(v), 4.0);
    EXPECT_NEAR(stats::varianceSample(v), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats::stddevPopulation(v), 2.0);
    EXPECT_THROW(stats::varianceSample({1}), util::InvalidArgument);
}

TEST(Descriptive, MinMax)
{
    EXPECT_DOUBLE_EQ(stats::minimum({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(stats::maximum({3, 1, 2}), 3.0);
    EXPECT_THROW(stats::minimum({}), util::InvalidArgument);
    EXPECT_THROW(stats::maximum({}), util::InvalidArgument);
}

TEST(Descriptive, Median)
{
    EXPECT_DOUBLE_EQ(stats::median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(stats::median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(stats::median({7}), 7.0);
    EXPECT_THROW(stats::median({}), util::InvalidArgument);
}

TEST(Descriptive, Quantile)
{
    const std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(stats::quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::quantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(stats::quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(stats::quantile(v, 0.25), 2.0);
    // Interpolation between order statistics.
    EXPECT_DOUBLE_EQ(stats::quantile({0, 10}, 0.3), 3.0);
    EXPECT_THROW(stats::quantile(v, 1.5), util::InvalidArgument);
    EXPECT_THROW(stats::quantile({}, 0.5), util::InvalidArgument);
}

TEST(Descriptive, GeometricMean)
{
    EXPECT_NEAR(stats::geometricMean({1, 4, 16}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats::geometricMean({3}), 3.0);
    EXPECT_THROW(stats::geometricMean({1, 0}), util::InvalidArgument);
    EXPECT_THROW(stats::geometricMean({-1.0}), util::InvalidArgument);
}

TEST(Descriptive, ArgMinMax)
{
    EXPECT_EQ(stats::argMax({1, 5, 3}), 1u);
    EXPECT_EQ(stats::argMin({1, 5, 0}), 2u);
    // First index wins on ties.
    EXPECT_EQ(stats::argMax({5, 5}), 0u);
    EXPECT_THROW(stats::argMax({}), util::InvalidArgument);
}

TEST(Summary, TracksMoments)
{
    stats::Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, EmptyThrows)
{
    stats::Summary s;
    EXPECT_THROW(s.mean(), util::InvalidArgument);
    EXPECT_THROW(s.min(), util::InvalidArgument);
    s.add(1.0);
    EXPECT_THROW(s.variance(), util::InvalidArgument);
}

TEST(Summary, MergeMatchesSinglePass)
{
    util::Rng rng(7);
    stats::Summary all;
    stats::Summary left;
    stats::Summary right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(3.0, 2.0);
        all.add(v);
        (i % 3 == 0 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    stats::Summary a;
    a.add(1.0);
    a.add(3.0);
    stats::Summary b;
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // copy
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

} // namespace
