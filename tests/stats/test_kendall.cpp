/**
 * @file
 * Unit tests for Kendall's tau-b.
 */

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "stats/kendall.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(KendallTau, PerfectAgreement)
{
    EXPECT_DOUBLE_EQ(stats::kendallTau({1, 2, 3, 4}, {10, 20, 30, 40}),
                     1.0);
}

TEST(KendallTau, PerfectDisagreement)
{
    EXPECT_DOUBLE_EQ(stats::kendallTau({1, 2, 3, 4}, {9, 7, 5, 3}),
                     -1.0);
}

TEST(KendallTau, KnownHandComputedValue)
{
    // Pairs: (1,1),(2,3),(3,2): concordant = 2, discordant = 1,
    // tau = (2-1)/3.
    EXPECT_NEAR(stats::kendallTau({1, 2, 3}, {1, 3, 2}), 1.0 / 3.0,
                1e-12);
}

TEST(KendallTau, ConstantSampleIsZero)
{
    EXPECT_DOUBLE_EQ(stats::kendallTau({5, 5, 5}, {1, 2, 3}), 0.0);
    EXPECT_DOUBLE_EQ(stats::kendallTau({1, 2, 3}, {7, 7, 7}), 0.0);
}

TEST(KendallTau, TieCorrectionKeepsBoundsTight)
{
    // With ties, tau-b still reaches 1 for a perfectly concordant
    // relation among the untied pairs.
    const double tau = stats::kendallTau({1, 1, 2, 3}, {5, 5, 6, 7});
    EXPECT_DOUBLE_EQ(tau, 1.0);
}

TEST(KendallTau, MonotoneTransformInvariant)
{
    util::Rng rng(1);
    std::vector<double> x(25);
    std::vector<double> y(25);
    for (std::size_t i = 0; i < 25; ++i) {
        x[i] = rng.uniform(0.0, 10.0);
        y[i] = rng.uniform(0.0, 10.0);
    }
    const double base = stats::kendallTau(x, y);
    std::vector<double> y_exp(y);
    for (double &v : y_exp)
        v = std::exp(v);
    EXPECT_NEAR(stats::kendallTau(x, y_exp), base, 1e-12);
}

TEST(KendallTau, AgreesInSignWithSpearman)
{
    util::Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> x(15);
        std::vector<double> y(15);
        const double slope = rng.uniform(-2.0, 2.0);
        for (std::size_t i = 0; i < 15; ++i) {
            x[i] = rng.uniform(0.0, 10.0);
            y[i] = slope * x[i] + rng.gaussian(0.0, 1.0);
        }
        const double tau = stats::kendallTau(x, y);
        const double rho = stats::spearman(x, y);
        if (std::fabs(rho) > 0.3)
            EXPECT_GT(tau * rho, 0.0) << "trial " << trial;
        EXPECT_LE(std::fabs(tau), 1.0);
    }
}

TEST(KendallTau, Validation)
{
    EXPECT_THROW(stats::kendallTau({1}, {1}), util::InvalidArgument);
    EXPECT_THROW(stats::kendallTau({1, 2}, {1}), util::InvalidArgument);
}

} // namespace
