/**
 * @file
 * Unit tests for the restricted cubic spline regression.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/regression.h"
#include "stats/spline.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(CubicSplineBasis, ValidatesKnots)
{
    EXPECT_THROW(stats::CubicSplineBasis({1.0, 2.0}),
                 util::InvalidArgument);
    EXPECT_THROW(stats::CubicSplineBasis({1.0, 1.0, 2.0}),
                 util::InvalidArgument);
    EXPECT_THROW(stats::CubicSplineBasis({2.0, 1.0, 3.0}),
                 util::InvalidArgument);
}

TEST(CubicSplineBasis, DimensionIsKnotsMinusOne)
{
    const stats::CubicSplineBasis basis({0.0, 1.0, 2.0, 3.0});
    EXPECT_EQ(basis.dimension(), 3u);
    EXPECT_EQ(basis.evaluate(1.5).size(), 3u);
}

TEST(CubicSplineBasis, FirstColumnIsIdentity)
{
    const stats::CubicSplineBasis basis({0.0, 1.0, 2.0});
    for (double x : {-3.0, 0.5, 4.2})
        EXPECT_DOUBLE_EQ(basis.evaluate(x)[0], x);
}

TEST(CubicSplineBasis, LinearTailsBeyondBoundaryKnots)
{
    // The restricted basis is linear outside the boundary knots: second
    // differences of each basis column vanish out there.
    const stats::CubicSplineBasis basis({0.0, 1.0, 2.0, 3.0});
    const double h = 0.25;
    for (double x : {-4.0, 8.0}) {
        const auto lo = basis.evaluate(x - h);
        const auto mid = basis.evaluate(x);
        const auto hi = basis.evaluate(x + h);
        for (std::size_t j = 0; j < basis.dimension(); ++j) {
            const double second = lo[j] - 2.0 * mid[j] + hi[j];
            EXPECT_NEAR(second, 0.0, 1e-9) << "column " << j;
        }
    }
}

TEST(CubicSplineBasis, FromQuantilesCoversTheSample)
{
    const std::vector<double> sample = {1, 9, 3, 7, 5, 2, 8};
    const auto basis =
        stats::CubicSplineBasis::fromQuantiles(sample, 4);
    EXPECT_DOUBLE_EQ(basis.knots().front(), 1.0);
    EXPECT_DOUBLE_EQ(basis.knots().back(), 9.0);
    EXPECT_THROW(
        stats::CubicSplineBasis::fromQuantiles({1.0, 1.0, 1.0}, 3),
        util::InvalidArgument);
}

TEST(SplineRegression, FitsAStraightLineExactly)
{
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i <= 10; ++i) {
        x.push_back(static_cast<double>(i));
        y.push_back(2.0 * i + 1.0);
    }
    const stats::SplineRegression fit(x, y, 4);
    EXPECT_FALSE(fit.isLinearFallback());
    EXPECT_NEAR(fit.rSquared(), 1.0, 1e-9);
    EXPECT_NEAR(fit.predict(3.5), 8.0, 1e-6);
    // Linear tails: extrapolation continues the line.
    EXPECT_NEAR(fit.predict(20.0), 41.0, 1e-4);
}

TEST(SplineRegression, CapturesCurvatureALineCannot)
{
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i <= 20; ++i) {
        const double v = 0.25 * i;
        x.push_back(v);
        y.push_back(std::sin(v));
    }
    const stats::SplineRegression spline(x, y, 5);
    const stats::SimpleLinearRegression line(x, y);
    EXPECT_LT(spline.residualSumSquares(),
              0.2 * line.residualSumSquares());
    EXPECT_NEAR(spline.predict(1.5), std::sin(1.5), 0.05);
}

TEST(SplineRegression, FallsBackToLineOnDegenerateData)
{
    // Two distinct x values cannot support 3 knots.
    const stats::SplineRegression fit({1, 1, 2, 2}, {3, 3, 5, 5}, 4);
    EXPECT_TRUE(fit.isLinearFallback());
    EXPECT_NEAR(fit.predict(1.5), 4.0, 1e-9);
}

TEST(SplineRegression, Validation)
{
    EXPECT_THROW(stats::SplineRegression({1.0}, {1.0}),
                 util::InvalidArgument);
    EXPECT_THROW(stats::SplineRegression({1.0, 2.0}, {1.0}),
                 util::InvalidArgument);
}

TEST(SplineRegression, BatchPredictMatchesScalar)
{
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i <= 12; ++i) {
        x.push_back(static_cast<double>(i));
        y.push_back(std::sqrt(1.0 + i));
    }
    const stats::SplineRegression fit(x, y);
    const auto batch = fit.predict(std::vector<double>{2.5, 7.0});
    EXPECT_DOUBLE_EQ(batch[0], fit.predict(2.5));
    EXPECT_DOUBLE_EQ(batch[1], fit.predict(7.0));
}

class SplineRecoveryTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SplineRecoveryTest, TracksSmoothRandomTargets)
{
    util::Rng rng(700 + static_cast<std::uint64_t>(GetParam()));
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-0.5, 0.5);
    const double c = rng.uniform(-0.1, 0.1);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i <= 30; ++i) {
        const double v = 0.2 * i;
        x.push_back(v);
        y.push_back(a + b * v + c * v * v);
    }
    const stats::SplineRegression fit(x, y, 5);
    // In-range predictions of a quadratic should be near exact.
    for (double probe : {0.7, 2.3, 4.9})
        EXPECT_NEAR(fit.predict(probe),
                    a + b * probe + c * probe * probe, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplineRecoveryTest,
                         ::testing::Range(0, 10));

} // namespace
