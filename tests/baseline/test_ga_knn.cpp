/**
 * @file
 * Unit tests for the GA-kNN baseline.
 */

#include <memory>

#include <gtest/gtest.h>

#include "baseline/ga_knn.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

baseline::GaKnnConfig
fastConfig()
{
    baseline::GaKnnConfig config;
    config.ga.populationSize = 12;
    config.ga.generations = 8;
    return config;
}

/**
 * A toy world with two workload groups living on one characteristic
 * axis: group A (characteristic 0) scores low, group B
 * (characteristic 1) scores high, on every machine.
 */
struct ToyWorld
{
    linalg::Matrix characteristics{
        {0.0, 0.0}, {0.05, 0.0}, {0.1, 0.0},   // group A
        {1.0, 0.0}, {0.95, 0.0}, {0.9, 0.0}};  // group B
    linalg::Matrix scores{
        {10, 20}, {11, 21}, {12, 22},           // group A scores
        {30, 60}, {31, 61}, {32, 62}};          // group B scores
};

TEST(GaKnn, TrainsAndExposesWeights)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 2;
    baseline::GaKnnModel model(config);
    EXPECT_FALSE(model.trained());
    EXPECT_THROW(model.weights(), util::InvalidArgument);
    model.train(world.characteristics, world.scores);
    EXPECT_TRUE(model.trained());
    ASSERT_EQ(model.weights().size(), 2u);
    for (double w : model.weights()) {
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
    }
    EXPECT_LE(model.trainingFitness(), 0.0);
}

TEST(GaKnn, NeighborsComeFromTheSameGroup)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 2;
    baseline::GaKnnModel model(config);
    model.train(world.characteristics, world.scores);

    // A query at the group-A end must pick group-A rows.
    const auto nn = model.neighbors({0.02, 0.0}, world.characteristics);
    ASSERT_EQ(nn.size(), 2u);
    EXPECT_LT(nn[0], 3u);
    EXPECT_LT(nn[1], 3u);

    // And at the group-B end, group-B rows.
    const auto nn_b =
        model.neighbors({0.97, 0.0}, world.characteristics);
    EXPECT_GE(nn_b[0], 3u);
    EXPECT_GE(nn_b[1], 3u);
}

TEST(GaKnn, PredictionAveragesNeighborScores)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 3;
    config.weighting = ml::KnnWeighting::Uniform;
    baseline::GaKnnModel model(config);
    model.train(world.characteristics, world.scores);

    const auto pred = model.predictApp({0.0, 0.0}, world.characteristics,
                                       world.scores);
    ASSERT_EQ(pred.size(), 2u);
    // Neighbors are the three group-A rows: mean scores (11, 21).
    EXPECT_NEAR(pred[0], 11.0, 1e-9);
    EXPECT_NEAR(pred[1], 21.0, 1e-9);
}

TEST(GaKnn, DeterministicGivenSeed)
{
    ToyWorld world;
    baseline::GaKnnModel a(fastConfig());
    baseline::GaKnnModel b(fastConfig());
    a.train(world.characteristics, world.scores);
    b.train(world.characteristics, world.scores);
    EXPECT_EQ(a.weights(), b.weights());
}

TEST(GaKnn, TrainValidation)
{
    baseline::GaKnnModel model(fastConfig());
    EXPECT_THROW(model.train(linalg::Matrix{{1.0}}, linalg::Matrix{{1.0}}),
                 util::InvalidArgument); // needs >= 2 benchmarks
    EXPECT_THROW(model.train(linalg::Matrix{{1.0}, {2.0}},
                             linalg::Matrix{{1.0}}),
                 util::InvalidArgument); // row mismatch
}

TEST(GaKnn, PredictValidation)
{
    ToyWorld world;
    baseline::GaKnnModel model(fastConfig());
    EXPECT_THROW(model.predictApp({0.0, 0.0}, world.characteristics,
                                  world.scores),
                 util::InvalidArgument); // not trained
    model.train(world.characteristics, world.scores);
    EXPECT_THROW(model.neighbors({0.0}, world.characteristics),
                 util::InvalidArgument); // wrong char count
    EXPECT_THROW(model.predictApp({0.0, 0.0}, world.characteristics,
                                  linalg::Matrix(2, 2, 1.0)),
                 util::InvalidArgument); // row mismatch
}

TEST(GaKnn, ConfigValidation)
{
    baseline::GaKnnConfig config = fastConfig();
    config.k = 0;
    EXPECT_THROW(baseline::GaKnnModel{config}, util::InvalidArgument);
}

TEST(GaKnnTransposition, AdapterPredictsViaModel)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 2; // the toy world has only six benchmarks
    auto model = std::make_shared<baseline::GaKnnModel>(config);
    model->train(world.characteristics, world.scores);

    // The adapter predicts the app (a group-A workload) on target
    // machines using only the candidate benchmarks.
    baseline::GaKnnTransposition adapter(
        model, world.characteristics, {0.02, 0.0});

    core::TranspositionProblem problem;
    problem.predictiveBenchScores = linalg::Matrix(6, 1, 1.0);
    problem.predictiveAppScores = {1.0};
    problem.targetBenchScores = world.scores;
    const auto pred = adapter.predict(problem);
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_LT(pred[0], 20.0); // group-A-like prediction
    EXPECT_EQ(adapter.name(), "GA-2NN");
}

TEST(GaKnnTransposition, AdapterValidation)
{
    ToyWorld world;
    auto untrained = std::make_shared<baseline::GaKnnModel>(fastConfig());
    EXPECT_THROW(baseline::GaKnnTransposition(
                     untrained, world.characteristics, {0.0, 0.0}),
                 util::InvalidArgument);
    EXPECT_THROW(baseline::GaKnnTransposition(
                     nullptr, world.characteristics, {0.0, 0.0}),
                 util::InvalidArgument);

    auto model = std::make_shared<baseline::GaKnnModel>(fastConfig());
    model->train(world.characteristics, world.scores);
    baseline::GaKnnTransposition adapter(model, world.characteristics,
                                         {0.0, 0.0});
    core::TranspositionProblem bad;
    bad.predictiveBenchScores = linalg::Matrix(2, 1, 1.0);
    bad.predictiveAppScores = {1.0};
    bad.targetBenchScores = linalg::Matrix(2, 1, 1.0);
    EXPECT_THROW(adapter.predict(bad), util::InvalidArgument);
}

} // namespace
