/**
 * @file
 * Unit tests for the GA-kNN baseline.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/ga_knn.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

baseline::GaKnnConfig
fastConfig()
{
    baseline::GaKnnConfig config;
    config.ga.populationSize = 12;
    config.ga.generations = 8;
    return config;
}

/**
 * A toy world with two workload groups living on one characteristic
 * axis: group A (characteristic 0) scores low, group B
 * (characteristic 1) scores high, on every machine.
 */
struct ToyWorld
{
    linalg::Matrix characteristics{
        {0.0, 0.0}, {0.05, 0.0}, {0.1, 0.0},   // group A
        {1.0, 0.0}, {0.95, 0.0}, {0.9, 0.0}};  // group B
    linalg::Matrix scores{
        {10, 20}, {11, 21}, {12, 22},           // group A scores
        {30, 60}, {31, 61}, {32, 62}};          // group B scores
};

TEST(GaKnn, TrainsAndExposesWeights)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 2;
    baseline::GaKnnModel model(config);
    EXPECT_FALSE(model.trained());
    EXPECT_THROW(model.weights(), util::InvalidArgument);
    model.train(world.characteristics, world.scores);
    EXPECT_TRUE(model.trained());
    ASSERT_EQ(model.weights().size(), 2u);
    for (double w : model.weights()) {
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
    }
    EXPECT_LE(model.trainingFitness(), 0.0);
}

TEST(GaKnn, NeighborsComeFromTheSameGroup)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 2;
    baseline::GaKnnModel model(config);
    model.train(world.characteristics, world.scores);

    // A query at the group-A end must pick group-A rows.
    const auto nn = model.neighbors({0.02, 0.0}, world.characteristics);
    ASSERT_EQ(nn.size(), 2u);
    EXPECT_LT(nn[0], 3u);
    EXPECT_LT(nn[1], 3u);

    // And at the group-B end, group-B rows.
    const auto nn_b =
        model.neighbors({0.97, 0.0}, world.characteristics);
    EXPECT_GE(nn_b[0], 3u);
    EXPECT_GE(nn_b[1], 3u);
}

TEST(GaKnn, PredictionAveragesNeighborScores)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 3;
    config.weighting = ml::KnnWeighting::Uniform;
    baseline::GaKnnModel model(config);
    model.train(world.characteristics, world.scores);

    const auto pred = model.predictApp({0.0, 0.0}, world.characteristics,
                                       world.scores);
    ASSERT_EQ(pred.size(), 2u);
    // Neighbors are the three group-A rows: mean scores (11, 21).
    EXPECT_NEAR(pred[0], 11.0, 1e-9);
    EXPECT_NEAR(pred[1], 21.0, 1e-9);
}

TEST(GaKnn, DeterministicGivenSeed)
{
    ToyWorld world;
    baseline::GaKnnModel a(fastConfig());
    baseline::GaKnnModel b(fastConfig());
    a.train(world.characteristics, world.scores);
    b.train(world.characteristics, world.scores);
    EXPECT_EQ(a.weights(), b.weights());
}

TEST(GaKnn, TrainValidation)
{
    baseline::GaKnnModel model(fastConfig());
    EXPECT_THROW(model.train(linalg::Matrix{{1.0}}, linalg::Matrix{{1.0}}),
                 util::InvalidArgument); // needs >= 2 benchmarks
    EXPECT_THROW(model.train(linalg::Matrix{{1.0}, {2.0}},
                             linalg::Matrix{{1.0}}),
                 util::InvalidArgument); // row mismatch
}

TEST(GaKnn, PredictValidation)
{
    ToyWorld world;
    baseline::GaKnnModel model(fastConfig());
    EXPECT_THROW(model.predictApp({0.0, 0.0}, world.characteristics,
                                  world.scores),
                 util::InvalidArgument); // not trained
    model.train(world.characteristics, world.scores);
    EXPECT_THROW(model.neighbors({0.0}, world.characteristics),
                 util::InvalidArgument); // wrong char count
    EXPECT_THROW(model.predictApp({0.0, 0.0}, world.characteristics,
                                  linalg::Matrix(2, 2, 1.0)),
                 util::InvalidArgument); // row mismatch
}

TEST(GaKnn, ConfigValidation)
{
    baseline::GaKnnConfig config = fastConfig();
    config.k = 0;
    EXPECT_THROW(baseline::GaKnnModel{config}, util::InvalidArgument);
}

/** Random world with the given benchmark/characteristic/machine shape. */
void
randomWorld(std::size_t benchmarks, std::size_t chars,
            std::size_t machines, std::uint64_t seed,
            linalg::Matrix &characteristics, linalg::Matrix &scores)
{
    util::Rng rng(seed);
    characteristics = linalg::Matrix(benchmarks, chars);
    scores = linalg::Matrix(benchmarks, machines);
    for (std::size_t b = 0; b < benchmarks; ++b) {
        for (std::size_t c = 0; c < chars; ++c)
            characteristics(b, c) = rng.uniform(0.0, 1.0);
        for (std::size_t m = 0; m < machines; ++m)
            scores(b, m) = rng.uniform(5.0, 50.0);
    }
}

TEST(GaKnn, StreamedFitnessMatchesPairTableBitForBit)
{
    // Force the streaming path by shrinking the pair-table budget to
    // nothing; the GA trajectory (and thus the weights) must be
    // bit-identical to the precomputed-table run.
    linalg::Matrix chars, scores;
    randomWorld(24, 5, 8, 99, chars, scores);

    baseline::GaKnnConfig table_config = fastConfig();
    table_config.k = 5;
    baseline::GaKnnConfig stream_config = table_config;
    stream_config.pairTableBudgetBytes = 1;

    baseline::GaKnnModel table_model(table_config);
    baseline::GaKnnModel stream_model(stream_config);
    table_model.train(chars, scores);
    stream_model.train(chars, scores);
    EXPECT_EQ(table_model.weights(), stream_model.weights());
    EXPECT_EQ(table_model.trainingFitness(),
              stream_model.trainingFitness());
}

TEST(GaKnn, ScaledSweepPredictMatchesReferenceBitForBit)
{
    linalg::Matrix chars, scores;
    randomWorld(24, 5, 401, 7, chars, scores);

    for (const auto weighting : {ml::KnnWeighting::Uniform,
                                 ml::KnnWeighting::InverseDistance}) {
        baseline::GaKnnConfig ref_config = fastConfig();
        ref_config.k = 6;
        ref_config.weighting = weighting;
        ref_config.sweepPredict = false;
        baseline::GaKnnModel reference(ref_config);
        reference.train(chars, scores);
        const std::vector<double> app = chars.row(0);
        const auto ref_pred =
            reference.predictApp(app, chars, scores, 0);

        for (const std::size_t tile : {1u, 7u, 64u, 4096u}) {
            for (const std::size_t threads : {1u, 4u, 0u}) {
                baseline::GaKnnConfig sweep_config = ref_config;
                sweep_config.sweepPredict = true;
                sweep_config.predictTile = tile;
                sweep_config.predictThreads = threads;
                baseline::GaKnnModel sweep(sweep_config);
                sweep.restore(reference.weights(),
                              reference.trainingFitness());
                const auto sweep_pred =
                    sweep.predictApp(app, chars, scores, 0);
                EXPECT_EQ(ref_pred, sweep_pred)
                    << "tile " << tile << " threads " << threads;
            }
        }
    }
}

TEST(GaKnnTransposition, AdapterPredictsViaModel)
{
    ToyWorld world;
    baseline::GaKnnConfig config = fastConfig();
    config.k = 2; // the toy world has only six benchmarks
    auto model = std::make_shared<baseline::GaKnnModel>(config);
    model->train(world.characteristics, world.scores);

    // The adapter predicts the app (a group-A workload) on target
    // machines using only the candidate benchmarks.
    baseline::GaKnnTransposition adapter(
        model, world.characteristics, {0.02, 0.0});

    core::TranspositionProblem problem;
    problem.predictiveBenchScores = linalg::Matrix(6, 1, 1.0);
    problem.predictiveAppScores = {1.0};
    problem.targetBenchScores = world.scores;
    const auto pred = adapter.predict(problem);
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_LT(pred[0], 20.0); // group-A-like prediction
    EXPECT_EQ(adapter.name(), "GA-2NN");
}

TEST(GaKnnTransposition, AdapterValidation)
{
    ToyWorld world;
    auto untrained = std::make_shared<baseline::GaKnnModel>(fastConfig());
    EXPECT_THROW(baseline::GaKnnTransposition(
                     untrained, world.characteristics, {0.0, 0.0}),
                 util::InvalidArgument);
    EXPECT_THROW(baseline::GaKnnTransposition(
                     nullptr, world.characteristics, {0.0, 0.0}),
                 util::InvalidArgument);

    auto model = std::make_shared<baseline::GaKnnModel>(fastConfig());
    model->train(world.characteristics, world.scores);
    baseline::GaKnnTransposition adapter(model, world.characteristics,
                                         {0.0, 0.0});
    core::TranspositionProblem bad;
    bad.predictiveBenchScores = linalg::Matrix(2, 1, 1.0);
    bad.predictiveAppScores = {1.0};
    bad.targetBenchScores = linalg::Matrix(2, 1, 1.0);
    EXPECT_THROW(adapter.predict(bad), util::InvalidArgument);
}

} // namespace
