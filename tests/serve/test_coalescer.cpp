/**
 * @file
 * Coalescer unit tests: micro-batching by key, hold-time behaviour,
 * admission-control shedding (oldest first), stop/drain semantics and
 * concurrent submit/consume — the suite the TSan job runs to pin the
 * queue's locking discipline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "serve/coalescer.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace dtrank::serve
{
namespace
{

CoalescerConfig
config(std::size_t depth, std::size_t batch_max,
       std::chrono::nanoseconds hold = std::chrono::milliseconds(50))
{
    CoalescerConfig cfg;
    cfg.queueDepth = depth;
    cfg.batchMax = batch_max;
    cfg.batchHold = hold;
    return cfg;
}

TEST(Coalescer, SameKeyItemsFormOneBatch)
{
    Coalescer<int> queue(config(16, 8), nullptr);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(queue.submit(7, i));
    const std::vector<int> batch = queue.nextBatch();
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(Coalescer, KeyZeroNeverCoalesces)
{
    Coalescer<int> queue(config(16, 8), nullptr);
    ASSERT_TRUE(queue.submit(0, 1));
    ASSERT_TRUE(queue.submit(0, 2));
    EXPECT_EQ(queue.nextBatch(), std::vector<int>{1});
    EXPECT_EQ(queue.nextBatch(), std::vector<int>{2});
}

TEST(Coalescer, DifferentKeysStaySeparate)
{
    Coalescer<int> queue(config(16, 8), nullptr);
    ASSERT_TRUE(queue.submit(1, 10));
    ASSERT_TRUE(queue.submit(2, 20));
    ASSERT_TRUE(queue.submit(1, 11));
    // The first batch picks up key 1 and skips over the key-2 item.
    EXPECT_EQ(queue.nextBatch(), (std::vector<int>{10, 11}));
    EXPECT_EQ(queue.nextBatch(), std::vector<int>{20});
}

TEST(Coalescer, BatchMaxBoundsTheBatch)
{
    Coalescer<int> queue(config(32, 3), nullptr);
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(queue.submit(5, i));
    EXPECT_EQ(queue.nextBatch().size(), 3u);
    EXPECT_EQ(queue.nextBatch().size(), 3u);
    EXPECT_EQ(queue.nextBatch().size(), 1u);
}

TEST(Coalescer, ShedsOldestWhenFull)
{
    std::vector<int> shed;
    Coalescer<int> queue(config(3, 1),
                         [&](int &&victim) { shed.push_back(victim); });
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(queue.submit(0, i));
    // Depth 3: items 0 and 1 (the oldest) must have been shed.
    EXPECT_EQ(shed, (std::vector<int>{0, 1}));
    EXPECT_EQ(queue.depth(), 3u);
    EXPECT_EQ(queue.nextBatch(), std::vector<int>{2});
}

TEST(Coalescer, SubmitAfterStopIsRefused)
{
    Coalescer<int> queue(config(4, 1), nullptr);
    ASSERT_TRUE(queue.submit(0, 1));
    queue.stop();
    EXPECT_FALSE(queue.submit(0, 2));
    // Queued work is still handed out after stop()...
    EXPECT_EQ(queue.nextBatch(), std::vector<int>{1});
    // ...and a drained stopped queue returns empty batches.
    EXPECT_TRUE(queue.nextBatch().empty());
}

TEST(Coalescer, DrainAndShedRefusesQueuedWork)
{
    std::vector<int> shed;
    Coalescer<int> queue(config(8, 1),
                         [&](int &&victim) { shed.push_back(victim); });
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(queue.submit(0, i));
    queue.drainAndShed();
    EXPECT_EQ(shed, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_TRUE(queue.nextBatch().empty());
}

TEST(Coalescer, HoldWindowCollectsStragglers)
{
    Coalescer<int> queue(config(16, 4, std::chrono::milliseconds(200)),
                         nullptr);
    ASSERT_TRUE(queue.submit(9, 0));
    std::atomic<bool> done{false};
    std::vector<int> batch;
    util::ThreadPool pool(1);
    util::TaskGroup group(pool);
    group.run([&] {
        batch = queue.nextBatch();
        done.store(true);
    });
    // The worker holds the partial batch open; stragglers submitted
    // within the window must join it.
    while (queue.depth() != 0)
        std::this_thread::yield();
    ASSERT_TRUE(queue.submit(9, 1));
    ASSERT_TRUE(queue.submit(9, 2));
    ASSERT_TRUE(queue.submit(9, 3)); // fills the batch, ends the hold
    group.wait();
    ASSERT_TRUE(done.load());
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Coalescer, ZeroHoldStillBatchesQueuedItems)
{
    Coalescer<int> queue(config(16, 8, std::chrono::nanoseconds(0)),
                         nullptr);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(queue.submit(3, i));
    // Everything already queued coalesces even with no hold window.
    EXPECT_EQ(queue.nextBatch().size(), 4u);
}

TEST(Coalescer, ConcurrentSubmittersAndWorkersLoseNothing)
{
    const std::size_t n_submitters = 4;
    const std::size_t per_submitter = 500;
    std::atomic<std::size_t> shed_count{0};
    Coalescer<std::uint64_t> queue(
        config(64, 8, std::chrono::microseconds(50)),
        [&](std::uint64_t &&) { shed_count.fetch_add(1); });

    std::set<std::uint64_t> received;
    util::Mutex received_mutex;
    util::ThreadPool pool(n_submitters + 2);
    util::TaskGroup group(pool);
    for (std::size_t s = 0; s < n_submitters; ++s) {
        group.run([&, s] {
            for (std::size_t i = 0; i < per_submitter; ++i)
                ASSERT_TRUE(queue.submit(
                    1 + (i % 3),
                    static_cast<std::uint64_t>(s * per_submitter + i)));
        });
    }
    std::atomic<bool> stop_workers{false};
    for (std::size_t w = 0; w < 2; ++w) {
        group.run([&] {
            while (true) {
                const std::vector<std::uint64_t> batch =
                    queue.nextBatch();
                if (batch.empty()) {
                    if (stop_workers.load())
                        return;
                    continue;
                }
                util::LockGuard lock(received_mutex);
                for (std::uint64_t v : batch)
                    received.insert(v);
            }
        });
    }
    // Drain: wait until every submitted item was received or shed.
    const std::size_t total = n_submitters * per_submitter;
    while (true) {
        {
            util::LockGuard lock(received_mutex);
            if (received.size() + shed_count.load() >= total)
                break;
        }
        std::this_thread::yield();
    }
    stop_workers.store(true);
    queue.stop();
    group.wait();
    util::LockGuard lock(received_mutex);
    EXPECT_EQ(received.size() + shed_count.load(), total);
}

} // namespace
} // namespace dtrank::serve
