/**
 * @file
 * RankEngine tests: the serve bit-identity contract (a request's
 * predictions equal the offline evaluateSplit entries exactly), the
 * coalesced executeBatch == per-request execute equivalence including
 * target-union deduplication, and per-request validation errors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "dataset/synthetic_spec.h"
#include "experiments/harness.h"
#include "linalg/matrix.h"
#include "serve/rank_engine.h"
#include "util/rng.h"

namespace dtrank::serve
{
namespace
{

class RankEngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        db_ = dataset::SyntheticSpecGenerator().generate();
        util::Rng rng(17);
        predictive_ =
            rng.sampleWithoutReplacement(db_.machineCount(), 10);
        std::sort(predictive_.begin(), predictive_.end());
        std::vector<char> owned(db_.machineCount(), 0);
        for (std::size_t m : predictive_)
            owned[m] = 1;
        for (std::size_t m = 0; m < db_.machineCount(); ++m)
            if (!owned[m])
                targets_.push_back(m);
        engine_ = std::make_unique<RankEngine>(db_, std::nullopt,
                                               RankEngineConfig{});
    }

    /** The wire form of the offline split for one method and app. */
    RankRequest
    makeRequest(experiments::Method method, std::uint32_t app) const
    {
        RankRequest request;
        request.method = method;
        request.app = app;
        for (std::size_t m : predictive_)
            request.predictive.emplace_back(
                static_cast<std::uint32_t>(m), db_.scores()(app, m));
        return request;
    }

    dataset::PerfDatabase db_;
    std::vector<std::size_t> predictive_;
    std::vector<std::size_t> targets_;
    std::unique_ptr<RankEngine> engine_;
};

TEST_F(RankEngineTest, MatchesOfflineEvaluateSplitBitForBit)
{
    const std::vector<experiments::Method> methods = {
        experiments::Method::NnT, experiments::Method::MlpT,
        experiments::Method::SplT, experiments::Method::MultiNnT};
    // GA-kNN is not under test; a zero characteristics matrix keeps the
    // evaluator constructible without one.
    const experiments::SplitEvaluator evaluator(
        db_, linalg::Matrix(db_.benchmarkCount(), 1),
        engine_->config().suite);
    const experiments::SplitResults reference =
        evaluator.evaluateSplit(predictive_, targets_, methods, 0);

    for (const experiments::Method method : methods) {
        const std::uint32_t app = 2;
        const RankOutcome outcome =
            engine_->execute(makeRequest(method, app));
        ASSERT_EQ(outcome.status, Status::Ok) << outcome.error;
        std::map<std::uint32_t, double> by_machine;
        for (const RankedMachine &r : outcome.ranking)
            by_machine[r.machine] = r.predicted;
        const std::vector<double> &expected =
            reference.at(method)[app].predicted;
        ASSERT_EQ(by_machine.size(), targets_.size());
        for (std::size_t t = 0; t < targets_.size(); ++t)
            EXPECT_EQ(by_machine.at(static_cast<std::uint32_t>(
                          targets_[t])),
                      expected[t])
                << experiments::methodName(method) << " target " << t;
    }
}

TEST_F(RankEngineTest, RankingSortedByScoreWithTopKTruncation)
{
    RankRequest request = makeRequest(experiments::Method::NnT, 0);
    request.topK = 3;
    const RankOutcome outcome = engine_->execute(request);
    ASSERT_EQ(outcome.status, Status::Ok) << outcome.error;
    ASSERT_EQ(outcome.ranking.size(), 3u);
    EXPECT_GE(outcome.ranking[0].predicted,
              outcome.ranking[1].predicted);
    EXPECT_GE(outcome.ranking[1].predicted,
              outcome.ranking[2].predicted);
}

TEST_F(RankEngineTest, BatchedExecutionIsBitIdentical)
{
    // Mixed subset requests of one session, with heavy target overlap
    // so the batch path's union deduplication is exercised.
    util::Rng rng(23);
    std::vector<RankRequest> batch;
    for (std::size_t i = 0; i < 12; ++i) {
        RankRequest request =
            makeRequest(experiments::Method::MlpT, 4);
        const std::size_t k = 1 + rng.index(8);
        std::vector<std::size_t> pick =
            rng.sampleWithoutReplacement(targets_.size(), k);
        std::sort(pick.begin(), pick.end());
        for (std::size_t p : pick)
            request.targets.push_back(
                static_cast<std::uint32_t>(targets_[p]));
        batch.push_back(std::move(request));
    }
    // Two full-universe requests: the common case the coalescer fuses.
    batch.push_back(makeRequest(experiments::Method::MlpT, 4));
    batch.push_back(makeRequest(experiments::Method::MlpT, 4));

    const std::vector<RankOutcome> batched =
        engine_->executeBatch(batch);
    ASSERT_EQ(batched.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const RankOutcome serial = engine_->execute(batch[i]);
        ASSERT_EQ(batched[i].status, Status::Ok) << batched[i].error;
        ASSERT_EQ(serial.ranking.size(), batched[i].ranking.size());
        for (std::size_t r = 0; r < serial.ranking.size(); ++r) {
            EXPECT_EQ(serial.ranking[r].machine,
                      batched[i].ranking[r].machine);
            EXPECT_EQ(serial.ranking[r].predicted,
                      batched[i].ranking[r].predicted);
        }
    }
}

TEST_F(RankEngineTest, BatchKeyGroupsOnlySameSessionMlp)
{
    const RankRequest mlp_a = makeRequest(experiments::Method::MlpT, 1);
    const RankRequest mlp_b = makeRequest(experiments::Method::MlpT, 1);
    const RankRequest mlp_other_app =
        makeRequest(experiments::Method::MlpT, 2);
    const RankRequest nn = makeRequest(experiments::Method::NnT, 1);
    EXPECT_NE(engine_->batchKey(mlp_a), 0u);
    EXPECT_EQ(engine_->batchKey(mlp_a), engine_->batchKey(mlp_b));
    EXPECT_NE(engine_->batchKey(mlp_a),
              engine_->batchKey(mlp_other_app));
    EXPECT_EQ(engine_->batchKey(nn), 0u);
}

TEST_F(RankEngineTest, MixedSessionBatchFallsBackPerRequest)
{
    // The coalescer keys batches on a 64-bit fold of the 128-bit
    // session hash, so a collision can hand executeBatch requests
    // from *different* sessions. Simulate one directly: the lead
    // request's session has 10 predictive machines while the foreign
    // request keeps only 3, so the foreign universe is *larger* than
    // the lead's and its whole-universe positions would index past
    // the lead-sized slot table if the coalesced path trusted the key.
    std::vector<RankRequest> batch;
    batch.push_back(makeRequest(experiments::Method::MlpT, 4));
    RankRequest foreign = makeRequest(experiments::Method::MlpT, 4);
    foreign.predictive.resize(3);
    batch.push_back(std::move(foreign));
    batch.push_back(makeRequest(experiments::Method::MlpT, 4));

    const std::vector<RankOutcome> batched =
        engine_->executeBatch(batch);
    ASSERT_EQ(batched.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(batched[i].status, Status::Ok) << batched[i].error;
        const RankOutcome serial = engine_->execute(batch[i]);
        ASSERT_EQ(serial.ranking.size(), batched[i].ranking.size());
        for (std::size_t r = 0; r < serial.ranking.size(); ++r) {
            EXPECT_EQ(serial.ranking[r].machine,
                      batched[i].ranking[r].machine);
            EXPECT_EQ(serial.ranking[r].predicted,
                      batched[i].ranking[r].predicted);
        }
    }
    // The two same-session requests rank the lead universe; the
    // foreign session's is bigger by the 7 machines it freed up.
    EXPECT_EQ(batched[1].ranking.size(),
              batched[0].ranking.size() + 7);
}

TEST_F(RankEngineTest, InvalidRequestsFailIndividually)
{
    // Out-of-range app.
    RankRequest bad_app = makeRequest(experiments::Method::NnT, 0);
    bad_app.app = 10000;
    EXPECT_EQ(engine_->execute(bad_app).status, Status::Error);

    // Target inside the predictive set.
    RankRequest bad_target = makeRequest(experiments::Method::NnT, 0);
    bad_target.targets = {
        static_cast<std::uint32_t>(predictive_.front())};
    EXPECT_EQ(engine_->execute(bad_target).status, Status::Error);

    // Duplicate predictive machine.
    RankRequest dup = makeRequest(experiments::Method::NnT, 0);
    dup.predictive.push_back(dup.predictive.front());
    EXPECT_EQ(engine_->execute(dup).status, Status::Error);

    // Non-finite partial score.
    RankRequest nan_score = makeRequest(experiments::Method::NnT, 0);
    nan_score.predictive.front().second = -1.0;
    EXPECT_EQ(engine_->execute(nan_score).status, Status::Error);

    // GA-kNN without characteristics must error, not crash.
    EXPECT_EQ(engine_->execute(
                       makeRequest(experiments::Method::GaKnn, 0))
                  .status,
              Status::Error);

    // In a batch, one bad request must not poison the others.
    std::vector<RankRequest> batch;
    batch.push_back(makeRequest(experiments::Method::MlpT, 3));
    RankRequest bad = makeRequest(experiments::Method::MlpT, 3);
    bad.targets = {static_cast<std::uint32_t>(predictive_.front())};
    batch.push_back(std::move(bad));
    batch.push_back(makeRequest(experiments::Method::MlpT, 3));
    const std::vector<RankOutcome> outcomes =
        engine_->executeBatch(batch);
    EXPECT_EQ(outcomes[0].status, Status::Ok);
    EXPECT_EQ(outcomes[1].status, Status::Error);
    EXPECT_EQ(outcomes[2].status, Status::Ok);
}

} // namespace
} // namespace dtrank::serve
