/**
 * @file
 * Wire-protocol unit tests: encode/decode round trips for every
 * message type, and defensive decoding — truncated payloads, bad
 * counts, unknown types and oversized length prefixes must throw
 * ProtocolError, never crash or over-read.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/protocol.h"

namespace dtrank::serve
{
namespace
{

Request
sampleRankRequest()
{
    Request request;
    request.type = MessageType::Rank;
    request.id = 0x1122334455667788ULL;
    request.rank.method = experiments::Method::MlpT;
    request.rank.app = 7;
    request.rank.topK = 5;
    request.rank.predictive = {{3, 12.5}, {9, 0.25}, {41, 7.75}};
    request.rank.targets = {1, 2, 8, 100};
    return request;
}

TEST(ServeProtocol, PingRoundTrip)
{
    Request ping;
    ping.type = MessageType::Ping;
    ping.id = 42;
    const std::vector<std::uint8_t> bytes = encodeRequest(ping);
    const Request decoded = decodeRequest(bytes.data(), bytes.size());
    EXPECT_EQ(decoded.type, MessageType::Ping);
    EXPECT_EQ(decoded.id, 42u);
}

TEST(ServeProtocol, RankRequestRoundTrip)
{
    const Request request = sampleRankRequest();
    const std::vector<std::uint8_t> bytes = encodeRequest(request);
    const Request decoded = decodeRequest(bytes.data(), bytes.size());
    EXPECT_EQ(decoded.type, MessageType::Rank);
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.rank.method, request.rank.method);
    EXPECT_EQ(decoded.rank.app, request.rank.app);
    EXPECT_EQ(decoded.rank.topK, request.rank.topK);
    EXPECT_EQ(decoded.rank.predictive, request.rank.predictive);
    EXPECT_EQ(decoded.rank.targets, request.rank.targets);
}

TEST(ServeProtocol, RankResponseRoundTrip)
{
    Response response;
    response.type = MessageType::Rank;
    response.id = 9;
    response.status = Status::Ok;
    response.ranking = {{17, 25.75}, {4, 12.5}, {200, 0.125}};
    const std::vector<std::uint8_t> bytes = encodeResponse(response);
    const Response decoded = decodeResponse(bytes.data(), bytes.size());
    EXPECT_EQ(decoded.id, 9u);
    EXPECT_EQ(decoded.status, Status::Ok);
    ASSERT_EQ(decoded.ranking.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(decoded.ranking[i].machine,
                  response.ranking[i].machine);
        EXPECT_EQ(decoded.ranking[i].predicted,
                  response.ranking[i].predicted);
    }
}

TEST(ServeProtocol, ErrorResponseCarriesMessage)
{
    Response response;
    response.type = MessageType::Rank;
    response.id = 3;
    response.status = Status::Error;
    response.text = "unknown model id";
    const std::vector<std::uint8_t> bytes = encodeResponse(response);
    const Response decoded = decodeResponse(bytes.data(), bytes.size());
    EXPECT_EQ(decoded.status, Status::Error);
    EXPECT_EQ(decoded.text, "unknown model id");
}

TEST(ServeProtocol, EmptyPayloadThrows)
{
    EXPECT_THROW(decodeRequest(nullptr, 0), ProtocolError);
}

TEST(ServeProtocol, UnknownMessageTypeThrows)
{
    std::vector<std::uint8_t> bytes = encodeRequest(sampleRankRequest());
    bytes[0] = 0xEE;
    EXPECT_THROW(decodeRequest(bytes.data(), bytes.size()),
                 ProtocolError);
}

TEST(ServeProtocol, UnknownMethodThrows)
{
    Request request = sampleRankRequest();
    const std::vector<std::uint8_t> good = encodeRequest(request);
    std::vector<std::uint8_t> bytes = good;
    // Method byte follows the type (1) and id (8).
    bytes[9] = 0x7F;
    EXPECT_THROW(decodeRequest(bytes.data(), bytes.size()),
                 ProtocolError);
}

TEST(ServeProtocol, EveryTruncationThrows)
{
    const std::vector<std::uint8_t> bytes =
        encodeRequest(sampleRankRequest());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
        EXPECT_THROW(decodeRequest(bytes.data(), cut), ProtocolError)
            << "truncation at byte " << cut << " must throw";
}

TEST(ServeProtocol, TrailingGarbageThrows)
{
    std::vector<std::uint8_t> bytes =
        encodeRequest(sampleRankRequest());
    bytes.push_back(0x00);
    EXPECT_THROW(decodeRequest(bytes.data(), bytes.size()),
                 ProtocolError);
}

TEST(ServeProtocol, OverstatedCountThrows)
{
    Request request = sampleRankRequest();
    request.rank.predictive.clear();
    request.rank.targets.clear();
    std::vector<std::uint8_t> bytes = encodeRequest(request);
    // The u16 predictive count sits after type(1) + id(8) + method(1)
    // + app(4) + topK(4); claim 65535 machines with no bytes behind it.
    bytes[18] = 0xFF;
    bytes[19] = 0xFF;
    EXPECT_THROW(decodeRequest(bytes.data(), bytes.size()),
                 ProtocolError);
}

TEST(ServeProtocol, FrameReaderSplitsBackToBackFrames)
{
    std::vector<std::uint8_t> stream;
    const std::vector<std::uint8_t> a =
        encodeRequest(sampleRankRequest());
    Request ping;
    ping.type = MessageType::Ping;
    ping.id = 2;
    const std::vector<std::uint8_t> b = encodeRequest(ping);
    appendFrame(stream, a);
    appendFrame(stream, b);

    FrameReader reader;
    std::vector<std::uint8_t> payload;
    // Feed byte by byte: a frame must complete exactly once all its
    // bytes arrived, regardless of fragmentation.
    std::size_t complete = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        reader.feed(&stream[i], 1);
        while (reader.next(payload)) {
            ++complete;
            if (complete == 1)
                EXPECT_EQ(payload, a);
            else
                EXPECT_EQ(payload, b);
        }
    }
    EXPECT_EQ(complete, 2u);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ServeProtocol, FrameReaderRejectsOversizedPrefix)
{
    // 0xFFFFFFFF length prefix: must throw on the prefix alone,
    // before any body is buffered.
    const std::uint8_t prefix[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    FrameReader reader;
    reader.feed(prefix, sizeof prefix);
    std::vector<std::uint8_t> payload;
    EXPECT_THROW(reader.next(payload), ProtocolError);
}

TEST(ServeProtocol, FrameReaderRejectsZeroLengthFrame)
{
    const std::uint8_t prefix[4] = {0, 0, 0, 0};
    FrameReader reader;
    reader.feed(prefix, sizeof prefix);
    std::vector<std::uint8_t> payload;
    EXPECT_THROW(reader.next(payload), ProtocolError);
}

TEST(ServeProtocol, FrameReaderWaitsForPartialFrame)
{
    std::vector<std::uint8_t> stream;
    appendFrame(stream, encodeRequest(sampleRankRequest()));
    FrameReader reader;
    reader.feed(stream.data(), stream.size() - 1);
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(reader.next(payload));
    reader.feed(stream.data() + stream.size() - 1, 1);
    EXPECT_TRUE(reader.next(payload));
}

} // namespace
} // namespace dtrank::serve
