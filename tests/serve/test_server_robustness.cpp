/**
 * @file
 * End-to-end daemon robustness tests over real sockets: malformed
 * frames, oversized length prefixes, truncated writes, mid-request
 * disconnects and validation failures must never crash or wedge the
 * server — after every abuse the daemon still answers a fresh
 * connection. The TSan CI job runs these to exercise the io/worker
 * hand-off under a race detector.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "dataset/synthetic_spec.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/rng.h"

namespace dtrank::serve
{
namespace
{

class ServeRobustness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        db_ = dataset::SyntheticSpecGenerator().generate();
        util::Rng rng(5);
        predictive_ = rng.sampleWithoutReplacement(db_.machineCount(), 8);
        engine_ = std::make_unique<RankEngine>(db_, std::nullopt,
                                               RankEngineConfig{});
        ServerConfig config;
        config.workers = 2;
        config.coalescer.batchHold = std::chrono::milliseconds(1);
        server_ = std::make_unique<Server>(*engine_, config);
        server_->start();
        port_ = server_->port();
    }

    void
    TearDown() override
    {
        server_->stop();
    }

    Request
    rankRequest(std::uint64_t id,
                experiments::Method method = experiments::Method::NnT)
    {
        Request request;
        request.type = MessageType::Rank;
        request.id = id;
        request.rank.method = method;
        request.rank.app = 1;
        request.rank.topK = 3;
        for (std::size_t m : predictive_)
            request.rank.predictive.emplace_back(
                static_cast<std::uint32_t>(m), db_.scores()(1, m));
        return request;
    }

    /** The server must still answer a fresh connection. */
    void
    expectServerAlive()
    {
        BlockingClient client;
        client.connect("127.0.0.1", port_);
        Request ping;
        ping.type = MessageType::Ping;
        ping.id = 99;
        client.sendRequest(ping);
        const Response pong = client.readResponse();
        EXPECT_EQ(pong.id, 99u);
        EXPECT_EQ(pong.status, Status::Ok);
    }

    /**
     * Reads until the peer closes; true when an Error response was
     * seen first. The server sends a best-effort error frame before
     * closing an abusive connection, but the test must not depend on
     * that write racing ahead of the close.
     */
    bool
    sawErrorThenEof(BlockingClient &client)
    {
        bool saw_error = false;
        try {
            for (;;) {
                const Response response = client.readResponse();
                if (response.status != Status::Ok)
                    saw_error = true;
            }
        } catch (const util::IoError &) {
            // Peer closed: the expected terminal state.
        }
        return saw_error;
    }

    dataset::PerfDatabase db_;
    std::vector<std::size_t> predictive_;
    std::unique_ptr<RankEngine> engine_;
    std::unique_ptr<Server> server_;
    std::uint16_t port_ = 0;
};

TEST_F(ServeRobustness, MalformedPayloadGetsErrorAndClose)
{
    BlockingClient client;
    client.connect("127.0.0.1", port_);
    // A well-framed payload that cannot decode (unknown message type).
    std::vector<std::uint8_t> stream;
    appendFrame(stream, {0xEE, 0x01, 0x02, 0x03});
    client.sendBytes(stream.data(), stream.size());
    client.shutdownWrite();
    sawErrorThenEof(client);
    expectServerAlive();
}

TEST_F(ServeRobustness, TruncatedRankPayloadGetsErrorAndClose)
{
    BlockingClient client;
    client.connect("127.0.0.1", port_);
    // A frame whose length prefix is honest but whose rank body is cut
    // short: decodes must fail, the connection must be dropped.
    std::vector<std::uint8_t> good = encodeRequest(rankRequest(1));
    good.resize(good.size() / 2);
    std::vector<std::uint8_t> stream;
    appendFrame(stream, good);
    client.sendBytes(stream.data(), stream.size());
    client.shutdownWrite();
    sawErrorThenEof(client);
    expectServerAlive();
}

TEST_F(ServeRobustness, OversizedLengthPrefixClosesConnection)
{
    BlockingClient client;
    client.connect("127.0.0.1", port_);
    const std::uint8_t prefix[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    client.sendBytes(prefix, sizeof prefix);
    sawErrorThenEof(client);
    expectServerAlive();
}

TEST_F(ServeRobustness, PartialFrameThenDisconnectIsHarmless)
{
    {
        BlockingClient client;
        client.connect("127.0.0.1", port_);
        std::vector<std::uint8_t> stream;
        appendFrame(stream, encodeRequest(rankRequest(1)));
        // Leave the frame dangling mid-body and vanish.
        client.sendBytes(stream.data(), stream.size() - 3);
    }
    expectServerAlive();
}

TEST_F(ServeRobustness, DisconnectAfterSendDropsPendingResponses)
{
    // Fire requests and disconnect without reading: the worker's write
    // fails against a dead socket and must only drop the responses.
    {
        BlockingClient client;
        client.connect("127.0.0.1", port_);
        for (std::uint64_t i = 0; i < 8; ++i)
            client.sendRequest(rankRequest(i));
    }
    expectServerAlive();
}

TEST_F(ServeRobustness, UnknownModelIdFailsOnHealthyConnection)
{
    BlockingClient client;
    client.connect("127.0.0.1", port_);
    // GA-kNN is not loaded in this fixture: a validation error, so the
    // connection must survive and keep serving.
    client.sendRequest(rankRequest(7, experiments::Method::GaKnn));
    const Response error = client.readResponse();
    EXPECT_EQ(error.id, 7u);
    EXPECT_EQ(error.status, Status::Error);
    EXPECT_FALSE(error.text.empty());

    client.sendRequest(rankRequest(8));
    const Response ok = client.readResponse();
    EXPECT_EQ(ok.id, 8u);
    EXPECT_EQ(ok.status, Status::Ok);
    EXPECT_EQ(ok.ranking.size(), 3u);
}

TEST_F(ServeRobustness, InvalidAppIndexFailsOnHealthyConnection)
{
    BlockingClient client;
    client.connect("127.0.0.1", port_);
    Request bad = rankRequest(11);
    bad.rank.app = 100000;
    client.sendRequest(bad);
    const Response error = client.readResponse();
    EXPECT_EQ(error.status, Status::Error);

    client.sendRequest(rankRequest(12));
    EXPECT_EQ(client.readResponse().status, Status::Ok);
}

TEST_F(ServeRobustness, StopShedsQueuedWorkAndUnblocksClients)
{
    BlockingClient client;
    client.connect("127.0.0.1", port_);
    for (std::uint64_t i = 0; i < 4; ++i)
        client.sendRequest(rankRequest(i));
    server_->stop();
    // Every queued request was either answered or shed with a close;
    // the client must observe responses and/or EOF, never a hang.
    try {
        for (;;) {
            const Response response = client.readResponse();
            EXPECT_TRUE(response.status == Status::Ok ||
                        response.status == Status::Overloaded);
        }
    } catch (const util::IoError &) {
        // EOF after shutdown.
    }
    EXPECT_FALSE(server_->running());
}

} // namespace
} // namespace dtrank::serve
