/**
 * @file
 * Tests for the trace span layer: the disabled fast path records
 * nothing, enabled spans capture name/category/duration/args, events
 * survive concurrent recording from pool workers, and the Chrome
 * trace_event JSON rendering is structurally sound.
 */

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace
{

using namespace dtrank;

TEST(ObsTrace, DisabledCollectorRecordsNothing)
{
    obs::TraceCollector collector;
    {
        obs::TraceSpan span("noop", "test", &collector);
        EXPECT_FALSE(span.active());
        span.arg("ignored", std::string("value"));
    }
    EXPECT_EQ(collector.eventCount(), 0u);
}

TEST(ObsTrace, EnabledSpanRecordsNameCategoryAndArgs)
{
    obs::TraceCollector collector;
    collector.enable();
    {
        obs::TraceSpan span("unit_span", "test", &collector);
        EXPECT_TRUE(span.active());
        span.arg("rows", std::uint64_t{42});
        span.arg("mode", std::string("fast"));
    }
    collector.disable();

    const std::vector<obs::TraceEvent> events = collector.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "unit_span");
    EXPECT_EQ(events[0].category, "test");
    ASSERT_EQ(events[0].args.size(), 2u);
    EXPECT_EQ(events[0].args[0].first, "rows");
    EXPECT_EQ(events[0].args[0].second, "42");
    EXPECT_EQ(events[0].args[1].first, "mode");
    EXPECT_EQ(events[0].args[1].second, "fast");
}

TEST(ObsTrace, SpansStartedBeforeDisableStillRecord)
{
    // A span snapshots the collector state at construction; flipping
    // the switch mid-span must not tear the event.
    obs::TraceCollector collector;
    collector.enable();
    {
        obs::TraceSpan span("late", "test", &collector);
        collector.disable();
    }
    EXPECT_EQ(collector.eventCount(), 1u);
}

TEST(ObsTrace, ConcurrentSpansFromPoolWorkersAllArrive)
{
    obs::TraceCollector collector;
    collector.enable();
    {
        util::ThreadPool pool(8);
        std::vector<std::future<void>> done;
        for (int i = 0; i < 64; ++i)
            done.push_back(pool.submit([&collector] {
                obs::TraceSpan span("worker_span", "test", &collector);
            }));
        for (auto &f : done)
            f.get();
    }
    collector.disable();
    EXPECT_EQ(collector.eventCount(), 64u);
}

TEST(ObsTrace, ClearDropsBufferedEvents)
{
    obs::TraceCollector collector;
    collector.enable();
    {
        obs::TraceSpan span("gone", "test", &collector);
    }
    ASSERT_EQ(collector.eventCount(), 1u);
    collector.clear();
    EXPECT_EQ(collector.eventCount(), 0u);
}

TEST(ObsTrace, ToJsonEmitsCompleteEventsWithMicrosecondUnits)
{
    obs::TraceCollector collector;
    obs::TraceEvent event;
    event.name = "quoted \"name\"";
    event.category = "test";
    event.startNanos = 2500;
    event.durationNanos = 1500;
    event.tid = 3;
    event.args.emplace_back("k", "v");
    collector.record(event);

    const std::string json = collector.toJson();
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"quoted \\\"name\\\"\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"k\": \"v\"}"), std::string::npos);
}

TEST(ObsTrace, EmptyCollectorStillRendersAValidDocument)
{
    obs::TraceCollector collector;
    EXPECT_EQ(collector.toJson(), "{\"traceEvents\": [\n]}\n");
}

} // namespace
