/**
 * @file
 * Tests for the obs_check validators: real exporter output (registry
 * scrape, trace collector JSON, metrics JSON) passes clean, each
 * violation class is reported, the checked-in malformed fixtures are
 * rejected, and checkDocument dispatches by path and top-level key.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs_check.h"
#include "util/bench_json.h"

namespace
{

using namespace dtrank;
using obs_check::checkChromeTrace;
using obs_check::checkDocument;
using obs_check::checkMetricsJson;
using obs_check::checkPrometheusText;

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(DTRANK_OBS_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool
hasErrorContaining(const std::vector<std::string> &errors,
                   const std::string &needle)
{
    for (const std::string &error : errors)
        if (error.find(needle) != std::string::npos)
            return true;
    return false;
}

/** A registry exercising every metric kind, including labeled series. */
obs::MetricsRegistry &
populatedRegistry()
{
    static obs::MetricsRegistry registry;
    static bool once = [] {
        registry.counter("dtrank_check_total", "events").inc(3);
        registry.counter("dtrank_check_sharded_total{shard=\"0\"}")
            .inc();
        registry.gauge("dtrank_check_depth", "queue depth").add(-1);
        obs::Histogram &h = registry.histogram(
            "dtrank_check_seconds", obs::defaultLatencyBounds(),
            "latency");
        h.observe(1e-5);
        h.observe(0.3);
        h.observe(42.0);
        return true;
    }();
    (void)once;
    return registry;
}

TEST(ObsCheck, RealRegistryScrapePassesClean)
{
    const std::vector<std::string> errors =
        checkPrometheusText(populatedRegistry().scrapePrometheus());
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());
}

TEST(ObsCheck, RealMetricsJsonPassesClean)
{
    util::BenchJsonWriter json("metrics");
    populatedRegistry().exportTo(json);
    const std::vector<std::string> errors =
        checkMetricsJson(json.toJson());
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());
}

TEST(ObsCheck, RealTraceCollectorOutputPassesClean)
{
    obs::TraceCollector collector;
    collector.enable();
    {
        obs::TraceSpan span("check_span", "test", &collector);
        span.arg("k", std::string("v"));
    }
    {
        obs::TraceSpan plain("plain_span", "test", &collector);
    }
    collector.disable();
    const std::vector<std::string> errors =
        checkChromeTrace(collector.toJson());
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());
}

TEST(ObsCheck, BadMetricsFixtureReportsEveryViolationClass)
{
    const auto errors =
        checkPrometheusText(readFixture("bad_metrics.prom"));
    EXPECT_TRUE(hasErrorContaining(errors, "is negative"));
    EXPECT_TRUE(hasErrorContaining(errors, "no preceding # TYPE"));
    EXPECT_TRUE(
        hasErrorContaining(errors, "bucket bounds are not increasing"));
    EXPECT_TRUE(
        hasErrorContaining(errors, "bucket counts are not cumulative"));
    EXPECT_TRUE(hasErrorContaining(errors, "le=\"+Inf\""));
    EXPECT_TRUE(hasErrorContaining(errors, "missing _count"));
}

TEST(ObsCheck, BadTraceFixtureReportsEveryViolationClass)
{
    const auto errors = checkChromeTrace(readFixture("bad_trace.json"));
    EXPECT_TRUE(hasErrorContaining(errors, "missing name"));
    EXPECT_TRUE(hasErrorContaining(errors, "ts is negative"));
    EXPECT_TRUE(
        hasErrorContaining(errors, "not a one-character phase"));
    EXPECT_TRUE(hasErrorContaining(errors, "tid is not a number"));
}

TEST(ObsCheck, HistogramWithoutSumOrBareSampleIsRejected)
{
    const auto missing_sum = checkPrometheusText(
        "# TYPE h_seconds histogram\n"
        "h_seconds_bucket{le=\"+Inf\"} 2\n"
        "h_seconds_count 2\n");
    EXPECT_TRUE(hasErrorContaining(missing_sum, "missing _sum"));

    const auto bare = checkPrometheusText(
        "# TYPE h_seconds histogram\n"
        "h_seconds 2\n");
    EXPECT_TRUE(hasErrorContaining(bare, "bare sample"));
}

TEST(ObsCheck, CountDisagreeingWithInfBucketIsRejected)
{
    const auto errors = checkPrometheusText(
        "# TYPE h_seconds histogram\n"
        "h_seconds_bucket{le=\"1\"} 1\n"
        "h_seconds_bucket{le=\"+Inf\"} 2\n"
        "h_seconds_sum 1.5\n"
        "h_seconds_count 9\n");
    EXPECT_TRUE(hasErrorContaining(errors, "_count disagrees"));
}

TEST(ObsCheck, MalformedSampleLinesAreRejected)
{
    EXPECT_TRUE(hasErrorContaining(
        checkPrometheusText("# TYPE a counter\na\n"),
        "missing value"));
    EXPECT_TRUE(hasErrorContaining(
        checkPrometheusText("# TYPE a counter\na not_a_number\n"),
        "unparseable value"));
    EXPECT_TRUE(hasErrorContaining(
        checkPrometheusText("# TYPE a counter\na{x=unquoted} 1\n"),
        "not quoted"));
    EXPECT_TRUE(hasErrorContaining(
        checkPrometheusText("9bad_name 1\n"), "invalid metric name"));
    EXPECT_TRUE(hasErrorContaining(checkPrometheusText(""),
                                   "no samples"));
}

TEST(ObsCheck, TraceDocumentShapeErrorsAreRejected)
{
    EXPECT_TRUE(hasErrorContaining(checkChromeTrace("[1, 2]"),
                                   "not an object"));
    EXPECT_TRUE(hasErrorContaining(checkChromeTrace("{\"a\": 1}"),
                                   "missing traceEvents"));
    EXPECT_TRUE(hasErrorContaining(
        checkChromeTrace("{\"traceEvents\": 3}"), "not an array"));
    EXPECT_TRUE(hasErrorContaining(checkChromeTrace("{nope"),
                                   "malformed JSON"));
}

TEST(ObsCheck, MetricsJsonShapeErrorsAreRejected)
{
    EXPECT_TRUE(hasErrorContaining(
        checkMetricsJson("{\"benchmark\": \"m\"}"),
        "missing 'records' array"));
    EXPECT_TRUE(hasErrorContaining(
        checkMetricsJson("{\"benchmark\": \"m\", \"records\": "
                         "[{\"name\": \"x\", \"real_time_ms\": 0, "
                         "\"metric_type\": \"bogus\"}]}"),
        "unknown metric_type"));
    EXPECT_TRUE(hasErrorContaining(
        checkMetricsJson("{\"benchmark\": \"m\", \"records\": "
                         "[{\"real_time_ms\": 0}]}"),
        "missing string 'name'"));
}

TEST(ObsCheck, CheckDocumentDispatchesByPathAndTopLevelKey)
{
    // Prometheus text under a non-.json path.
    EXPECT_TRUE(checkDocument("out/metrics.prom",
                              "# TYPE a counter\na 1\n")
                    .empty());
    // Trace vs metrics JSON are routed by their top-level key.
    EXPECT_TRUE(
        checkDocument("out/trace.json", "{\"traceEvents\": []}")
            .empty());
    EXPECT_TRUE(checkDocument("out/metrics.json",
                              "{\"benchmark\": \"metrics\", "
                              "\"records\": []}")
                    .empty());
    EXPECT_TRUE(hasErrorContaining(
        checkDocument("out/other.json", "{\"a\": 1}"),
        "unrecognized JSON document"));
    EXPECT_TRUE(hasErrorContaining(checkDocument("out/bad.json", "{"),
                                   "malformed JSON"));
}

} // namespace
