/**
 * @file
 * Tests for the obs metrics primitives and registry: per-thread slot
 * merging under a real ThreadPool, histogram `le` bucket semantics,
 * registry kind checking, and the Prometheus text export (family
 * grouping, label ordering, cumulative buckets).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/bench_json.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace
{

using namespace dtrank;

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

TEST(ObsMetrics, CounterMergesAcrossPoolThreads)
{
    obs::Counter counter;
    {
        util::ThreadPool pool(8);
        std::vector<std::future<void>> done;
        for (int i = 0; i < 64; ++i)
            done.push_back(pool.submit([&counter] {
                for (int k = 0; k < 100; ++k)
                    counter.inc();
            }));
        for (auto &f : done)
            f.get();
    }
    // The non-pool calling thread lands in slot 0 and merges too.
    counter.inc(36);
    EXPECT_EQ(counter.value(), 64u * 100u + 36u);
}

TEST(ObsMetrics, GaugeMergesSignedDeltasAcrossPoolThreads)
{
    obs::Gauge gauge;
    {
        util::ThreadPool pool(4);
        std::vector<std::future<void>> done;
        for (int i = 0; i < 32; ++i)
            done.push_back(pool.submit([&gauge] {
                gauge.add(5);
                gauge.add(-3);
            }));
        for (auto &f : done)
            f.get();
    }
    EXPECT_EQ(gauge.value(), 32 * 2);
}

TEST(ObsMetrics, HistogramMergesObservationsAcrossPoolThreads)
{
    obs::Histogram hist(obs::defaultLatencyBounds());
    {
        util::ThreadPool pool(8);
        std::vector<std::future<void>> done;
        for (int i = 0; i < 48; ++i)
            done.push_back(pool.submit([&hist] {
                hist.observe(1e-5);
                hist.observe(0.5);
            }));
        for (auto &f : done)
            f.get();
    }
    EXPECT_EQ(hist.count(), 96u);
    EXPECT_DOUBLE_EQ(hist.sum(), 48 * (1e-5 + 0.5));
}

TEST(ObsMetrics, HistogramBucketBoundariesAreLeInclusive)
{
    obs::Histogram hist({1.0, 2.0, 4.0});
    hist.observe(0.5);   // bucket 0
    hist.observe(1.0);   // bucket 0: `le` means value <= bound
    hist.observe(1.5);   // bucket 1
    hist.observe(4.0);   // bucket 2
    hist.observe(100.0); // +Inf overflow
    ASSERT_EQ(hist.bucketCount(), 4u);
    EXPECT_EQ(hist.bucketValue(0), 2u);
    EXPECT_EQ(hist.bucketValue(1), 1u);
    EXPECT_EQ(hist.bucketValue(2), 1u);
    EXPECT_EQ(hist.bucketValue(3), 1u);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(ObsMetrics, HistogramRejectsNonAscendingBounds)
{
    EXPECT_THROW(obs::Histogram({2.0, 1.0}), util::Error);
    EXPECT_THROW(obs::Histogram({1.0, 1.0}), util::Error);
}

TEST(ObsMetrics, RegistryReturnsStableHandlesAndChecksKinds)
{
    obs::MetricsRegistry registry;
    obs::Counter &a = registry.counter("dtrank_test_total", "help");
    obs::Counter &b = registry.counter("dtrank_test_total");
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(registry.gauge("dtrank_test_total"), util::Error);
    EXPECT_THROW(registry.histogram("dtrank_test_total", {1.0}),
                 util::Error);

    obs::Histogram &h =
        registry.histogram("dtrank_test_seconds", {0.5, 1.0});
    // Bounds are fixed by the first registration.
    obs::Histogram &h2 =
        registry.histogram("dtrank_test_seconds", {9.0});
    EXPECT_EQ(&h, &h2);
    EXPECT_EQ(h2.upperBounds(), (std::vector<double>{0.5, 1.0}));
}

TEST(ObsMetrics, ScrapeEmitsCumulativeHistogramFamilies)
{
    obs::MetricsRegistry registry;
    registry.counter("dtrank_a_total", "events").inc(3);
    obs::Histogram &h =
        registry.histogram("dtrank_b_seconds", {0.1, 1.0}, "latency");
    h.observe(0.05);
    h.observe(0.5);
    h.observe(5.0);

    const std::string text = registry.scrapePrometheus();
    EXPECT_NE(text.find("# TYPE dtrank_a_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("dtrank_a_total 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE dtrank_b_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("dtrank_b_seconds_bucket{le=\"0.1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("dtrank_b_seconds_bucket{le=\"1\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("dtrank_b_seconds_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("dtrank_b_seconds_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("dtrank_b_seconds_sum"), std::string::npos);
}

TEST(ObsMetrics, LabeledSeriesShareOneFamilyHeader)
{
    obs::MetricsRegistry registry;
    registry.counter("dtrank_l_total{shard=\"1\"}", "sharded").inc();
    registry.counter("dtrank_l_total{shard=\"0\"}", "sharded").inc(2);

    const std::string text = registry.scrapePrometheus();
    EXPECT_EQ(countOccurrences(text, "# TYPE dtrank_l_total counter"),
              1u);
    // Series are sorted by label within the family.
    const std::size_t s0 = text.find("dtrank_l_total{shard=\"0\"} 2");
    const std::size_t s1 = text.find("dtrank_l_total{shard=\"1\"} 1");
    ASSERT_NE(s0, std::string::npos);
    ASSERT_NE(s1, std::string::npos);
    EXPECT_LT(s0, s1);
}

TEST(ObsMetrics, ExportToProducesOneRecordPerMetric)
{
    obs::MetricsRegistry registry;
    registry.counter("dtrank_x_total").inc(7);
    registry.gauge("dtrank_y").add(-2);
    registry.histogram("dtrank_z_seconds", {1.0}).observe(0.5);

    util::BenchJsonWriter json("metrics");
    registry.exportTo(json);
    const std::string doc = json.toJson();
    EXPECT_NE(doc.find("\"name\": \"dtrank_x_total\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"metric_type\": \"counter\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"dtrank_y\""), std::string::npos);
    EXPECT_NE(doc.find("\"metric_type\": \"gauge\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"dtrank_z_seconds\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"metric_type\": \"histogram\""),
              std::string::npos);
}

TEST(ObsMetrics, WriteMetricsFileDispatchesOnExtension)
{
    obs::MetricsRegistry registry;
    registry.counter("dtrank_w_total").inc(4);

    const std::string prom_path =
        testing::TempDir() + "obs_metrics_test.prom";
    const std::string json_path =
        testing::TempDir() + "obs_metrics_test.json";
    registry.writeMetricsFile(prom_path);
    registry.writeMetricsFile(json_path);
    registry.writeMetricsFile(""); // no-op

    std::ifstream prom(prom_path);
    std::stringstream prom_text;
    prom_text << prom.rdbuf();
    EXPECT_NE(prom_text.str().find("# TYPE dtrank_w_total counter"),
              std::string::npos);

    std::ifstream json(json_path);
    std::stringstream json_text;
    json_text << json.rdbuf();
    EXPECT_NE(json_text.str().find("\"benchmark\": \"metrics\""),
              std::string::npos);
    EXPECT_NE(json_text.str().find("\"name\": \"dtrank_w_total\""),
              std::string::npos);

    std::remove(prom_path.c_str());
    std::remove(json_path.c_str());
}

TEST(ObsMetrics, GlobalRegistryCarriesThreadPoolMetrics)
{
    obs::Counter &tasks = obs::MetricsRegistry::global().counter(
        "dtrank_thread_pool_tasks_total");
    const std::uint64_t before = tasks.value();
    {
        util::ThreadPool pool(2);
        std::vector<std::future<void>> done;
        for (int i = 0; i < 10; ++i)
            done.push_back(pool.submit([] {}));
        for (auto &f : done)
            f.get();
    }
    EXPECT_EQ(tasks.value(), before + 10);
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .gauge("dtrank_thread_pool_queue_depth")
                  .value(),
              0);
}

TEST(ObsMetrics, QueueDepthIsExactAtQuiescenceUnderStealing)
{
    // The work-stealing pool updates the queue-depth gauge in exactly
    // one push site and one take site, so no matter how many tasks
    // change hands between deques the merged gauge must return to
    // exactly zero once the pool has drained — not negative (a steal
    // double-counted as a take) and not positive (a stolen task's
    // push leaked). The task counter must advance by exactly the
    // number of submissions. Unbalanced task costs force steals;
    // mid-flight the sharded relaxed gauge may read anything, so only
    // the quiescent value is contractual.
    obs::Gauge &depth = obs::MetricsRegistry::global().gauge(
        "dtrank_thread_pool_queue_depth");
    obs::Counter &tasks = obs::MetricsRegistry::global().counter(
        "dtrank_thread_pool_tasks_total");
    const std::int64_t depth_before = depth.value();
    const std::uint64_t tasks_before = tasks.value();
    const std::size_t count = 200;
    {
        util::ThreadPool pool(4);
        for (std::size_t i = 0; i < count; ++i)
            pool.post([i] {
                volatile double sink = 0.0;
                const int spins = i % 7 == 0 ? 10000 : 20;
                for (int s = 0; s < spins; ++s)
                    sink = sink + 1.0;
            });
    }
    EXPECT_EQ(depth.value(), depth_before);
    EXPECT_EQ(depth.value(), 0);
    EXPECT_EQ(tasks.value(), tasks_before + count);
}

} // namespace
