/**
 * @file
 * The observability determinism contract: with tracing enabled and
 * metrics accumulating, every protocol result is bit-identical to a
 * run with observability off, at any thread count — spans and counters
 * only observe the computation, they never feed back into it.
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/family_cv.h"
#include "experiments/harness.h"
#include "obs/trace.h"

namespace
{

using namespace dtrank;
using experiments::Method;

experiments::MethodSuiteConfig
fastSuite(std::size_t threads)
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 20;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 4;
    config.parallel.threads = threads;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
};

/** Runs one split with the global trace collector in `traced` state. */
experiments::SplitResults
runSplit(const Fixture &f, std::size_t threads, bool traced)
{
    if (traced)
        obs::TraceCollector::global().enable();
    else
        obs::TraceCollector::global().disable();
    const experiments::SplitEvaluator evaluator(f.db, f.chars,
                                                fastSuite(threads));
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < 12; ++m)
        predictive.push_back(m);
    const std::vector<std::size_t> target = {30, 31, 32, 33};
    auto results = evaluator.evaluateSplit(
        predictive, target, experiments::extendedMethods(), 5);
    obs::TraceCollector::global().disable();
    obs::TraceCollector::global().clear();
    return results;
}

void
expectIdentical(const experiments::SplitResults &off,
                const experiments::SplitResults &on)
{
    ASSERT_EQ(off.size(), on.size());
    for (const auto &[method, off_tasks] : off) {
        SCOPED_TRACE(experiments::methodName(method));
        const auto it = on.find(method);
        ASSERT_NE(it, on.end());
        const auto &on_tasks = it->second;
        ASSERT_EQ(off_tasks.size(), on_tasks.size());
        for (std::size_t i = 0; i < off_tasks.size(); ++i) {
            const experiments::TaskResult &a = off_tasks[i];
            const experiments::TaskResult &b = on_tasks[i];
            EXPECT_EQ(a.benchmark, b.benchmark);
            // Bit-identical, not approximately equal: observability
            // must be a pure observer of the computation.
            EXPECT_EQ(a.predicted, b.predicted);
            EXPECT_EQ(a.actual, b.actual);
            EXPECT_EQ(a.metrics.rankCorrelation,
                      b.metrics.rankCorrelation);
            EXPECT_EQ(a.metrics.top1ErrorPercent,
                      b.metrics.top1ErrorPercent);
            EXPECT_EQ(a.metrics.meanErrorPercent,
                      b.metrics.meanErrorPercent);
            EXPECT_EQ(a.metrics.maxErrorPercent,
                      b.metrics.maxErrorPercent);
        }
    }
}

TEST(ObsDeterminism, TracedSplitMatchesUntracedSerial)
{
    Fixture f;
    expectIdentical(runSplit(f, 1, false), runSplit(f, 1, true));
}

TEST(ObsDeterminism, TracedSplitMatchesUntracedParallel)
{
    Fixture f;
    expectIdentical(runSplit(f, 4, false), runSplit(f, 4, true));
}

TEST(ObsDeterminism, TracedParallelMatchesUntracedSerial)
{
    Fixture f;
    expectIdentical(runSplit(f, 1, false), runSplit(f, 4, true));
}

TEST(ObsDeterminism, FamilyCvMatchesWithTracingOn)
{
    Fixture f;
    const std::vector<Method> methods = {Method::NnT, Method::MlpT};

    obs::TraceCollector::global().disable();
    const experiments::SplitEvaluator off_eval(f.db, f.chars,
                                               fastSuite(2));
    const auto off = experiments::FamilyCrossValidation(off_eval)
                         .run(methods);

    obs::TraceCollector::global().enable();
    const experiments::SplitEvaluator on_eval(f.db, f.chars,
                                              fastSuite(2));
    const auto on =
        experiments::FamilyCrossValidation(on_eval).run(methods);
    obs::TraceCollector::global().disable();
    // Tracing was live through a full protocol: spans must have been
    // captured, and the results must still match bit for bit.
    EXPECT_GT(obs::TraceCollector::global().eventCount(), 0u);
    obs::TraceCollector::global().clear();

    ASSERT_EQ(off.families, on.families);
    ASSERT_EQ(off.cells.size(), on.cells.size());
    for (const auto &[method, cells] : off.cells) {
        const auto &other = on.cells.at(method);
        ASSERT_EQ(cells.size(), other.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
            EXPECT_EQ(cells[i].family, other[i].family);
            EXPECT_EQ(cells[i].task.benchmark, other[i].task.benchmark);
            EXPECT_EQ(cells[i].task.predicted, other[i].task.predicted);
            EXPECT_EQ(cells[i].task.actual, other[i].task.actual);
        }
    }
}

} // namespace
