/**
 * @file
 * Unit tests for the extension predictors SPL^T (spline transposition)
 * and kNN^T (multi-proxy linear transposition).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/linear_transposition.h"
#include "core/metrics.h"
#include "core/multi_transposition.h"
#include "core/spline_transposition.h"
#include "core/transposition.h"
#include "dataset/synthetic_spec.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

/** Target = quadratic function of one predictive machine. */
core::TranspositionProblem
quadraticProblem()
{
    core::TranspositionProblem p;
    const std::size_t n = 15;
    p.predictiveBenchScores = linalg::Matrix(n, 2);
    p.targetBenchScores = linalg::Matrix(n, 1);
    util::Rng rng(3);
    for (std::size_t b = 0; b < n; ++b) {
        const double x = 1.0 + static_cast<double>(b);
        p.predictiveBenchScores(b, 0) = rng.uniform(1.0, 16.0);
        p.predictiveBenchScores(b, 1) = x;
        p.targetBenchScores(b, 0) = 0.1 * x * x + 2.0;
    }
    p.predictiveAppScores = {5.0, 8.0};
    return p;
}

TEST(SplineTransposition, BeatsLinearOnCurvedRelations)
{
    auto problem = quadraticProblem();
    core::SplineTransposition spline{};
    core::LinearTransposition linear{};
    const auto sp = spline.predict(problem);
    const auto lp = linear.predict(problem);
    const double truth = 0.1 * 8.0 * 8.0 + 2.0; // 8.4
    EXPECT_LT(std::fabs(sp[0] - truth), std::fabs(lp[0] - truth));
    EXPECT_NEAR(sp[0], truth, 0.2);
    EXPECT_EQ(spline.diagnostics().chosenPredictive[0], 1u);
    EXPECT_GT(spline.diagnostics().fitRSquared[0], 0.999);
}

TEST(SplineTransposition, NameAndConfig)
{
    core::SplineTransposition predictor{};
    EXPECT_EQ(predictor.name(), "SPL^T");
    core::SplineTranspositionConfig bad;
    bad.knots = 2;
    EXPECT_THROW(core::SplineTransposition{bad},
                 util::InvalidArgument);
}

TEST(SplineTransposition, WorksOnThePaperDataset)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    std::vector<std::size_t> predictive;
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        (m % 3 == 0 ? predictive : targets).push_back(m);
    const auto problem =
        core::makeProblemFromSplit(db, predictive, targets, "gcc");
    core::SplineTransposition predictor{};
    const auto pred = predictor.predict(problem);
    const auto actual = db.selectMachines(targets).benchmarkScores(
        db.benchmarkIndex("gcc"));
    EXPECT_GT(core::evaluatePrediction(actual, pred).rankCorrelation,
              0.9);
}

TEST(SplineTransposition, LogSpaceMode)
{
    auto problem = quadraticProblem();
    core::SplineTranspositionConfig config;
    config.logSpace = true;
    core::SplineTransposition predictor(config);
    const auto pred = predictor.predict(problem);
    EXPECT_GT(pred[0], 0.0);
    EXPECT_TRUE(std::isfinite(pred[0]));
}

TEST(MultiTransposition, SingleProxyMatchesNnTClosely)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    std::vector<std::size_t> predictive;
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        (m % 4 == 0 ? predictive : targets).push_back(m);
    const auto problem =
        core::makeProblemFromSplit(db, predictive, targets, "mcf");

    core::MultiTranspositionConfig config;
    config.proxies = 1;
    core::MultiTransposition multi(config);
    core::LinearTransposition nn{};
    const auto pm = multi.predict(problem);
    const auto pn = nn.predict(problem);
    // Same proxy, same model family (ridge is negligible): predictions
    // must agree tightly.
    for (std::size_t t = 0; t < pm.size(); ++t)
        EXPECT_NEAR(pm[t], pn[t], 1e-3 * pn[t]);
}

TEST(MultiTransposition, TiledScanMatchesNaiveBitForBit)
{
    // The hoisted/parallel proxy scan reorders nothing arithmetically:
    // its predictions must equal the naive per-pair scan exactly, at
    // any thread count, in both linear and log space.
    const dataset::PerfDatabase db =
        dataset::SyntheticSpecGenerator().generate();
    std::vector<std::size_t> predictive;
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        (m % 5 == 0 ? predictive : targets).push_back(m);
    const auto problem = core::makeProblemFromSplit(
        db, predictive, targets, db.benchmark(2).name);

    for (const bool log_space : {false, true}) {
        core::MultiTranspositionConfig naive_config;
        naive_config.logSpace = log_space;
        naive_config.scan = core::ScanMode::Naive;
        const auto reference =
            core::MultiTransposition(naive_config).predict(problem);

        for (const std::size_t threads : {1u, 4u}) {
            core::MultiTranspositionConfig tiled_config;
            tiled_config.logSpace = log_space;
            tiled_config.scan = core::ScanMode::Tiled;
            tiled_config.threads = threads;
            const auto tiled =
                core::MultiTransposition(tiled_config).predict(problem);
            ASSERT_EQ(tiled.size(), reference.size());
            for (std::size_t t = 0; t < tiled.size(); ++t)
                EXPECT_EQ(tiled[t], reference[t])
                    << "log=" << log_space << " threads=" << threads
                    << " target " << t;
        }
    }
}

TEST(MultiTransposition, CombinesComplementaryProxies)
{
    // The target is the average of two predictive machines that are
    // individually poor proxies; two proxies jointly fit it exactly.
    util::Rng rng(9);
    core::TranspositionProblem p;
    const std::size_t n = 20;
    p.predictiveBenchScores = linalg::Matrix(n, 2);
    p.targetBenchScores = linalg::Matrix(n, 1);
    for (std::size_t b = 0; b < n; ++b) {
        p.predictiveBenchScores(b, 0) = rng.uniform(5.0, 30.0);
        p.predictiveBenchScores(b, 1) = rng.uniform(5.0, 30.0);
        p.targetBenchScores(b, 0) =
            0.5 * (p.predictiveBenchScores(b, 0) +
                   p.predictiveBenchScores(b, 1));
    }
    p.predictiveAppScores = {10.0, 20.0};

    core::MultiTranspositionConfig config;
    config.proxies = 2;
    core::MultiTransposition multi(config);
    const auto pred = multi.predict(p);
    EXPECT_NEAR(pred[0], 15.0, 0.05);
    EXPECT_GT(multi.diagnostics().fitRSquared[0], 0.999);

    core::LinearTransposition nn{};
    const auto single = nn.predict(p);
    EXPECT_GT(std::fabs(single[0] - 15.0),
              std::fabs(pred[0] - 15.0));
}

TEST(MultiTransposition, ProxyCountCappedByAvailableMachines)
{
    auto problem = quadraticProblem(); // 2 predictive machines
    core::MultiTranspositionConfig config;
    config.proxies = 10;
    core::MultiTransposition multi(config);
    const auto pred = multi.predict(problem);
    EXPECT_EQ(multi.diagnostics().chosenProxies[0].size(), 2u);
    EXPECT_TRUE(std::isfinite(pred[0]));
}

TEST(MultiTransposition, NameReflectsProxyCount)
{
    core::MultiTranspositionConfig config;
    config.proxies = 3;
    EXPECT_EQ(core::MultiTransposition(config).name(), "3NN^T");
    config.proxies = 0;
    EXPECT_THROW(core::MultiTransposition{config},
                 util::InvalidArgument);
}

TEST(MultiTransposition, RanksThePaperDatasetWell)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    std::vector<std::size_t> predictive;
    std::vector<std::size_t> targets;
    for (std::size_t m = 0; m < db.machineCount(); ++m)
        (m % 3 == 0 ? predictive : targets).push_back(m);
    const auto problem = core::makeProblemFromSplit(
        db, predictive, targets, "libquantum");
    core::MultiTransposition multi{};
    const auto pred = multi.predict(problem);
    const auto actual = db.selectMachines(targets).benchmarkScores(
        db.benchmarkIndex("libquantum"));
    EXPECT_GT(core::evaluatePrediction(actual, pred).rankCorrelation,
              0.9);
}

} // namespace
