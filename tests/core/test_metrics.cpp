/**
 * @file
 * Unit tests for the bundled prediction metrics.
 */

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(EvaluatePrediction, PerfectPrediction)
{
    const auto m = core::evaluatePrediction({10, 20, 30}, {10, 20, 30});
    EXPECT_DOUBLE_EQ(m.rankCorrelation, 1.0);
    EXPECT_DOUBLE_EQ(m.top1ErrorPercent, 0.0);
    EXPECT_DOUBLE_EQ(m.meanErrorPercent, 0.0);
    EXPECT_DOUBLE_EQ(m.maxErrorPercent, 0.0);
}

TEST(EvaluatePrediction, ScaledPredictionKeepsPerfectRanking)
{
    // Doubling every prediction preserves the ranking and the top-1
    // pick but shows 100% mean error.
    const auto m = core::evaluatePrediction({10, 20, 30}, {20, 40, 60});
    EXPECT_DOUBLE_EQ(m.rankCorrelation, 1.0);
    EXPECT_DOUBLE_EQ(m.top1ErrorPercent, 0.0);
    EXPECT_DOUBLE_EQ(m.meanErrorPercent, 100.0);
    EXPECT_DOUBLE_EQ(m.maxErrorPercent, 100.0);
}

TEST(EvaluatePrediction, InvertedRanking)
{
    const auto m = core::evaluatePrediction({10, 20, 30}, {3, 2, 1});
    EXPECT_DOUBLE_EQ(m.rankCorrelation, -1.0);
    // Predicted top = machine 0 (actual 10), best = 30.
    EXPECT_DOUBLE_EQ(m.top1ErrorPercent, 200.0);
}

TEST(EvaluatePrediction, MixedHandComputedCase)
{
    const std::vector<double> actual = {10, 20};
    const std::vector<double> predicted = {12, 18};
    const auto m = core::evaluatePrediction(actual, predicted);
    EXPECT_DOUBLE_EQ(m.rankCorrelation, 1.0);
    EXPECT_DOUBLE_EQ(m.meanErrorPercent, (20.0 + 10.0) / 2.0);
    EXPECT_DOUBLE_EQ(m.maxErrorPercent, 20.0);
    EXPECT_DOUBLE_EQ(m.top1ErrorPercent, 0.0);
}

TEST(EvaluatePrediction, Validation)
{
    EXPECT_THROW(core::evaluatePrediction({1}, {1}),
                 util::InvalidArgument);
    EXPECT_THROW(core::evaluatePrediction({1, 2}, {1}),
                 util::InvalidArgument);
    EXPECT_THROW(core::evaluatePrediction({0, 2}, {1, 2}),
                 util::InvalidArgument);
}

} // namespace
