/**
 * @file
 * Unit tests for the NN^T predictor (best-fit linear regression
 * transposition).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/linear_transposition.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

/**
 * Builds a problem where the target machine is an exact affine map of
 * predictive machine 1 (and unrelated to machine 0): y = 2x + 3.
 */
core::TranspositionProblem
affineProblem()
{
    core::TranspositionProblem p;
    // Benchmarks x predictive machines. Machine 0 is noise-like,
    // machine 1 is the informative proxy.
    p.predictiveBenchScores = linalg::Matrix{
        {9, 1}, {1, 2}, {8, 3}, {2, 4}, {7, 5}, {3, 6}};
    // App of interest score on each predictive machine.
    p.predictiveAppScores = {4.0, 10.0};
    // One target machine: y = 2 * machine1 + 3 over the benchmarks.
    p.targetBenchScores = linalg::Matrix(6, 1);
    for (std::size_t b = 0; b < 6; ++b)
        p.targetBenchScores(b, 0) =
            2.0 * p.predictiveBenchScores(b, 1) + 3.0;
    return p;
}

TEST(LinearTransposition, PicksTheBestFittingMachine)
{
    auto problem = affineProblem();
    core::LinearTransposition predictor;
    const auto pred = predictor.predict(problem);
    ASSERT_EQ(pred.size(), 1u);
    // Perfect proxy: prediction = 2 * 10 + 3.
    EXPECT_NEAR(pred[0], 23.0, 1e-9);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[0], 1u);
    EXPECT_NEAR(predictor.diagnostics().fitRSquared[0], 1.0, 1e-12);
    EXPECT_NEAR(predictor.diagnostics().slope[0], 2.0, 1e-9);
    EXPECT_NEAR(predictor.diagnostics().intercept[0], 3.0, 1e-9);
}

TEST(LinearTransposition, EachTargetGetsItsOwnProxy)
{
    core::TranspositionProblem p;
    p.predictiveBenchScores =
        linalg::Matrix{{1, 9}, {2, 4}, {3, 8}, {4, 2}, {5, 7}};
    p.predictiveAppScores = {6.0, 5.0};
    // Target 0 follows machine 0; target 1 follows machine 1.
    p.targetBenchScores = linalg::Matrix(5, 2);
    for (std::size_t b = 0; b < 5; ++b) {
        p.targetBenchScores(b, 0) =
            3.0 * p.predictiveBenchScores(b, 0) + 1.0;
        p.targetBenchScores(b, 1) =
            0.5 * p.predictiveBenchScores(b, 1) + 2.0;
    }
    core::LinearTransposition predictor;
    const auto pred = predictor.predict(p);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[0], 0u);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[1], 1u);
    EXPECT_NEAR(pred[0], 3.0 * 6.0 + 1.0, 1e-9);
    EXPECT_NEAR(pred[1], 0.5 * 5.0 + 2.0, 1e-9);
}

TEST(LinearTransposition, LogSpaceRecoversPowerLaws)
{
    // y = x^2 in raw space is exactly linear in log space.
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix(5, 1);
    p.targetBenchScores = linalg::Matrix(5, 1);
    for (std::size_t b = 0; b < 5; ++b) {
        const double x = static_cast<double>(b + 1);
        p.predictiveBenchScores(b, 0) = x;
        p.targetBenchScores(b, 0) = x * x;
    }
    p.predictiveAppScores = {7.0};

    core::LinearTranspositionConfig config;
    config.logSpace = true;
    core::LinearTransposition predictor(config);
    const auto pred = predictor.predict(p);
    EXPECT_NEAR(pred[0], 49.0, 1e-6);
}

TEST(LinearTransposition, RSquaredCriterionAgreesOnCleanData)
{
    auto problem = affineProblem();
    core::LinearTranspositionConfig config;
    config.criterion = core::FitCriterion::RSquared;
    core::LinearTransposition predictor(config);
    const auto pred = predictor.predict(problem);
    EXPECT_NEAR(pred[0], 23.0, 1e-9);
}

TEST(LinearTransposition, HandsOffOnTooFewBenchmarks)
{
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix{{1.0}};
    p.predictiveAppScores = {1.0};
    p.targetBenchScores = linalg::Matrix{{1.0}};
    core::LinearTransposition predictor;
    EXPECT_THROW(predictor.predict(p), util::InvalidArgument);
}

TEST(LinearTransposition, DeterministicAcrossCalls)
{
    auto problem = affineProblem();
    core::LinearTransposition predictor;
    const auto a = predictor.predict(problem);
    const auto b = predictor.predict(problem);
    EXPECT_EQ(a, b);
}

TEST(LinearTransposition, RobustToNoisyProxies)
{
    // With noise, the closest proxy still wins and the prediction
    // stays near the true value.
    util::Rng rng(5);
    core::TranspositionProblem p;
    const std::size_t n = 28;
    p.predictiveBenchScores = linalg::Matrix(n, 3);
    p.targetBenchScores = linalg::Matrix(n, 1);
    for (std::size_t b = 0; b < n; ++b) {
        const double base = rng.uniform(5.0, 50.0);
        p.predictiveBenchScores(b, 0) = rng.uniform(5.0, 50.0);
        p.predictiveBenchScores(b, 1) = base;
        p.predictiveBenchScores(b, 2) = rng.uniform(5.0, 50.0);
        p.targetBenchScores(b, 0) =
            1.5 * base + rng.gaussian(0.0, 0.5);
    }
    p.predictiveAppScores = {20.0, 30.0, 25.0};
    core::LinearTransposition predictor;
    const auto pred = predictor.predict(p);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[0], 1u);
    EXPECT_NEAR(pred[0], 45.0, 2.0);
}

} // namespace
