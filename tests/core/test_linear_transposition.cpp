/**
 * @file
 * Unit tests for the NN^T predictor (best-fit linear regression
 * transposition).
 */

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/linear_transposition.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

/**
 * Builds a problem where the target machine is an exact affine map of
 * predictive machine 1 (and unrelated to machine 0): y = 2x + 3.
 */
core::TranspositionProblem
affineProblem()
{
    core::TranspositionProblem p;
    // Benchmarks x predictive machines. Machine 0 is noise-like,
    // machine 1 is the informative proxy.
    p.predictiveBenchScores = linalg::Matrix{
        {9, 1}, {1, 2}, {8, 3}, {2, 4}, {7, 5}, {3, 6}};
    // App of interest score on each predictive machine.
    p.predictiveAppScores = {4.0, 10.0};
    // One target machine: y = 2 * machine1 + 3 over the benchmarks.
    p.targetBenchScores = linalg::Matrix(6, 1);
    for (std::size_t b = 0; b < 6; ++b)
        p.targetBenchScores(b, 0) =
            2.0 * p.predictiveBenchScores(b, 1) + 3.0;
    return p;
}

TEST(LinearTransposition, PicksTheBestFittingMachine)
{
    auto problem = affineProblem();
    core::LinearTransposition predictor;
    const auto pred = predictor.predict(problem);
    ASSERT_EQ(pred.size(), 1u);
    // Perfect proxy: prediction = 2 * 10 + 3.
    EXPECT_NEAR(pred[0], 23.0, 1e-9);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[0], 1u);
    EXPECT_NEAR(predictor.diagnostics().fitRSquared[0], 1.0, 1e-12);
    EXPECT_NEAR(predictor.diagnostics().slope[0], 2.0, 1e-9);
    EXPECT_NEAR(predictor.diagnostics().intercept[0], 3.0, 1e-9);
}

TEST(LinearTransposition, EachTargetGetsItsOwnProxy)
{
    core::TranspositionProblem p;
    p.predictiveBenchScores =
        linalg::Matrix{{1, 9}, {2, 4}, {3, 8}, {4, 2}, {5, 7}};
    p.predictiveAppScores = {6.0, 5.0};
    // Target 0 follows machine 0; target 1 follows machine 1.
    p.targetBenchScores = linalg::Matrix(5, 2);
    for (std::size_t b = 0; b < 5; ++b) {
        p.targetBenchScores(b, 0) =
            3.0 * p.predictiveBenchScores(b, 0) + 1.0;
        p.targetBenchScores(b, 1) =
            0.5 * p.predictiveBenchScores(b, 1) + 2.0;
    }
    core::LinearTransposition predictor;
    const auto pred = predictor.predict(p);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[0], 0u);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[1], 1u);
    EXPECT_NEAR(pred[0], 3.0 * 6.0 + 1.0, 1e-9);
    EXPECT_NEAR(pred[1], 0.5 * 5.0 + 2.0, 1e-9);
}

TEST(LinearTransposition, LogSpaceRecoversPowerLaws)
{
    // y = x^2 in raw space is exactly linear in log space.
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix(5, 1);
    p.targetBenchScores = linalg::Matrix(5, 1);
    for (std::size_t b = 0; b < 5; ++b) {
        const double x = static_cast<double>(b + 1);
        p.predictiveBenchScores(b, 0) = x;
        p.targetBenchScores(b, 0) = x * x;
    }
    p.predictiveAppScores = {7.0};

    core::LinearTranspositionConfig config;
    config.logSpace = true;
    core::LinearTransposition predictor(config);
    const auto pred = predictor.predict(p);
    EXPECT_NEAR(pred[0], 49.0, 1e-6);
}

TEST(LinearTransposition, RSquaredCriterionAgreesOnCleanData)
{
    auto problem = affineProblem();
    core::LinearTranspositionConfig config;
    config.criterion = core::FitCriterion::RSquared;
    core::LinearTransposition predictor(config);
    const auto pred = predictor.predict(problem);
    EXPECT_NEAR(pred[0], 23.0, 1e-9);
}

TEST(LinearTransposition, HandsOffOnTooFewBenchmarks)
{
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix{{1.0}};
    p.predictiveAppScores = {1.0};
    p.targetBenchScores = linalg::Matrix{{1.0}};
    core::LinearTransposition predictor;
    EXPECT_THROW(predictor.predict(p), util::InvalidArgument);
}

TEST(LinearTransposition, DeterministicAcrossCalls)
{
    auto problem = affineProblem();
    core::LinearTransposition predictor;
    const auto a = predictor.predict(problem);
    const auto b = predictor.predict(problem);
    EXPECT_EQ(a, b);
}

/** Random positive problem of the given size. */
core::TranspositionProblem
randomProblem(std::size_t benchmarks, std::size_t predictive,
              std::size_t targets, std::uint64_t seed)
{
    util::Rng rng(seed);
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix(benchmarks, predictive);
    p.targetBenchScores = linalg::Matrix(benchmarks, targets);
    for (std::size_t b = 0; b < benchmarks; ++b) {
        for (std::size_t m = 0; m < predictive; ++m)
            p.predictiveBenchScores(b, m) = rng.uniform(1.0, 60.0);
        for (std::size_t t = 0; t < targets; ++t)
            p.targetBenchScores(b, t) = rng.uniform(1.0, 60.0);
    }
    for (std::size_t m = 0; m < predictive; ++m)
        p.predictiveAppScores.push_back(rng.uniform(1.0, 60.0));
    return p;
}

/** Predicts with the given scan mode and returns all outputs. */
std::pair<std::vector<double>, core::LinearTranspositionDiagnostics>
runScan(const core::TranspositionProblem &problem, core::ScanMode scan,
        std::size_t tile, std::size_t threads, bool log_space = false)
{
    core::LinearTranspositionConfig config;
    config.scan = scan;
    config.targetTile = tile;
    config.threads = threads;
    config.logSpace = log_space;
    core::LinearTransposition predictor(config);
    auto pred = predictor.predict(problem);
    return {std::move(pred), predictor.diagnostics()};
}

TEST(LinearTransposition, TiledScanMatchesNaiveBitForBit)
{
    const auto problem = randomProblem(28, 7, 301, 17);
    const auto [naive_pred, naive_diag] =
        runScan(problem, core::ScanMode::Naive, 256, 1);
    for (const std::size_t tile : {1u, 3u, 64u, 256u, 1024u}) {
        const auto [tiled_pred, tiled_diag] =
            runScan(problem, core::ScanMode::Tiled, tile, 1);
        EXPECT_EQ(naive_pred, tiled_pred) << "tile " << tile;
        EXPECT_EQ(naive_diag.chosenPredictive,
                  tiled_diag.chosenPredictive);
        EXPECT_EQ(naive_diag.fitRSquared, tiled_diag.fitRSquared);
        EXPECT_EQ(naive_diag.slope, tiled_diag.slope);
        EXPECT_EQ(naive_diag.intercept, tiled_diag.intercept);
    }
}

TEST(LinearTransposition, TiledScanMatchesNaiveInLogSpace)
{
    const auto problem = randomProblem(20, 5, 97, 23);
    const auto [naive_pred, naive_diag] =
        runScan(problem, core::ScanMode::Naive, 256, 1, true);
    const auto [tiled_pred, tiled_diag] =
        runScan(problem, core::ScanMode::Tiled, 32, 1, true);
    EXPECT_EQ(naive_pred, tiled_pred);
    EXPECT_EQ(naive_diag.chosenPredictive, tiled_diag.chosenPredictive);
}

TEST(LinearTransposition, ScaledScanThreadCountCannotChangeOutput)
{
    const auto problem = randomProblem(28, 9, 513, 29);
    const auto [serial_pred, serial_diag] =
        runScan(problem, core::ScanMode::Tiled, 64, 1);
    for (const std::size_t threads : {2u, 4u, 0u}) {
        const auto [par_pred, par_diag] =
            runScan(problem, core::ScanMode::Tiled, 64, threads);
        EXPECT_EQ(serial_pred, par_pred) << "threads " << threads;
        EXPECT_EQ(serial_diag.chosenPredictive,
                  par_diag.chosenPredictive);
        EXPECT_EQ(serial_diag.fitRSquared, par_diag.fitRSquared);
    }
}

TEST(LinearTransposition, RobustToNoisyProxies)
{
    // With noise, the closest proxy still wins and the prediction
    // stays near the true value.
    util::Rng rng(5);
    core::TranspositionProblem p;
    const std::size_t n = 28;
    p.predictiveBenchScores = linalg::Matrix(n, 3);
    p.targetBenchScores = linalg::Matrix(n, 1);
    for (std::size_t b = 0; b < n; ++b) {
        const double base = rng.uniform(5.0, 50.0);
        p.predictiveBenchScores(b, 0) = rng.uniform(5.0, 50.0);
        p.predictiveBenchScores(b, 1) = base;
        p.predictiveBenchScores(b, 2) = rng.uniform(5.0, 50.0);
        p.targetBenchScores(b, 0) =
            1.5 * base + rng.gaussian(0.0, 0.5);
    }
    p.predictiveAppScores = {20.0, 30.0, 25.0};
    core::LinearTransposition predictor;
    const auto pred = predictor.predict(p);
    EXPECT_EQ(predictor.diagnostics().chosenPredictive[0], 1u);
    EXPECT_NEAR(pred[0], 45.0, 2.0);
}

} // namespace
