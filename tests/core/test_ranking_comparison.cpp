/**
 * @file
 * Unit tests for the ranking comparison utilities.
 */

#include <gtest/gtest.h>

#include "core/ranking_comparison.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(TopNOverlap, PerfectPrediction)
{
    const std::vector<double> actual = {10, 30, 20, 40};
    EXPECT_DOUBLE_EQ(core::topNOverlap(actual, actual, 1), 1.0);
    EXPECT_DOUBLE_EQ(core::topNOverlap(actual, actual, 4), 1.0);
}

TEST(TopNOverlap, OrderWithinShortlistDoesNotMatter)
{
    const std::vector<double> actual = {1, 2, 3, 4};
    // Predicted swaps the top two; the top-2 set is identical.
    const std::vector<double> predicted = {1, 2, 9, 8};
    EXPECT_DOUBLE_EQ(core::topNOverlap(actual, predicted, 2), 1.0);
}

TEST(TopNOverlap, DisjointShortlists)
{
    const std::vector<double> actual = {1, 2, 9, 8};
    const std::vector<double> predicted = {9, 8, 1, 2};
    EXPECT_DOUBLE_EQ(core::topNOverlap(actual, predicted, 2), 0.0);
    // Over the full set the overlap is trivially 1.
    EXPECT_DOUBLE_EQ(core::topNOverlap(actual, predicted, 4), 1.0);
}

TEST(TopNOverlap, PartialOverlap)
{
    const std::vector<double> actual = {4, 3, 2, 1};    // top-2: 0, 1
    const std::vector<double> predicted = {4, 1, 3, 2}; // top-2: 0, 2
    EXPECT_DOUBLE_EQ(core::topNOverlap(actual, predicted, 2), 0.5);
}

TEST(TopNOverlap, Validation)
{
    EXPECT_THROW(core::topNOverlap({1, 2}, {1}, 1),
                 util::InvalidArgument);
    EXPECT_THROW(core::topNOverlap({1, 2}, {1, 2}, 0),
                 util::InvalidArgument);
    EXPECT_THROW(core::topNOverlap({1, 2}, {1, 2}, 3),
                 util::InvalidArgument);
}

TEST(RankDisplacement, IdenticalRankingsAreZero)
{
    const std::vector<double> v = {5, 1, 3};
    const auto d = core::rankDisplacement(v, v);
    EXPECT_EQ(d, (std::vector<std::size_t>{0, 0, 0}));
    EXPECT_EQ(core::maxRankDisplacement(v, v), 0u);
    EXPECT_DOUBLE_EQ(core::meanRankDisplacement(v, v), 0.0);
}

TEST(RankDisplacement, FullReversal)
{
    const std::vector<double> actual = {3, 2, 1};
    const std::vector<double> predicted = {1, 2, 3};
    const auto d = core::rankDisplacement(actual, predicted);
    // Machine 0: actual rank 1, predicted rank 3 -> displacement 2.
    EXPECT_EQ(d, (std::vector<std::size_t>{2, 0, 2}));
    EXPECT_EQ(core::maxRankDisplacement(actual, predicted), 2u);
    EXPECT_NEAR(core::meanRankDisplacement(actual, predicted),
                4.0 / 3.0, 1e-12);
}

TEST(RankDisplacement, SingleSwap)
{
    const std::vector<double> actual = {4, 3, 2, 1};
    const std::vector<double> predicted = {4, 2, 3, 1}; // swap mid pair
    const auto d = core::rankDisplacement(actual, predicted);
    EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 1, 0}));
}

TEST(RankDisplacement, Validation)
{
    EXPECT_THROW(core::rankDisplacement({}, {}),
                 util::InvalidArgument);
    EXPECT_THROW(core::rankDisplacement({1.0}, {1.0, 2.0}),
                 util::InvalidArgument);
}

} // namespace
