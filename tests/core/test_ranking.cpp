/**
 * @file
 * Unit tests for the MachineRanking view.
 */

#include <gtest/gtest.h>

#include "core/ranking.h"
#include "dataset/synthetic_spec.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(MachineRanking, OrdersBestFirst)
{
    const core::MachineRanking ranking({10.0, 30.0, 20.0});
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking.best(), 1u);
    EXPECT_EQ(ranking.entries()[0].machineIndex, 1u);
    EXPECT_EQ(ranking.entries()[1].machineIndex, 2u);
    EXPECT_EQ(ranking.entries()[2].machineIndex, 0u);
    EXPECT_EQ(ranking.entries()[0].rank, 1u);
    EXPECT_DOUBLE_EQ(ranking.entries()[0].predictedScore, 30.0);
}

TEST(MachineRanking, TopMachinesCapped)
{
    const core::MachineRanking ranking({1.0, 3.0, 2.0});
    EXPECT_EQ(ranking.topMachines(2),
              (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(ranking.topMachines(10).size(), 3u);
    EXPECT_TRUE(ranking.topMachines(0).empty());
}

TEST(MachineRanking, RankOf)
{
    const core::MachineRanking ranking({1.0, 3.0, 2.0});
    EXPECT_EQ(ranking.rankOf(1), 1u);
    EXPECT_EQ(ranking.rankOf(2), 2u);
    EXPECT_EQ(ranking.rankOf(0), 3u);
    EXPECT_THROW(ranking.rankOf(3), util::InvalidArgument);
}

TEST(MachineRanking, StableOnTies)
{
    const core::MachineRanking ranking({5.0, 5.0});
    EXPECT_EQ(ranking.best(), 0u);
}

TEST(MachineRanking, RejectsEmptyScores)
{
    EXPECT_THROW(core::MachineRanking({}), util::InvalidArgument);
}

TEST(MachineRanking, ToTableShowsMachineNames)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto targets = db.selectMachines({0, 1, 2});
    const core::MachineRanking ranking({1.0, 3.0, 2.0});
    const std::string table = ranking.toTable(targets, 2);
    EXPECT_NE(table.find(targets.machine(1).name()),
              std::string::npos);
    EXPECT_NE(table.find("rank"), std::string::npos);
    // Only the top 2 rows are printed: machine 0 (rank 3) is absent.
    EXPECT_EQ(table.find(targets.machine(0).name()),
              std::string::npos);
}

TEST(MachineRanking, ToTableValidatesSize)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto targets = db.selectMachines({0, 1});
    const core::MachineRanking ranking({1.0, 2.0, 3.0});
    EXPECT_THROW(ranking.toTable(targets, 3), util::InvalidArgument);
}

} // namespace
