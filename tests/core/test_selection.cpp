/**
 * @file
 * Unit tests for predictive machine selection (random and k-medoids).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/selection.h"
#include "dataset/synthetic_spec.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(SelectRandom, SubsetOfCandidates)
{
    const std::vector<std::size_t> candidates = {3, 7, 11, 15, 19};
    util::Rng rng(1);
    const auto picks = core::selectRandomMachines(candidates, 3, rng);
    EXPECT_EQ(picks.size(), 3u);
    EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
    for (std::size_t p : picks)
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), p) !=
                    candidates.end());
    std::set<std::size_t> uniq(picks.begin(), picks.end());
    EXPECT_EQ(uniq.size(), 3u);
}

TEST(SelectRandom, FullSelection)
{
    const std::vector<std::size_t> candidates = {2, 4, 6};
    util::Rng rng(2);
    const auto picks = core::selectRandomMachines(candidates, 3, rng);
    EXPECT_EQ(picks, candidates);
}

TEST(SelectRandom, Validation)
{
    util::Rng rng(3);
    EXPECT_THROW(core::selectRandomMachines({1, 2}, 3, rng),
                 util::InvalidArgument);
    EXPECT_THROW(core::selectRandomMachines({1, 2}, 0, rng),
                 util::InvalidArgument);
}

TEST(MachineFeatures, ShapeAndCentering)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const std::vector<std::size_t> machines = {0, 5, 50, 116};
    const auto features = core::machineFeatureVectors(db, machines);
    ASSERT_EQ(features.size(), 4u);
    for (const auto &f : features)
        EXPECT_EQ(f.size(), db.benchmarkCount());
    EXPECT_THROW(core::machineFeatureVectors(db, {}),
                 util::InvalidArgument);
}

TEST(MachineFeatures, SameNicknameMachinesAreClose)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    // Machines 0..2 share a nickname; machine 60 is a different
    // family. Architectural-signature distance must reflect that.
    const std::vector<std::size_t> machines = {0, 1, 60};
    const auto f = core::machineFeatureVectors(db, machines);
    double same = 0.0;
    double cross = 0.0;
    for (std::size_t b = 0; b < f[0].size(); ++b) {
        same += (f[0][b] - f[1][b]) * (f[0][b] - f[1][b]);
        cross += (f[0][b] - f[2][b]) * (f[0][b] - f[2][b]);
    }
    EXPECT_LT(same, cross);
}

TEST(SelectKMedoids, ReturnsSortedSubset)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto candidates = db.machineIndicesBeforeYear(2009);
    util::Rng rng(4);
    const auto picks =
        core::selectMachinesByKMedoids(db, candidates, 5, rng);
    EXPECT_EQ(picks.size(), 5u);
    EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
    for (std::size_t p : picks)
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), p) !=
                    candidates.end());
}

TEST(SelectKMedoids, PicksDiverseVendors)
{
    // The paper's observation (Section 6.5): clustering yields a
    // diverse set. With 6 medoids over the full pre-2009 pool we must
    // see at least 3 distinct processor families.
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto candidates = db.machineIndicesBeforeYear(2009);
    util::Rng rng(5);
    const auto picks =
        core::selectMachinesByKMedoids(db, candidates, 6, rng);
    std::set<std::string> families;
    for (std::size_t p : picks)
        families.insert(db.machine(p).family);
    EXPECT_GE(families.size(), 3u);
}

TEST(SelectKMedoids, Validation)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    util::Rng rng(6);
    EXPECT_THROW(core::selectMachinesByKMedoids(db, {0, 1}, 3, rng),
                 util::InvalidArgument);
    EXPECT_THROW(core::selectMachinesByKMedoids(db, {0, 1}, 0, rng),
                 util::InvalidArgument);
}

TEST(SelectKMedoids, DeterministicGivenSeed)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto candidates = db.machineIndicesByYear(2008);
    util::Rng rng1(7);
    util::Rng rng2(7);
    EXPECT_EQ(core::selectMachinesByKMedoids(db, candidates, 4, rng1),
              core::selectMachinesByKMedoids(db, candidates, 4, rng2));
}

} // namespace
