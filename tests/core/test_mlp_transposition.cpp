/**
 * @file
 * Unit tests for the MLP^T predictor.
 */

#include <gtest/gtest.h>

#include "core/linear_transposition.h"
#include "core/mlp_transposition.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

/**
 * A problem whose app score is a fixed linear combination of two
 * benchmark scores, consistent across machines: the network must learn
 * app = 0.5 * bench0 + 0.25 * bench1.
 */
core::TranspositionProblem
linearRelationProblem(std::size_t n_pred, std::size_t n_target)
{
    util::Rng rng(7);
    core::TranspositionProblem p;
    const std::size_t n_bench = 6;
    p.predictiveBenchScores = linalg::Matrix(n_bench, n_pred);
    p.targetBenchScores = linalg::Matrix(n_bench, n_target);
    p.predictiveAppScores.resize(n_pred);

    auto fill_machine = [&](linalg::Matrix &m, std::size_t col,
                            double speed) {
        for (std::size_t b = 0; b < n_bench; ++b)
            m(b, col) = speed * (1.0 + 0.2 * static_cast<double>(b)) +
                        rng.gaussian(0.0, 0.05);
    };
    for (std::size_t c = 0; c < n_pred; ++c) {
        const double speed = rng.uniform(5.0, 30.0);
        fill_machine(p.predictiveBenchScores, c, speed);
        p.predictiveAppScores[c] =
            0.5 * p.predictiveBenchScores(0, c) +
            0.25 * p.predictiveBenchScores(1, c);
    }
    for (std::size_t c = 0; c < n_target; ++c)
        fill_machine(p.targetBenchScores, c, rng.uniform(5.0, 30.0));
    return p;
}

TEST(MlpTransposition, LearnsConsistentRelation)
{
    const auto problem = linearRelationProblem(40, 10);
    core::MlpTranspositionConfig config;
    config.mlp.epochs = 300;
    core::MlpTransposition predictor(config);
    const auto pred = predictor.predict(problem);

    ASSERT_EQ(pred.size(), 10u);
    for (std::size_t t = 0; t < 10; ++t) {
        const double expected =
            0.5 * problem.targetBenchScores(0, t) +
            0.25 * problem.targetBenchScores(1, t);
        EXPECT_NEAR(pred[t], expected, 0.15 * expected) << t;
    }
    EXPECT_LT(predictor.lastTrainingMse(), 0.1);
}

TEST(MlpTransposition, DeterministicForFixedSeed)
{
    const auto problem = linearRelationProblem(20, 5);
    core::MlpTranspositionConfig config;
    config.mlp.epochs = 50;
    core::MlpTransposition a(config);
    core::MlpTransposition b(config);
    EXPECT_EQ(a.predict(problem), b.predict(problem));
}

TEST(MlpTransposition, SeedChangesPrediction)
{
    const auto problem = linearRelationProblem(20, 5);
    core::MlpTranspositionConfig c1;
    c1.mlp.epochs = 50;
    core::MlpTranspositionConfig c2 = c1;
    c2.mlp.seed = 321;
    core::MlpTransposition a(c1);
    core::MlpTransposition b(c2);
    EXPECT_NE(a.predict(problem), b.predict(problem));
}

TEST(MlpTransposition, PredictionsArePositive)
{
    const auto problem = linearRelationProblem(10, 20);
    core::MlpTranspositionConfig config;
    config.mlp.epochs = 20;
    core::MlpTransposition predictor(config);
    for (double v : predictor.predict(problem))
        EXPECT_GT(v, 0.0);
}

TEST(MlpTransposition, WorksWithThreePredictiveMachines)
{
    // The Table 4 regime: very few training machines. The transductive
    // normalization must keep predictions finite and ordered sanely.
    const auto problem = linearRelationProblem(3, 30);
    core::MlpTranspositionConfig config;
    config.mlp.epochs = 300;
    core::MlpTransposition predictor(config);
    const auto pred = predictor.predict(problem);
    for (double v : pred)
        EXPECT_TRUE(std::isfinite(v));

    // Faster machines (larger bench0) must generally predict larger.
    std::size_t fastest = 0;
    std::size_t slowest = 0;
    for (std::size_t t = 1; t < 30; ++t) {
        if (problem.targetBenchScores(0, t) >
            problem.targetBenchScores(0, fastest))
            fastest = t;
        if (problem.targetBenchScores(0, t) <
            problem.targetBenchScores(0, slowest))
            slowest = t;
    }
    EXPECT_GT(pred[fastest], pred[slowest]);
}

TEST(MlpTransposition, NonTransductiveModeStillWorksInRange)
{
    auto problem = linearRelationProblem(40, 10);
    core::MlpTranspositionConfig config;
    config.mlp.epochs = 200;
    config.transductiveNormalization = false;
    core::MlpTransposition predictor(config);
    const auto pred = predictor.predict(problem);
    for (double v : pred)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(MlpTransposition, LastMseRequiresPrediction)
{
    core::MlpTransposition predictor{};
    EXPECT_THROW(predictor.lastTrainingMse(), util::InvalidArgument);
}

TEST(MlpTransposition, ValidatesProblem)
{
    core::TranspositionProblem bad;
    core::MlpTransposition predictor{};
    EXPECT_THROW(predictor.predict(bad), util::InvalidArgument);
}

TEST(MlpTransposition, NameIsPaperName)
{
    core::MlpTransposition predictor{};
    EXPECT_EQ(predictor.name(), "MLP^T");
    core::LinearTransposition lin{};
    EXPECT_EQ(lin.name(), "NN^T");
}

} // namespace
