/**
 * @file
 * Unit tests for the transposition problem construction.
 */

#include <gtest/gtest.h>

#include "core/transposition.h"
#include "dataset/synthetic_spec.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(TranspositionProblem, ValidateAcceptsConsistentProblem)
{
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix{{1, 2}, {3, 4}};
    p.predictiveAppScores = {5, 6};
    p.targetBenchScores = linalg::Matrix{{1, 2, 3}, {4, 5, 6}};
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.benchmarkCount(), 2u);
    EXPECT_EQ(p.predictiveMachineCount(), 2u);
    EXPECT_EQ(p.targetMachineCount(), 3u);
}

TEST(TranspositionProblem, ValidateRejectsInconsistencies)
{
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix{{1, 2}, {3, 4}};
    p.predictiveAppScores = {5};
    p.targetBenchScores = linalg::Matrix{{1}, {2}};
    EXPECT_THROW(p.validate(), util::InvalidArgument);

    p.predictiveAppScores = {5, 6};
    p.targetBenchScores = linalg::Matrix{{1}};
    EXPECT_THROW(p.validate(), util::InvalidArgument);

    p.targetBenchScores = linalg::Matrix{{1}, {2}};
    p.predictiveAppScores = {5, -6};
    EXPECT_THROW(p.validate(), util::InvalidArgument);
}

TEST(MakeProblem, SplitsAppRowFromSuite)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto pred_db = db.selectMachines({0, 1, 2, 3});
    const auto target_db = db.selectMachines({4, 5, 6});
    const auto problem =
        core::makeProblem(pred_db, target_db, "libquantum");

    EXPECT_EQ(problem.benchmarkCount(), db.benchmarkCount() - 1);
    EXPECT_EQ(problem.predictiveMachineCount(), 4u);
    EXPECT_EQ(problem.targetMachineCount(), 3u);

    // The app scores are libquantum's row on the predictive machines.
    const auto lq = db.benchmarkIndex("libquantum");
    for (std::size_t p = 0; p < 4; ++p)
        EXPECT_DOUBLE_EQ(problem.predictiveAppScores[p],
                         db.score(lq, p));
}

TEST(MakeProblem, TrainingRowsAlignAcrossSets)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto pred_db = db.selectMachines({0, 1});
    const auto target_db = db.selectMachines({2, 3});
    const auto problem = core::makeProblem(pred_db, target_db, "gcc");

    // Row i of both matrices must be the same benchmark.
    const auto gcc = db.benchmarkIndex("gcc");
    std::size_t row = 0;
    for (std::size_t b = 0; b < db.benchmarkCount(); ++b) {
        if (b == gcc)
            continue;
        EXPECT_DOUBLE_EQ(problem.predictiveBenchScores(row, 0),
                         db.score(b, 0));
        EXPECT_DOUBLE_EQ(problem.targetBenchScores(row, 0),
                         db.score(b, 2));
        ++row;
    }
}

TEST(MakeProblem, UnknownAppThrows)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto pred_db = db.selectMachines({0});
    const auto target_db = db.selectMachines({1});
    EXPECT_THROW(core::makeProblem(pred_db, target_db, "not-a-bench"),
                 util::InvalidArgument);
}

TEST(MakeProblemFromSplit, RejectsOverlap)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    EXPECT_THROW(
        core::makeProblemFromSplit(db, {0, 1}, {1, 2}, "gcc"),
        util::InvalidArgument);
}

TEST(MakeProblemFromSplit, RejectsEmptySides)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    EXPECT_THROW(core::makeProblemFromSplit(db, {}, {0}, "gcc"),
                 util::InvalidArgument);
    EXPECT_THROW(core::makeProblemFromSplit(db, {0}, {}, "gcc"),
                 util::InvalidArgument);
}

TEST(MakeProblemFromSplit, MatchesManualConstruction)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const auto split =
        core::makeProblemFromSplit(db, {0, 1}, {2, 3}, "mcf");
    const auto manual = core::makeProblem(db.selectMachines({0, 1}),
                                          db.selectMachines({2, 3}),
                                          "mcf");
    EXPECT_TRUE(split.predictiveBenchScores.approxEquals(
        manual.predictiveBenchScores, 0.0));
    EXPECT_TRUE(split.targetBenchScores.approxEquals(
        manual.targetBenchScores, 0.0));
    EXPECT_EQ(split.predictiveAppScores, manual.predictiveAppScores);
}

} // namespace
