/**
 * @file
 * Property tests for structural invariants of the transposition
 * predictors — the symmetries the method should (and should not) have.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/linear_transposition.h"
#include "core/metrics.h"
#include "core/multi_transposition.h"
#include "core/spline_transposition.h"
#include "core/transposition.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

core::TranspositionProblem
randomProblem(std::uint64_t seed, std::size_t n_bench = 20,
              std::size_t n_pred = 6, std::size_t n_target = 5)
{
    util::Rng rng(seed);
    core::TranspositionProblem p;
    p.predictiveBenchScores = linalg::Matrix(n_bench, n_pred);
    p.targetBenchScores = linalg::Matrix(n_bench, n_target);
    p.predictiveAppScores.resize(n_pred);

    // Latent one-factor structure + noise keeps the problem realistic.
    std::vector<double> bench_scale(n_bench);
    for (double &v : bench_scale)
        v = rng.uniform(0.5, 2.0);
    auto fill = [&](linalg::Matrix &m, std::size_t col, double speed) {
        for (std::size_t b = 0; b < n_bench; ++b)
            m(b, col) =
                speed * bench_scale[b] * rng.uniform(0.9, 1.1);
    };
    for (std::size_t c = 0; c < n_pred; ++c) {
        const double speed = rng.uniform(5.0, 30.0);
        fill(p.predictiveBenchScores, c, speed);
        p.predictiveAppScores[c] = speed * rng.uniform(0.95, 1.05);
    }
    for (std::size_t c = 0; c < n_target; ++c)
        fill(p.targetBenchScores, c, rng.uniform(5.0, 30.0));
    return p;
}

/** Applies one benchmark-row permutation to an entire problem. */
core::TranspositionProblem
permuteRows(const core::TranspositionProblem &p,
            const std::vector<std::size_t> &perm)
{
    core::TranspositionProblem out = p;
    out.predictiveBenchScores = p.predictiveBenchScores.selectRows(perm);
    out.targetBenchScores = p.targetBenchScores.selectRows(perm);
    return out;
}

class InvariantTest : public ::testing::TestWithParam<int>
{
};

TEST_P(InvariantTest, LinearPredictionInvariantToBenchmarkOrder)
{
    const auto p = randomProblem(
        400 + static_cast<std::uint64_t>(GetParam()));
    std::vector<std::size_t> perm(p.benchmarkCount());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    util::Rng rng(1);
    rng.shuffle(perm);

    core::LinearTransposition a{};
    core::LinearTransposition b{};
    const auto base = a.predict(p);
    const auto shuffled = b.predict(permuteRows(p, perm));
    ASSERT_EQ(base.size(), shuffled.size());
    for (std::size_t t = 0; t < base.size(); ++t)
        EXPECT_NEAR(base[t], shuffled[t], 1e-9 * base[t]);
}

TEST_P(InvariantTest, LinearPredictionInvariantToProxyRescaling)
{
    // Scaling one predictive machine's column (its app score included)
    // is absorbed by the per-proxy affine fit: predictions must not
    // change.
    const auto p = randomProblem(
        500 + static_cast<std::uint64_t>(GetParam()));
    core::TranspositionProblem scaled = p;
    const double factor = 3.7;
    for (std::size_t b = 0; b < p.benchmarkCount(); ++b)
        scaled.predictiveBenchScores(b, 0) *= factor;
    scaled.predictiveAppScores[0] *= factor;

    core::LinearTransposition a{};
    core::LinearTransposition b{};
    const auto base = a.predict(p);
    const auto rescaled = b.predict(scaled);
    for (std::size_t t = 0; t < base.size(); ++t)
        EXPECT_NEAR(base[t], rescaled[t], 1e-6 * base[t]);
}

TEST_P(InvariantTest, TargetScalingScalesLinearPredictions)
{
    // Scaling a target machine's column scales its prediction by the
    // same factor (the method is unit-consistent).
    const auto p = randomProblem(
        600 + static_cast<std::uint64_t>(GetParam()));
    core::TranspositionProblem scaled = p;
    const double factor = 2.5;
    for (std::size_t b = 0; b < p.benchmarkCount(); ++b)
        scaled.targetBenchScores(b, 0) *= factor;

    core::LinearTransposition a{};
    core::LinearTransposition b{};
    const auto base = a.predict(p);
    const auto rescaled = b.predict(scaled);
    EXPECT_NEAR(rescaled[0], factor * base[0], 1e-6 * base[0]);
    for (std::size_t t = 1; t < base.size(); ++t)
        EXPECT_NEAR(rescaled[t], base[t], 1e-9 * base[t]);
}

TEST_P(InvariantTest, MultiProxyInvariantToBenchmarkOrder)
{
    const auto p = randomProblem(
        700 + static_cast<std::uint64_t>(GetParam()));
    std::vector<std::size_t> perm(p.benchmarkCount());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    util::Rng rng(2);
    rng.shuffle(perm);

    core::MultiTransposition a{};
    core::MultiTransposition b{};
    const auto base = a.predict(p);
    const auto shuffled = b.predict(permuteRows(p, perm));
    for (std::size_t t = 0; t < base.size(); ++t)
        EXPECT_NEAR(base[t], shuffled[t], 1e-6 * base[t]);
}

TEST_P(InvariantTest, SplinePredictionsFiniteAndPositive)
{
    const auto p = randomProblem(
        800 + static_cast<std::uint64_t>(GetParam()));
    core::SplineTransposition predictor{};
    for (double v : predictor.predict(p)) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GT(v, 0.0);
    }
}

TEST_P(InvariantTest, MetricsInvariantToPredictionScale)
{
    // Rank correlation and top-1 deficiency depend only on the
    // *ordering* of predictions; a global rescale must not move them.
    const auto p = randomProblem(
        900 + static_cast<std::uint64_t>(GetParam()));
    core::LinearTransposition predictor{};
    const auto predicted = predictor.predict(p);
    std::vector<double> actual = p.targetBenchScores.row(0);
    actual.resize(p.targetMachineCount());
    for (std::size_t t = 0; t < actual.size(); ++t)
        actual[t] = p.targetBenchScores(0, t);

    const auto base = core::evaluatePrediction(actual, predicted);
    auto scaled = predicted;
    for (double &v : scaled)
        v *= 42.0;
    const auto rescaled = core::evaluatePrediction(actual, scaled);
    EXPECT_DOUBLE_EQ(base.rankCorrelation, rescaled.rankCorrelation);
    EXPECT_DOUBLE_EQ(base.top1ErrorPercent, rescaled.top1ErrorPercent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest, ::testing::Range(0, 10));

} // namespace
