/**
 * @file
 * The mask=∅ bit-identity contract of the masked model stack: a
 * database wearing a MATERIALIZED all-valid mask (not the dense
 * sentinel, so every masked code path actually executes) must
 * reproduce the dense pipeline bit for bit — for every method of the
 * extended suite, across SIMD tiers and thread counts. Plus the masked
 * least-squares/ridge row-compaction contract and sanity properties of
 * predictions under real missingness. Suite names contain "Masked" so
 * the TSan CI job's regex picks these up.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/transposition.h"
#include "dataset/mica.h"
#include "dataset/perf_database.h"
#include "dataset/synthetic_spec.h"
#include "experiments/harness.h"
#include "linalg/least_squares.h"
#include "simd/simd.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using experiments::Method;
using simd::Tier;

experiments::MethodSuiteConfig
fastSuite(std::size_t threads)
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 20;
    config.deep.mlp.epochs = 20;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 4;
    config.parallel.threads = threads;
    return config;
}

/** Exact, field-by-field comparison of two split evaluations. */
void
expectIdentical(const experiments::SplitResults &lhs,
                const experiments::SplitResults &rhs)
{
    ASSERT_EQ(lhs.size(), rhs.size());
    for (const auto &[method, lhs_tasks] : lhs) {
        SCOPED_TRACE(experiments::methodName(method));
        const auto it = rhs.find(method);
        ASSERT_NE(it, rhs.end());
        const auto &rhs_tasks = it->second;
        ASSERT_EQ(lhs_tasks.size(), rhs_tasks.size());
        for (std::size_t i = 0; i < lhs_tasks.size(); ++i) {
            const experiments::TaskResult &a = lhs_tasks[i];
            const experiments::TaskResult &b = rhs_tasks[i];
            EXPECT_EQ(a.benchmark, b.benchmark);
            EXPECT_EQ(a.predicted, b.predicted);
            EXPECT_EQ(a.metrics.rankCorrelation,
                      b.metrics.rankCorrelation);
            EXPECT_EQ(a.metrics.top1ErrorPercent,
                      b.metrics.top1ErrorPercent);
            EXPECT_EQ(a.metrics.meanErrorPercent,
                      b.metrics.meanErrorPercent);
            EXPECT_EQ(a.metrics.maxErrorPercent,
                      b.metrics.maxErrorPercent);
        }
    }
}

class MaskedEmptyMaskIdentity : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = simd::activeTier(); }
    void TearDown() override { simd::setTier(saved_); }

    /** `db_` with a materialized all-valid mask: masked() is true and
     * every masked code path runs, yet nothing is actually missing. */
    dataset::PerfDatabase
    allValidTwin() const
    {
        return dataset::PerfDatabase(
            db_.benchmarks(), db_.machines(), db_.scores(),
            dataset::ScoreMask(db_.benchmarkCount(), db_.machineCount(),
                               true));
    }

    experiments::SplitResults
    runSplit(const dataset::PerfDatabase &db, Tier tier,
             std::size_t threads) const
    {
        simd::setTier(tier);
        const experiments::SplitEvaluator evaluator(db, chars_,
                                                    fastSuite(threads));
        std::vector<std::size_t> predictive;
        for (std::size_t m = 0; m < 10; ++m)
            predictive.push_back(m);
        const std::vector<std::size_t> target = {30, 31, 32, 33};
        return evaluator.evaluateSplit(predictive, target,
                                       experiments::extendedMethods(),
                                       5);
    }

    static bool
    tierAvailable(Tier tier)
    {
        switch (tier) {
          case Tier::Scalar:
            return true;
          case Tier::Avx2:
            return simd::avx2Kernels() != nullptr &&
                   simd::cpuSupportsAvx2();
          case Tier::Avx512:
            return simd::avx512Kernels() != nullptr &&
                   simd::cpuSupportsAvx512();
        }
        return false;
    }

    dataset::PerfDatabase db_ = dataset::makePaperDataset();
    linalg::Matrix chars_ = dataset::MicaGenerator().generateForCatalog();

  private:
    Tier saved_ = Tier::Scalar;
};

TEST_F(MaskedEmptyMaskIdentity, AllValidMaskMatchesDenseEveryTier)
{
    const dataset::PerfDatabase twin = allValidTwin();
    ASSERT_TRUE(twin.masked());
    for (Tier tier : {Tier::Scalar, Tier::Avx2, Tier::Avx512}) {
        if (!tierAvailable(tier))
            continue;
        SCOPED_TRACE(simd::tierName(tier));
        expectIdentical(runSplit(db_, tier, 1), runSplit(twin, tier, 1));
    }
}

TEST_F(MaskedEmptyMaskIdentity, AllValidMaskMatchesDenseAcrossThreads)
{
    const dataset::PerfDatabase twin = allValidTwin();
    const auto reference = runSplit(db_, Tier::Scalar, 1);
    expectIdentical(reference, runSplit(twin, Tier::Scalar, 4));
    if (tierAvailable(Tier::Avx2))
        expectIdentical(reference, runSplit(twin, Tier::Avx2, 4));
    if (tierAvailable(Tier::Avx512))
        expectIdentical(reference, runSplit(twin, Tier::Avx512, 4));
}

TEST(MaskedLeastSquares, EmptyAndAllSetRowMasksReproduceDense)
{
    linalg::Matrix a(5, 2);
    const double rows[5][2] = {{1.0, 0.5},
                               {1.0, 1.5},
                               {1.0, 2.0},
                               {1.0, 3.25},
                               {1.0, 4.0}};
    std::vector<double> b = {1.1, 2.3, 2.9, 4.6, 5.2};
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            a(r, c) = rows[r][c];

    const auto dense = linalg::solveLeastSquares(a, b);
    const auto empty = linalg::solveLeastSquaresMasked(a, b, {});
    const auto all_set =
        linalg::solveLeastSquaresMasked(a, b, {0x1f});
    EXPECT_EQ(dense.coefficients, empty.coefficients);
    EXPECT_EQ(dense.residualSumSquares, empty.residualSumSquares);
    EXPECT_EQ(dense.coefficients, all_set.coefficients);
    EXPECT_EQ(dense.residualSumSquares, all_set.residualSumSquares);

    const auto ridge = linalg::solveRidge(a, b, 1e-4);
    const auto ridge_masked =
        linalg::solveRidgeMasked(a, b, {0x1f}, 1e-4);
    EXPECT_EQ(ridge.coefficients, ridge_masked.coefficients);
}

TEST(MaskedLeastSquares, DroppedRowsMatchAnExplicitlyCompactedSolve)
{
    linalg::Matrix a(6, 2);
    std::vector<double> b(6);
    for (std::size_t r = 0; r < 6; ++r) {
        a(r, 0) = 1.0;
        a(r, 1) = 0.5 * static_cast<double>(r + 1);
        b[r] = 1.0 + 0.9 * a(r, 1) + (r % 2 == 0 ? 0.05 : -0.05);
    }
    // Keep rows 0, 2, 3, 5 (bits 0b101101).
    const std::vector<std::uint64_t> row_valid = {0x2d};
    const auto masked = linalg::solveLeastSquaresMasked(a, b, row_valid);

    const std::vector<std::size_t> keep = {0, 2, 3, 5};
    const linalg::Matrix a_kept = a.selectRows(keep);
    std::vector<double> b_kept;
    for (std::size_t r : keep)
        b_kept.push_back(b[r]);
    const auto compacted = linalg::solveLeastSquares(a_kept, b_kept);
    EXPECT_EQ(masked.coefficients, compacted.coefficients);
    EXPECT_EQ(masked.residualSumSquares, compacted.residualSumSquares);
}

TEST(MaskedLeastSquares, RejectsFullyMaskedSystems)
{
    linalg::Matrix a(3, 1);
    a(0, 0) = 1.0;
    a(1, 0) = 2.0;
    a(2, 0) = 3.0;
    const std::vector<double> b = {1.0, 2.0, 3.0};
    EXPECT_THROW(linalg::solveLeastSquaresMasked(a, b, {0x0}),
                 util::InvalidArgument);
}

/** Real missingness: every method must still produce finite, positive
 * predictions for every target machine (the degradation-sweep
 * invariant the nightly job relies on). */
TEST(MaskedPredictions, AllMethodsStayFiniteUnderRealMissingness)
{
    const dataset::PerfDatabase db = dataset::applyMissingness(
        dataset::makePaperDataset(), 0.3, 7);
    const linalg::Matrix chars =
        dataset::MicaGenerator().generateForCatalog();
    const experiments::SplitEvaluator evaluator(db, chars,
                                                fastSuite(2));
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < 10; ++m)
        predictive.push_back(m);
    const std::vector<std::size_t> target = {30, 31, 32, 33, 34};
    const auto results = evaluator.evaluateSplit(
        predictive, target, experiments::extendedMethods(), 1);
    for (const auto &[method, tasks] : results) {
        SCOPED_TRACE(experiments::methodName(method));
        ASSERT_EQ(tasks.size(), db.benchmarkCount());
        for (const auto &task : tasks)
            for (double v : task.predicted) {
                EXPECT_TRUE(std::isfinite(v));
                EXPECT_GT(v, 0.0);
            }
    }
}

/** Masked split evaluation is deterministic across thread counts even
 * with unobserved cells in play. */
TEST(MaskedPredictions, MissingnessIsThreadCountInvariant)
{
    const dataset::PerfDatabase db = dataset::applyMissingness(
        dataset::makePaperDataset(), 0.3, 7);
    const linalg::Matrix chars =
        dataset::MicaGenerator().generateForCatalog();
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < 10; ++m)
        predictive.push_back(m);
    const std::vector<std::size_t> target = {30, 31, 32, 33};

    const experiments::SplitEvaluator serial(db, chars, fastSuite(1));
    const experiments::SplitEvaluator parallel(db, chars, fastSuite(4));
    expectIdentical(
        serial.evaluateSplit(predictive, target,
                             experiments::extendedMethods(), 3),
        parallel.evaluateSplit(predictive, target,
                               experiments::extendedMethods(), 3));
}

/** densifiedProblem: identity matrices at all-valid, imputed + dropped
 * machines under real masks. */
TEST(MaskedProblems, DensifiedProblemIsIdentityAtAllValid)
{
    const dataset::PerfDatabase db = dataset::makePaperDataset();
    const dataset::PerfDatabase twin(
        db.benchmarks(), db.machines(), db.scores(),
        dataset::ScoreMask(db.benchmarkCount(), db.machineCount(),
                           true));
    const dataset::PerfDatabase pred = twin.selectMachines({0, 1, 2, 3});
    const dataset::PerfDatabase target =
        twin.selectMachines({10, 11, 12});
    const auto problem = core::makeLeaveOneOutProblem(pred, target, 0);
    ASSERT_TRUE(problem.masked());
    const auto densified = core::densifiedProblem(problem);
    EXPECT_FALSE(densified.masked());
    EXPECT_EQ(densified.predictiveBenchScores.data(),
              problem.predictiveBenchScores.data());
    EXPECT_EQ(densified.targetBenchScores.data(),
              problem.targetBenchScores.data());
    EXPECT_EQ(densified.predictiveAppScores,
              problem.predictiveAppScores);
}

} // namespace
