/**
 * @file
 * Tests for the dtrank_lint rule engine: each rule fires on its
 * fixture with the exact rule ID and line, near misses stay silent,
 * and `// dtrank-lint-ignore` suppression works in all three forms.
 *
 * Fixture files live in tests/lint/fixtures (a directory the tree
 * walker skips, since they contain deliberate violations) and are
 * linted *as if* they sat at a src/ path, because rule scope depends
 * on the path: kernel-only rules, src-only rules, exempt files.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace
{

using dtrank::lint::Finding;
using dtrank::lint::lintContent;

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(DTRANK_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Lints fixture `name` as if it lived at `as_path` in the repo. */
std::vector<Finding>
lintFixtureAs(const std::string &name, const std::string &as_path)
{
    return lintContent(as_path, readFixture(name));
}

TEST(DtrankLint, RawRandFixtureFiresWithExactLocation)
{
    const auto findings =
        lintFixtureAs("raw_rand.cpp", "src/core/bad.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "no-raw-rand");
    EXPECT_EQ(findings[0].file, "src/core/bad.cpp");
    EXPECT_EQ(findings[0].line, 4u);
}

TEST(DtrankLint, CoutFixtureFiresOnlyUnderSrc)
{
    const auto in_src =
        lintFixtureAs("cout_in_src.cpp", "src/core/bad.cpp");
    ASSERT_EQ(in_src.size(), 1u);
    EXPECT_EQ(in_src[0].rule, "no-cout-in-src");
    EXPECT_EQ(in_src[0].line, 7u);

    // Benches and tools legitimately print results to stdout.
    EXPECT_TRUE(
        lintFixtureAs("cout_in_src.cpp", "bench/bench_foo.cpp").empty());
    EXPECT_TRUE(
        lintFixtureAs("cout_in_src.cpp", "tools/foo.cpp").empty());
}

TEST(DtrankLint, FloatFixtureFiresOnlyInNumericKernels)
{
    for (const std::string dir : {"linalg", "stats", "ml", "simd"}) {
        const auto findings =
            lintFixtureAs("float_kernel.cpp", "src/" + dir + "/bad.cpp");
        ASSERT_EQ(findings.size(), 1u) << dir;
        EXPECT_EQ(findings[0].rule, "no-float-kernel");
        EXPECT_EQ(findings[0].line, 3u);
    }
    // The rule covers every TU under a kernel dir, including the
    // AVX-512 kernel table added alongside this test.
    const auto avx512_tu =
        lintFixtureAs("float_kernel.cpp", "src/simd/kernels_avx512.cpp");
    ASSERT_EQ(avx512_tu.size(), 1u);
    EXPECT_EQ(avx512_tu[0].rule, "no-float-kernel");

    // float is allowed outside the numeric kernels (e.g. dataset I/O).
    EXPECT_TRUE(
        lintFixtureAs("float_kernel.cpp", "src/dataset/ok.cpp").empty());
}

TEST(DtrankLint, MissingPragmaOnceFixtureFires)
{
    const auto findings =
        lintFixtureAs("missing_pragma.h", "src/core/bad.h");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "pragma-once");
    EXPECT_EQ(findings[0].line, 1u);

    // The rule is header-only: the same content as a .cpp is fine.
    EXPECT_TRUE(
        lintFixtureAs("missing_pragma.h", "src/core/ok.cpp").empty());
}

TEST(DtrankLint, NakedNewFixtureFiresButDeletedCtorDoesNot)
{
    const auto findings =
        lintFixtureAs("naked_new.cpp", "src/core/bad.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "no-naked-new");
    EXPECT_EQ(findings[0].line, 6u);
}

TEST(DtrankLint, StdMutexFixtureFiresOutsideTheWrapper)
{
    const auto findings =
        lintFixtureAs("std_mutex.cpp", "src/core/bad.cpp");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "no-std-mutex");
    EXPECT_EQ(findings[0].line, 5u);

    // The annotated wrapper itself is the one allowed user. (Linting
    // the fixture under a header path legitimately reports its missing
    // #pragma once, so assert only that no-std-mutex stays silent.)
    for (const Finding &finding :
         lintFixtureAs("std_mutex.cpp", "src/util/mutex.h"))
        EXPECT_NE(finding.rule, "no-std-mutex");
}

TEST(DtrankLint, RawIntrinsicsFixtureFiresEverywhereButSimd)
{
    const auto findings =
        lintFixtureAs("raw_intrinsics.cpp", "src/ml/bad.cpp");
    ASSERT_EQ(findings.size(), 3u);
    for (const Finding &finding : findings)
        EXPECT_EQ(finding.rule, "no-raw-intrinsics");
    EXPECT_EQ(findings[0].line, 2u); // the <immintrin.h> include
    EXPECT_EQ(findings[1].line, 6u); // __m256d + _mm256_loadu_pd
    EXPECT_EQ(findings[2].line, 7u); // _mm256_storeu_pd

    // The rule fires outside src/ too: benches and tools must also go
    // through the dispatch layer.
    EXPECT_FALSE(
        lintFixtureAs("raw_intrinsics.cpp", "bench/bench_foo.cpp")
            .empty());

    // The dispatch library is the one home for intrinsics.
    EXPECT_TRUE(
        lintFixtureAs("raw_intrinsics.cpp", "src/simd/kernels_avx2.cpp")
            .empty());
}

TEST(DtrankLint, Avx512IntrinsicsFixtureFiresOutsideSimd)
{
    const auto findings =
        lintFixtureAs("raw_intrinsics_avx512.cpp", "src/ml/bad.cpp");
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &finding : findings)
        EXPECT_EQ(finding.rule, "no-raw-intrinsics");
    EXPECT_EQ(findings[0].line, 4u); // __m512d + _mm512_mul_pd/loadu
    EXPECT_EQ(findings[1].line, 5u); // _mm512_storeu_pd

    // Benches and tools must also go through the dispatch layer.
    EXPECT_FALSE(
        lintFixtureAs("raw_intrinsics_avx512.cpp", "tools/foo.cpp")
            .empty());

    // The AVX-512 kernel TU sits in the one allowed home.
    EXPECT_TRUE(lintFixtureAs("raw_intrinsics_avx512.cpp",
                              "src/simd/kernels_avx512.cpp")
                    .empty());
}

TEST(DtrankLint, RawClockFixtureFiresOutsideObsAndBench)
{
    const auto findings =
        lintFixtureAs("raw_clock.cpp", "src/core/bad.cpp");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].rule, "no-raw-clock");
    EXPECT_EQ(findings[0].line, 8u);  // steady_clock::now()
    EXPECT_EQ(findings[1].rule, "no-raw-clock");
    EXPECT_EQ(findings[1].line, 9u);  // high_resolution_clock::now()

    // The clock shim itself and the benches are the allowed users.
    EXPECT_TRUE(
        lintFixtureAs("raw_clock.cpp", "src/obs/clock_extra.cpp")
            .empty());
    EXPECT_TRUE(
        lintFixtureAs("raw_clock.cpp", "bench/bench_foo.cpp").empty());
}

TEST(DtrankLint, IntrinsicLikeSubstringsInsideIdentifiersAreIgnored)
{
    EXPECT_TRUE(lintContent("src/core/ok.cpp",
                            "int custom_mm256_shim = 0;\n"
                            "// _mm256_add_pd in a comment\n"
                            "const char *s = \"immintrin.h\";\n")
                    .empty());
}

TEST(DtrankLint, CleanFixtureIsSilentEvenInKernelDirs)
{
    EXPECT_TRUE(lintFixtureAs("clean.cpp", "src/linalg/ok.cpp").empty());
    EXPECT_TRUE(lintFixtureAs("clean.cpp", "src/core/ok.cpp").empty());
}

TEST(DtrankLint, SuppressionCoversAllThreeForms)
{
    EXPECT_TRUE(
        lintFixtureAs("suppressed.cpp", "src/ml/ok.cpp").empty());
}

TEST(DtrankLint, SuppressionForADifferentRuleDoesNotApply)
{
    const auto findings = lintContent(
        "src/core/bad.cpp",
        "int x = std::rand(); // dtrank-lint-ignore(no-std-mutex)\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "no-raw-rand");
}

TEST(DtrankLint, RngHeaderIsExemptFromRawRand)
{
    const std::string engine = "std::mt19937_64 engine_;\n";
    EXPECT_TRUE(lintContent("src/util/rng.h", "#pragma once\n" + engine)
                    .empty());
    EXPECT_EQ(lintContent("src/ml/mlp.cpp", engine).size(), 1u);
}

TEST(DtrankLint, ViolationsInCommentsAndStringsAreIgnored)
{
    EXPECT_TRUE(lintContent("src/core/ok.cpp",
                            "// std::rand() in a comment\n"
                            "/* std::mutex in a block */\n"
                            "const char *s = \"std::cout\";\n")
                    .empty());
}

TEST(DtrankLint, TimeSeedAndBareRandAreCaught)
{
    const auto findings = lintContent(
        "src/core/bad.cpp",
        "unsigned a = rand();\nauto seed = time(nullptr);\n");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].rule, "no-raw-rand");
    EXPECT_EQ(findings[0].line, 1u);
    EXPECT_EQ(findings[1].rule, "no-raw-rand");
    EXPECT_EQ(findings[1].line, 2u);
}

TEST(DtrankLint, FormatFindingIsEditorParsable)
{
    const Finding finding{"no-raw-rand", "src/a.cpp", 12, "msg"};
    EXPECT_EQ(dtrank::lint::formatFinding(finding),
              "src/a.cpp:12: [no-raw-rand] msg");
}

TEST(DtrankLint, RuleCatalogIsComplete)
{
    const std::vector<std::string> expected = {
        "no-raw-rand",       "no-cout-in-src", "no-float-kernel",
        "no-naked-new",      "no-std-mutex",   "no-raw-intrinsics",
        "no-raw-clock",      "pragma-once",
    };
    EXPECT_EQ(dtrank::lint::ruleIds(), expected);
}

TEST(DtrankLint, RepositoryTreeIsLintClean)
{
    // The same invariant the dtrank_lint ctest enforces, reachable
    // from the unit suite so a violation points straight here too.
    const auto findings = dtrank::lint::lintTree(DTRANK_REPO_ROOT);
    for (const Finding &finding : findings)
        ADD_FAILURE() << dtrank::lint::formatFinding(finding);
}

} // namespace
