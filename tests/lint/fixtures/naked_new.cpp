// Fixture: exactly one no-naked-new violation, on line 6.
// The deleted copy constructor below must NOT be flagged.

struct Buffer
{
    double *data = new double[4];
    Buffer(const Buffer &) = delete;
};
