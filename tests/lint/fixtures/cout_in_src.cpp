// Fixture: exactly one no-cout-in-src violation, on line 7.
#include <iostream>

void
report()
{
    std::cout << "done\n";
}
