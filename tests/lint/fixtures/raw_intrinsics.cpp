// Fixture: raw vector intrinsics, legal only under src/simd/.
#include <immintrin.h>

void doubleInPlace(double *a)
{
    __m256d v = _mm256_loadu_pd(a);
    _mm256_storeu_pd(a, _mm256_add_pd(v, v));
}
