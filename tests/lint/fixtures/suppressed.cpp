// Fixture: every violation below carries a suppression directive, so
// the linter must report nothing. Exercises the same-line form, the
// comment-above form, and the bare (all-rules) form.
#include <cstdlib>

int seeded() { return std::rand(); } // dtrank-lint-ignore(no-raw-rand)

// dtrank-lint-ignore(no-std-mutex): fixture for the comment-above form
std::mutex g_lock;

// dtrank-lint-ignore
float g_tolerance = 0.0f;
