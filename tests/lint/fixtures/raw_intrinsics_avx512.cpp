// Fixture: AVX-512 intrinsics, legal only under src/simd/.
void scaleInPlace(double *a)
{
    __m512d v = _mm512_mul_pd(_mm512_loadu_pd(a), _mm512_set1_pd(2.0));
    _mm512_storeu_pd(a, v);
}
