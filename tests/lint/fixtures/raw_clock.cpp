// Fixture: raw clock reads that must flow through the obs clock shim.

#include <chrono>

void
timeSomething()
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::high_resolution_clock::now();
}
