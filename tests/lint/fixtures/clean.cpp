// Fixture: near misses only — every rule must stay silent.
//
// Mentions that must not trip anything: std::rand in this comment,
// a float here, new and delete words, std::mutex in prose.

#include <chrono>
#include <string>

/* block comment with std::cout << "x"; and time(nullptr) inside */

struct Clean
{
    Clean(const Clean &) = delete;
    int operand = 0;           // 'rand' inside an identifier
    int newSize = 1;           // 'new' inside an identifier
    std::string banner =
        "std::cout << std::rand(); float x; steady_clock::now();";
    int steady_clockwork = 0;  // 'steady_clock' inside an identifier
};
