// Fixture: a header with no #pragma once; one pragma-once violation.

inline int answer() { return 42; }
