// Fixture: exactly one no-std-mutex violation, on line 5.
// The <mutex> include itself is not the violation; naming the std
// primitive is.

std::mutex g_lock;
