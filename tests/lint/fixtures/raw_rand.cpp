// Fixture: exactly one no-raw-rand violation, on line 4.
#include <cstdlib>

int badSeed() { return std::rand(); }
