// Fixture: exactly one no-float-kernel violation, on line 3.

float halfPrecision(float a) { return a; }
