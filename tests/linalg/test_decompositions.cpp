/**
 * @file
 * Unit and property tests for the Cholesky and QR decompositions.
 */

#include <gtest/gtest.h>

#include "linalg/decompositions.h"
#include "linalg/matrix.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;
using linalg::Matrix;

Matrix
randomSpd(std::size_t n, util::Rng &rng)
{
    // A^T A + n*I is symmetric positive definite.
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
    Matrix spd = a.transposed().multiply(a);
    for (std::size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(Cholesky, FactorReconstructsMatrix)
{
    const Matrix a{{4, 2}, {2, 3}};
    const linalg::Cholesky chol(a);
    const Matrix l = chol.lower();
    EXPECT_TRUE(l.multiply(l.transposed()).approxEquals(a, 1e-10));
}

TEST(Cholesky, SolveKnownSystem)
{
    const Matrix a{{4, 2}, {2, 3}};
    // x = (1, 2) -> b = A x = (8, 8).
    const auto x = linalg::Cholesky(a).solve({8, 8});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Cholesky, Determinant)
{
    const Matrix a{{4, 2}, {2, 3}};
    EXPECT_NEAR(linalg::Cholesky(a).determinant(), 8.0, 1e-10);
}

TEST(Cholesky, RejectsNonSquare)
{
    EXPECT_THROW(linalg::Cholesky(Matrix(2, 3)),
                 util::InvalidArgument);
}

TEST(Cholesky, RejectsIndefinite)
{
    const Matrix indefinite{{1, 2}, {2, 1}};
    EXPECT_THROW(linalg::Cholesky{indefinite}, util::NumericalError);
}

class CholeskyPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CholeskyPropertyTest, SolvesRandomSpdSystems)
{
    util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = 2 + rng.index(8);
    const Matrix a = randomSpd(n, rng);
    std::vector<double> x_true(n);
    for (double &v : x_true)
        v = rng.uniform(-5.0, 5.0);
    const auto b = a.multiply(x_true);
    const auto x = linalg::Cholesky(a).solve(b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyPropertyTest,
                         ::testing::Range(0, 20));

TEST(Qr, RIsUpperTriangularAndReconstructs)
{
    const Matrix a{{1, 2}, {3, 4}, {5, 6}};
    const linalg::QrDecomposition qr(a);
    const Matrix r = qr.r();
    EXPECT_EQ(r.rows(), 2u);
    EXPECT_EQ(r.cols(), 2u);
    EXPECT_DOUBLE_EQ(r(1, 0), 0.0);
    // |R| diagonal magnitudes equal the column norms after reflection.
    EXPECT_TRUE(qr.fullRank());
}

TEST(Qr, SolveExactSystem)
{
    const Matrix a{{2, 0}, {0, 3}};
    const auto x = linalg::QrDecomposition(a).solve({4, 9});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Qr, LeastSquaresMinimizesResidual)
{
    // Overdetermined: fit y = c over 3 observations; solution is mean.
    const Matrix a{{1}, {1}, {1}};
    const auto x = linalg::QrDecomposition(a).solve({1.0, 2.0, 6.0});
    ASSERT_EQ(x.size(), 1u);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
}

TEST(Qr, RejectsUnderdetermined)
{
    EXPECT_THROW(linalg::QrDecomposition(Matrix(2, 3)),
                 util::InvalidArgument);
}

TEST(Qr, RankDeficientDetected)
{
    const Matrix a{{1, 2}, {2, 4}, {3, 6}}; // second column = 2x first
    const linalg::QrDecomposition qr(a);
    EXPECT_FALSE(qr.fullRank());
    EXPECT_THROW(qr.solve({1, 2, 3}), util::NumericalError);
}

TEST(Qr, ApplyQtPreservesNorm)
{
    util::Rng rng(99);
    Matrix a(5, 3);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
    const linalg::QrDecomposition qr(a);
    std::vector<double> b(5);
    for (double &v : b)
        v = rng.uniform(-1.0, 1.0);
    const auto qtb = qr.applyQt(b);
    double nb = 0.0;
    double nq = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
        nb += b[i] * b[i];
        nq += qtb[i] * qtb[i];
    }
    EXPECT_NEAR(nb, nq, 1e-10);
    EXPECT_THROW(qr.applyQt({1.0, 2.0}), util::InvalidArgument);
}

class QrPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(QrPropertyTest, RecoversRandomExactSolutions)
{
    util::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
    const std::size_t rows = 4 + rng.index(10);
    const std::size_t cols = 1 + rng.index(std::min<std::size_t>(rows, 5));
    Matrix a(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            a(r, c) = rng.uniform(-3.0, 3.0);
    std::vector<double> x_true(cols);
    for (double &v : x_true)
        v = rng.uniform(-2.0, 2.0);
    const auto b = a.multiply(x_true);
    const linalg::QrDecomposition qr(a);
    if (!qr.fullRank())
        GTEST_SKIP() << "random matrix happened to be rank deficient";
    const auto x = qr.solve(b);
    for (std::size_t i = 0; i < cols; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrPropertyTest, ::testing::Range(0, 20));

TEST(TriangularSolve, UpperAndLower)
{
    const Matrix u{{2, 1}, {0, 4}};
    const auto x = linalg::solveUpperTriangular(u, {4, 8});
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[0], 1.0, 1e-12);

    const Matrix l{{2, 0}, {1, 4}};
    const auto y = linalg::solveLowerTriangular(l, {4, 9});
    EXPECT_NEAR(y[0], 2.0, 1e-12);
    EXPECT_NEAR(y[1], 1.75, 1e-12);
}

TEST(TriangularSolve, SingularThrows)
{
    const Matrix u{{0, 1}, {0, 1}};
    EXPECT_THROW(linalg::solveUpperTriangular(u, {1, 1}),
                 util::NumericalError);
    const Matrix l{{0, 0}, {1, 1}};
    EXPECT_THROW(linalg::solveLowerTriangular(l, {1, 1}),
                 util::NumericalError);
}

TEST(TriangularSolve, ValidatesShapes)
{
    EXPECT_THROW(linalg::solveUpperTriangular(Matrix(2, 3), {1, 2}),
                 util::InvalidArgument);
    EXPECT_THROW(linalg::solveLowerTriangular(Matrix(2, 2), {1}),
                 util::InvalidArgument);
}

} // namespace
