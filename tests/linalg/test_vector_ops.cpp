/**
 * @file
 * Unit tests for the vector free functions.
 */

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(VectorOps, Dot)
{
    EXPECT_DOUBLE_EQ(linalg::dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(linalg::dot({}, {}), 0.0);
    EXPECT_THROW(linalg::dot({1}, {1, 2}), util::InvalidArgument);
}

TEST(VectorOps, Norm2)
{
    EXPECT_DOUBLE_EQ(linalg::norm2({3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(linalg::norm2({}), 0.0);
}

TEST(VectorOps, AddSubtract)
{
    EXPECT_EQ(linalg::add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
    EXPECT_EQ(linalg::subtract({3, 4}, {1, 2}),
              (std::vector<double>{2, 2}));
    EXPECT_THROW(linalg::add({1}, {1, 2}), util::InvalidArgument);
    EXPECT_THROW(linalg::subtract({1}, {1, 2}), util::InvalidArgument);
}

TEST(VectorOps, Scale)
{
    EXPECT_EQ(linalg::scale({1, -2}, 3.0),
              (std::vector<double>{3, -6}));
}

TEST(VectorOps, AddScaledInPlace)
{
    std::vector<double> a = {1, 1};
    linalg::addScaled(a, {2, 3}, 0.5);
    EXPECT_DOUBLE_EQ(a[0], 2.0);
    EXPECT_DOUBLE_EQ(a[1], 2.5);
    EXPECT_THROW(linalg::addScaled(a, {1}, 1.0), util::InvalidArgument);
}

TEST(VectorOps, SquaredDistance)
{
    EXPECT_DOUBLE_EQ(linalg::squaredDistance({0, 0}, {3, 4}), 25.0);
    EXPECT_DOUBLE_EQ(linalg::squaredDistance({1, 1}, {1, 1}), 0.0);
    EXPECT_THROW(linalg::squaredDistance({1}, {1, 2}),
                 util::InvalidArgument);
}

TEST(VectorOps, WeightedSquaredDistance)
{
    EXPECT_DOUBLE_EQ(
        linalg::weightedSquaredDistance({0, 0}, {1, 2}, {2, 0.5}),
        2.0 * 1.0 + 0.5 * 4.0);
    // Zero weights erase dimensions entirely.
    EXPECT_DOUBLE_EQ(
        linalg::weightedSquaredDistance({0, 0}, {1, 100}, {1, 0}), 1.0);
    EXPECT_THROW(
        linalg::weightedSquaredDistance({1}, {1, 2}, {1, 1}),
        util::InvalidArgument);
    EXPECT_THROW(
        linalg::weightedSquaredDistance({1, 2}, {1, 2}, {1}),
        util::InvalidArgument);
}

} // namespace
