/**
 * @file
 * Unit and property tests for the symmetric eigendecomposition.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;
using linalg::Matrix;

TEST(EigenSymmetric, DiagonalMatrix)
{
    const Matrix a{{3, 0}, {0, 1}};
    const auto result = linalg::eigenSymmetric(a);
    ASSERT_EQ(result.eigenvalues.size(), 2u);
    EXPECT_NEAR(result.eigenvalues[0], 3.0, 1e-12);
    EXPECT_NEAR(result.eigenvalues[1], 1.0, 1e-12);
}

TEST(EigenSymmetric, KnownTwoByTwo)
{
    // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
    const Matrix a{{2, 1}, {1, 2}};
    const auto result = linalg::eigenSymmetric(a);
    EXPECT_NEAR(result.eigenvalues[0], 3.0, 1e-10);
    EXPECT_NEAR(result.eigenvalues[1], 1.0, 1e-10);
    // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
    const double v0 = result.eigenvectors(0, 0);
    const double v1 = result.eigenvectors(1, 0);
    EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(EigenSymmetric, EigenvaluesSortedDescending)
{
    util::Rng rng(4);
    Matrix a(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = i; j < 5; ++j) {
            const double v = rng.uniform(-2.0, 2.0);
            a(i, j) = v;
            a(j, i) = v;
        }
    const auto result = linalg::eigenSymmetric(a);
    for (std::size_t i = 1; i < 5; ++i)
        EXPECT_GE(result.eigenvalues[i - 1], result.eigenvalues[i]);
}

class EigenPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EigenPropertyTest, ReconstructsRandomSymmetricMatrices)
{
    util::Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = 2 + rng.index(7);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
            const double v = rng.uniform(-3.0, 3.0);
            a(i, j) = v;
            a(j, i) = v;
        }

    const auto result = linalg::eigenSymmetric(a);
    const Matrix &v = result.eigenvectors;

    // V diag(w) V^T must reconstruct A.
    Matrix d(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        d(i, i) = result.eigenvalues[i];
    const Matrix rebuilt = v.multiply(d).multiply(v.transposed());
    EXPECT_TRUE(rebuilt.approxEquals(a, 1e-8));

    // V must be orthonormal.
    EXPECT_TRUE(v.transposed().multiply(v).approxEquals(
        Matrix::identity(n), 1e-8));

    // Trace is preserved.
    double trace = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        trace += a(i, i);
        sum += result.eigenvalues[i];
    }
    EXPECT_NEAR(trace, sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenPropertyTest,
                         ::testing::Range(0, 15));

TEST(EigenSymmetric, Validation)
{
    EXPECT_THROW(linalg::eigenSymmetric(Matrix(2, 3)),
                 util::InvalidArgument);
    const Matrix asym{{1, 2}, {3, 4}};
    EXPECT_THROW(linalg::eigenSymmetric(asym), util::InvalidArgument);
}

TEST(EigenSymmetric, OneByOne)
{
    const auto result = linalg::eigenSymmetric(Matrix{{7.0}});
    EXPECT_DOUBLE_EQ(result.eigenvalues[0], 7.0);
    EXPECT_DOUBLE_EQ(std::fabs(result.eigenvectors(0, 0)), 1.0);
}

} // namespace
