/**
 * @file
 * Unit tests for the dense Matrix type.
 */

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "simd/simd.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using linalg::Matrix;

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerList)
{
    Matrix m{{1, 2}, {3, 4}, {5, 6}};
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows)
{
    EXPECT_THROW((Matrix{{1, 2}, {3}}), util::InvalidArgument);
}

TEST(Matrix, Identity)
{
    const Matrix id = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, VectorFactories)
{
    const Matrix col = Matrix::columnVector({1, 2, 3});
    EXPECT_EQ(col.rows(), 3u);
    EXPECT_EQ(col.cols(), 1u);
    EXPECT_DOUBLE_EQ(col(1, 0), 2.0);

    const Matrix row = Matrix::rowVector({4, 5});
    EXPECT_EQ(row.rows(), 1u);
    EXPECT_EQ(row.cols(), 2u);
    EXPECT_DOUBLE_EQ(row(0, 1), 5.0);
}

TEST(Matrix, BoundsCheckedAccess)
{
    Matrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), util::InvalidArgument);
    EXPECT_THROW(m.at(0, 2), util::InvalidArgument);
    m.at(1, 1) = 9.0;
    EXPECT_DOUBLE_EQ(m.at(1, 1), 9.0);
}

TEST(Matrix, RowColumnCopies)
{
    const Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
    EXPECT_EQ(m.column(2), (std::vector<double>{3, 6}));
    EXPECT_THROW(m.row(2), util::InvalidArgument);
    EXPECT_THROW(m.column(3), util::InvalidArgument);
}

TEST(Matrix, SetRowColumn)
{
    Matrix m(2, 2, 0.0);
    m.setRow(0, {1, 2});
    m.setColumn(1, {7, 8});
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
    EXPECT_THROW(m.setRow(0, {1}), util::InvalidArgument);
    EXPECT_THROW(m.setColumn(0, {1, 2, 3}), util::InvalidArgument);
}

TEST(Matrix, Transpose)
{
    const Matrix m{{1, 2, 3}, {4, 5, 6}};
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_TRUE(t.transposed().approxEquals(m));
}

TEST(Matrix, MultiplyKnownProduct)
{
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{5, 6}, {7, 8}};
    const Matrix c = a.multiply(b);
    EXPECT_TRUE(c.approxEquals(Matrix{{19, 22}, {43, 50}}));
}

TEST(Matrix, MultiplyIdentityIsNoop)
{
    const Matrix a{{1, 2}, {3, 4}};
    EXPECT_TRUE(a.multiply(Matrix::identity(2)).approxEquals(a));
    EXPECT_TRUE(Matrix::identity(2).multiply(a).approxEquals(a));
}

TEST(Matrix, MultiplyDimensionMismatchThrows)
{
    const Matrix a(2, 3);
    const Matrix b(2, 3);
    EXPECT_THROW(a.multiply(b), util::InvalidArgument);
}

TEST(Matrix, MatrixVectorProduct)
{
    const Matrix a{{1, 2}, {3, 4}};
    EXPECT_EQ(a.multiply(std::vector<double>{1, 1}),
              (std::vector<double>{3, 7}));
    EXPECT_THROW(a.multiply(std::vector<double>{1}),
                 util::InvalidArgument);
}

TEST(Matrix, AddSubtractScale)
{
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{4, 3}, {2, 1}};
    EXPECT_TRUE(a.add(b).approxEquals(Matrix{{5, 5}, {5, 5}}));
    EXPECT_TRUE(a.subtract(a).approxEquals(Matrix(2, 2, 0.0)));
    EXPECT_TRUE(a.scaled(2.0).approxEquals(Matrix{{2, 4}, {6, 8}}));
    EXPECT_THROW(a.add(Matrix(1, 2)), util::InvalidArgument);
    EXPECT_THROW(a.subtract(Matrix(2, 3)), util::InvalidArgument);
}

TEST(Matrix, Select)
{
    const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    const Matrix s = m.select({2, 0}, {1});
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_EQ(s.cols(), 1u);
    EXPECT_DOUBLE_EQ(s(0, 0), 8.0);
    EXPECT_DOUBLE_EQ(s(1, 0), 2.0);
    EXPECT_THROW(m.select({3}, {0}), util::InvalidArgument);
    EXPECT_THROW(m.select({0}, {3}), util::InvalidArgument);
}

TEST(Matrix, SelectRowsColumns)
{
    const Matrix m{{1, 2}, {3, 4}, {5, 6}};
    EXPECT_TRUE(m.selectRows({1}).approxEquals(Matrix{{3, 4}}));
    EXPECT_TRUE(
        m.selectColumns({1}).approxEquals(Matrix{{2}, {4}, {6}}));
}

TEST(Matrix, Norms)
{
    const Matrix m{{3, 4}};
    EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
    EXPECT_DOUBLE_EQ(m.maxAbs(), 4.0);
    EXPECT_DOUBLE_EQ(Matrix().maxAbs(), 0.0);
}

TEST(Matrix, ApproxEquals)
{
    const Matrix a{{1.0}};
    const Matrix b{{1.0 + 1e-13}};
    EXPECT_TRUE(a.approxEquals(b));
    EXPECT_FALSE(a.approxEquals(Matrix{{1.1}}));
    EXPECT_FALSE(a.approxEquals(Matrix(2, 1)));
}

TEST(Matrix, EqualityOperator)
{
    const Matrix a{{1, 2}};
    Matrix b{{1, 2}};
    EXPECT_EQ(a, b);
    b(0, 1) = 3;
    EXPECT_NE(a, b);
}

TEST(Matrix, ToStringMentionsEntries)
{
    const Matrix m{{1.5, 2.0}};
    const std::string s = m.toString(1);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("2.0"), std::string::npos);
}

/** Deterministic pseudo-random fill (no RNG dependency needed). */
Matrix
patternMatrix(std::size_t rows, std::size_t cols, double seed)
{
    Matrix m(rows, cols);
    double v = seed;
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) {
            v = v * 1.7 - static_cast<double>((r + 2 * c) % 13) * 0.35;
            if (v > 10.0 || v < -10.0)
                v *= 0.03125;
            m(r, c) = v;
        }
    return m;
}

/** Textbook triple loop; the blocked kernel must match it bit for bit. */
Matrix
referenceMultiply(const Matrix &a, const Matrix &b)
{
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k)
                sum += a(i, k) * b(k, j);
            out(i, j) = sum;
        }
    return out;
}

TEST(Matrix, BlockedMultiplyMatchesReferenceAcrossTileBoundaries)
{
    // Dimensions straddle the 64-wide tile so partial edge tiles, full
    // interior tiles, and multi-tile k accumulation are all exercised.
    const Matrix a = patternMatrix(70, 65, 0.5);
    const Matrix b = patternMatrix(65, 67, -0.25);
    EXPECT_EQ(a.multiply(b), referenceMultiply(a, b));
}

TEST(Matrix, BlockedMultiplySkipsZeroRowsLikeReference)
{
    Matrix a = patternMatrix(66, 66, 1.0);
    for (std::size_t k = 0; k < a.cols(); ++k)
        a(13, k) = 0.0;
    const Matrix b = patternMatrix(66, 66, 2.0);
    EXPECT_EQ(a.multiply(b), referenceMultiply(a, b));
}

TEST(Matrix, MultiplyTransposedMatchesExplicitTranspose)
{
    const Matrix a = patternMatrix(17, 70, 0.75);
    const Matrix b = patternMatrix(23, 70, -1.5);
    const Matrix fast = a.multiplyTransposed(b);
    const Matrix reference = referenceMultiply(a, b.transposed());
    EXPECT_EQ(fast.rows(), 17u);
    EXPECT_EQ(fast.cols(), 23u);
    // The per-element dot uses the canonical lane-blocked reduction,
    // which reorders the k sum relative to the textbook loop — so the
    // explicit transpose product agrees to rounding, not bit-for-bit...
    EXPECT_TRUE(fast.approxEquals(reference, 1e-9));
    // ...while the scalar-tier canonical spec must match exactly, at
    // whichever tier dispatch selected.
    const simd::KernelTable &spec = simd::scalarKernels();
    for (std::size_t i = 0; i < fast.rows(); ++i)
        for (std::size_t j = 0; j < fast.cols(); ++j)
            EXPECT_EQ(fast(i, j),
                      spec.dot(a.rowData(i), b.rowData(j), a.cols()));
}

TEST(Matrix, MultiplyTransposedValidatesSharedColumnCount)
{
    const Matrix a(3, 4);
    EXPECT_THROW(a.multiplyTransposed(Matrix(3, 5)),
                 util::InvalidArgument);
}

TEST(Matrix, SelectRowsExceptDropsExactlyOneRow)
{
    const Matrix m{{1, 2}, {3, 4}, {5, 6}};
    EXPECT_EQ(m.selectRowsExcept(0), (Matrix{{3, 4}, {5, 6}}));
    EXPECT_EQ(m.selectRowsExcept(1), (Matrix{{1, 2}, {5, 6}}));
    EXPECT_EQ(m.selectRowsExcept(2), (Matrix{{1, 2}, {3, 4}}));
    EXPECT_THROW(m.selectRowsExcept(3), util::InvalidArgument);
}

} // namespace
