/**
 * @file
 * Unit tests for least-squares solving (plain and ridge).
 */

#include <gtest/gtest.h>

#include "linalg/least_squares.h"
#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;
using linalg::Matrix;

TEST(LeastSquares, ExactSystemHasZeroResidual)
{
    const Matrix a{{1, 0}, {0, 1}, {1, 1}};
    const std::vector<double> b = {1, 2, 3}; // exactly x = (1, 2)
    const auto fit = linalg::solveLeastSquares(a, b);
    EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-10);
    EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-10);
    EXPECT_NEAR(fit.residualSumSquares, 0.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMeanFit)
{
    const Matrix a{{1}, {1}, {1}, {1}};
    const auto fit = linalg::solveLeastSquares(a, {1, 2, 3, 6});
    EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-12);
    // RSS = (1-3)^2 + (2-3)^2 + (3-3)^2 + (6-3)^2 = 14.
    EXPECT_NEAR(fit.residualSumSquares, 14.0, 1e-10);
}

TEST(LeastSquares, ValidatesShape)
{
    EXPECT_THROW(linalg::solveLeastSquares(Matrix(2, 2), {1, 2, 3}),
                 util::InvalidArgument);
    EXPECT_THROW(linalg::solveLeastSquares(Matrix(2, 3), {1, 2}),
                 util::InvalidArgument);
}

TEST(Ridge, ApproachesOlsForTinyLambda)
{
    util::Rng rng(5);
    Matrix a(20, 3);
    for (std::size_t r = 0; r < 20; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a(r, c) = rng.uniform(-2.0, 2.0);
    std::vector<double> b(20);
    for (double &v : b)
        v = rng.uniform(-2.0, 2.0);

    const auto ols = linalg::solveLeastSquares(a, b);
    const auto ridge = linalg::solveRidge(a, b, 1e-10);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(ridge.coefficients[i], ols.coefficients[i], 1e-6);
}

TEST(Ridge, ShrinksCoefficients)
{
    const Matrix a{{1, 0}, {0, 1}};
    const std::vector<double> b = {10, 10};
    const auto small = linalg::solveRidge(a, b, 0.01);
    const auto large = linalg::solveRidge(a, b, 100.0);
    EXPECT_GT(std::abs(small.coefficients[0]),
              std::abs(large.coefficients[0]));
    EXPECT_LT(std::abs(large.coefficients[0]), 1.0);
}

TEST(Ridge, HandlesCollinearColumns)
{
    // Perfectly collinear design: plain OLS would be rank deficient.
    const Matrix a{{1, 2}, {2, 4}, {3, 6}};
    EXPECT_THROW(linalg::solveLeastSquares(a, {1, 2, 3}),
                 util::NumericalError);
    const auto ridge = linalg::solveRidge(a, {1, 2, 3}, 0.1);
    EXPECT_EQ(ridge.coefficients.size(), 2u);
    for (double c : ridge.coefficients)
        EXPECT_TRUE(std::isfinite(c));
}

TEST(Ridge, ValidatesArguments)
{
    EXPECT_THROW(linalg::solveRidge(Matrix(2, 1), {1, 2}, 0.0),
                 util::InvalidArgument);
    EXPECT_THROW(linalg::solveRidge(Matrix(2, 1), {1}, 1.0),
                 util::InvalidArgument);
}

} // namespace
