/**
 * @file
 * Tests for the processor-family cross-validation protocol (reduced
 * budgets; the full-budget reproduction lives in the bench binaries).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/family_cv.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using experiments::Method;

experiments::MethodSuiteConfig
fastSuite()
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 15;
    config.gaKnn.ga.populationSize = 8;
    config.gaKnn.ga.generations = 3;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
    experiments::SplitEvaluator evaluator{db, chars, fastSuite()};
};

TEST(FamilyCv, CoversEveryFamilyOnce)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    EXPECT_EQ(results.families.size(), f.db.families().size());
    const std::set<std::string> uniq(results.families.begin(),
                                     results.families.end());
    EXPECT_EQ(uniq.size(), results.families.size());
}

TEST(FamilyCv, EveryMachinePredictedExactlyOnce)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    // Pool the per-cell target counts for one benchmark: together the
    // 17 family splits must cover all 117 machines exactly once.
    std::size_t machines_covered = 0;
    for (const auto &cell : results.cells.at(Method::NnT))
        if (cell.task.benchmark == "gcc")
            machines_covered += cell.task.predicted.size();
    EXPECT_EQ(machines_covered, f.db.machineCount());
}

TEST(FamilyCv, CellCountIsFamiliesTimesBenchmarks)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    EXPECT_EQ(results.cells.at(Method::NnT).size(),
              results.families.size() * f.db.benchmarkCount());
}

TEST(FamilyCv, PooledMetricsAreReasonable)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    // Pooled over the whole machine spectrum, NN^T must track actual
    // performance well even at a reduced budget.
    const auto agg = results.rankAggregate(Method::NnT);
    EXPECT_GT(agg.average, 0.8);
    EXPECT_LE(agg.average, 1.0);
    EXPECT_LE(agg.worst, agg.average);
}

TEST(FamilyCv, PooledMetricsMatchPerBenchmarkAccessors)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    const auto pooled = results.pooledMetrics(Method::NnT, "mcf");
    EXPECT_DOUBLE_EQ(results.benchmarkMeanRank(Method::NnT, "mcf"),
                     pooled.rankCorrelation);
    EXPECT_DOUBLE_EQ(results.benchmarkMeanTop1(Method::NnT, "mcf"),
                     pooled.top1ErrorPercent);
}

TEST(FamilyCv, MetricsOfListsEveryBenchmark)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    EXPECT_EQ(results.metricsOf(Method::NnT).size(),
              f.db.benchmarkCount());
}

TEST(FamilyCv, UnknownMethodOrBenchmarkThrows)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    EXPECT_THROW(results.rankAggregate(Method::MlpT),
                 util::InvalidArgument);
    EXPECT_THROW(results.pooledMetrics(Method::NnT, "no-such-bench"),
                 util::InvalidArgument);
}

TEST(FamilyCv, ValidatesMinFamilySize)
{
    Fixture f;
    EXPECT_THROW(
        experiments::FamilyCrossValidation(f.evaluator, 1),
        util::InvalidArgument);
}

} // namespace
