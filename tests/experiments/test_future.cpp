/**
 * @file
 * Tests for the future-machine prediction protocol (Table 3).
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/future.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using experiments::Method;

experiments::MethodSuiteConfig
fastSuite()
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 15;
    config.gaKnn.ga.populationSize = 8;
    config.gaKnn.ga.generations = 3;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
    experiments::SplitEvaluator evaluator{db, chars, fastSuite()};
};

TEST(FuturePrediction, ThreeErasNewestFirst)
{
    Fixture f;
    const experiments::FuturePrediction protocol(f.evaluator, 2009);
    const auto results = protocol.run({Method::NnT});
    ASSERT_EQ(results.eras.size(), 3u);
    EXPECT_EQ(results.eras[0].label, "2008");
    EXPECT_EQ(results.eras[1].label, "2007");
    EXPECT_EQ(results.eras[2].label, "older");
}

TEST(FuturePrediction, TargetsAreThe2009Machines)
{
    Fixture f;
    const experiments::FuturePrediction protocol(f.evaluator, 2009);
    const auto results = protocol.run({Method::NnT});
    EXPECT_EQ(results.targetMachines,
              f.db.machineIndicesByYear(2009));
    for (std::size_t m : results.targetMachines)
        EXPECT_EQ(f.db.machine(m).releaseYear, 2009);
}

TEST(FuturePrediction, ErasPartitionThePast)
{
    Fixture f;
    const experiments::FuturePrediction protocol(f.evaluator, 2009);
    const auto results = protocol.run({Method::NnT});
    std::size_t total = 0;
    for (const auto &era : results.eras) {
        total += era.predictiveMachines.size();
        for (std::size_t m : era.predictiveMachines)
            EXPECT_LT(f.db.machine(m).releaseYear, 2009);
    }
    EXPECT_EQ(total, f.db.machineIndicesBeforeYear(2009).size());
}

TEST(FuturePrediction, EraAggregatesAvailablePerMethod)
{
    Fixture f;
    const experiments::FuturePrediction protocol(f.evaluator, 2009);
    const auto results = protocol.run({Method::NnT, Method::GaKnn});
    for (const auto &era : results.eras) {
        EXPECT_EQ(era.tasks.at(Method::NnT).size(),
                  f.db.benchmarkCount());
        const auto rank = era.rankAggregate(Method::NnT);
        EXPECT_GE(rank.average, -1.0);
        EXPECT_LE(rank.average, 1.0);
        EXPECT_GE(era.top1Aggregate(Method::GaKnn).average, 0.0);
        EXPECT_GE(era.meanErrorAggregate(Method::GaKnn).average, 0.0);
        EXPECT_THROW(era.rankAggregate(Method::MlpT),
                     util::InvalidArgument);
    }
}

TEST(FuturePrediction, NearEraPredictsBetterThanFarEra)
{
    // The paper's core Table 3 finding for data transposition: the
    // 2008 predictive set beats the much older machines.
    Fixture f;
    const experiments::FuturePrediction protocol(f.evaluator, 2009);
    const auto results = protocol.run({Method::NnT});
    const double near_rank =
        results.eras[0].rankAggregate(Method::NnT).average;
    const double far_rank =
        results.eras[2].rankAggregate(Method::NnT).average;
    EXPECT_GE(near_rank, far_rank - 0.05);
}

TEST(FuturePrediction, InvalidTargetYearThrows)
{
    Fixture f;
    const experiments::FuturePrediction protocol(f.evaluator, 1999);
    EXPECT_THROW(protocol.run({Method::NnT}), util::InvalidArgument);
}

} // namespace
