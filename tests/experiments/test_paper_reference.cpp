/**
 * @file
 * Sanity checks on the transcribed paper numbers.
 */

#include <gtest/gtest.h>

#include "experiments/paper_reference.h"

namespace
{

using namespace dtrank;
using namespace dtrank::experiments;

TEST(PaperReference, Table2HasAllMethods)
{
    const auto &t = paper::table2();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t.at(Method::MlpT).rankCorrelation.average, 0.93);
    EXPECT_DOUBLE_EQ(t.at(Method::MlpT).rankCorrelation.worst, 0.71);
    EXPECT_DOUBLE_EQ(t.at(Method::NnT).top1Error.worst, 156.7);
    EXPECT_DOUBLE_EQ(t.at(Method::GaKnn).rankCorrelation.worst, 0.59);
    EXPECT_DOUBLE_EQ(t.at(Method::GaKnn).meanError.average, 6.25);
}

TEST(PaperReference, Table2OrderingMatchesTheAbstract)
{
    // The abstract's headline claims, encoded as invariants of the
    // transcription: MLP^T has the best rank correlation and the best
    // worst case.
    const auto &t = paper::table2();
    EXPECT_GT(t.at(Method::MlpT).rankCorrelation.average,
              t.at(Method::NnT).rankCorrelation.average);
    EXPECT_GT(t.at(Method::MlpT).rankCorrelation.average,
              t.at(Method::GaKnn).rankCorrelation.average);
    EXPECT_GT(t.at(Method::MlpT).rankCorrelation.worst,
              t.at(Method::GaKnn).rankCorrelation.worst);
    EXPECT_LT(t.at(Method::MlpT).top1Error.worst, 100.0);
    EXPECT_GT(t.at(Method::NnT).top1Error.worst, 100.0);
    EXPECT_GT(t.at(Method::GaKnn).top1Error.worst, 100.0);
}

TEST(PaperReference, Table3HasBothTranspositionMethods)
{
    const auto &t = paper::table3();
    ASSERT_EQ(t.size(), 2u);
    for (const auto &era : {"2008", "2007", "older"}) {
        EXPECT_TRUE(t.at(Method::MlpT).count(era)) << era;
        EXPECT_TRUE(t.at(Method::NnT).count(era)) << era;
    }
    EXPECT_DOUBLE_EQ(t.at(Method::MlpT).at("2008").rankCorrelation.average,
                     0.93);
    EXPECT_DOUBLE_EQ(t.at(Method::NnT).at("older").top1Error.average,
                     2.07);
}

TEST(PaperReference, Table3RankDegradesWithDistance)
{
    const auto &t = paper::table3();
    for (Method m : {Method::MlpT, Method::NnT}) {
        EXPECT_GE(t.at(m).at("2008").rankCorrelation.average,
                  t.at(m).at("2007").rankCorrelation.average);
        EXPECT_GE(t.at(m).at("2007").rankCorrelation.average,
                  t.at(m).at("older").rankCorrelation.average);
    }
}

TEST(PaperReference, Table4SubsetSizes)
{
    const auto &t = paper::table4();
    for (Method m : {Method::MlpT, Method::NnT}) {
        for (std::size_t size : {10u, 5u, 3u})
            EXPECT_TRUE(t.at(m).count(size));
    }
    // The paper's robustness claim: MLP^T at 3 machines still ranks at
    // 0.89, better than NN^T's 0.81.
    EXPECT_GT(t.at(Method::MlpT).at(3).rankCorrelation,
              t.at(Method::NnT).at(3).rankCorrelation);
}

TEST(PaperReference, Figure8Headline)
{
    const auto ref = paper::figure8();
    EXPECT_GT(ref.kmedoidsK2, ref.randomK5);
}

TEST(PaperReference, Figure6Headline)
{
    const auto ref = paper::figure6();
    EXPECT_EQ(ref.worstBenchmark, "leslie3d");
    EXPECT_GT(ref.transpositionOnWorst, ref.gaKnnWorst);
}

} // namespace
