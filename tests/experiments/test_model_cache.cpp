/**
 * @file
 * Tests for the cross-protocol trained-model cache: hit/miss/eviction
 * accounting, FIFO eviction under a small capacity, the GA fitness memo
 * adapter, and the central guarantee that enabling the cache changes no
 * result bit at any thread count.
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/harness.h"
#include "experiments/model_cache.h"
#include "util/hash.h"

namespace
{

using namespace dtrank;
using experiments::Method;
using experiments::TrainedModelCache;

util::HashKey
keyOf(std::uint64_t i)
{
    return util::ContentHasher().add(i).key();
}

TEST(TrainedModelCache, LookupStoreAndStats)
{
    TrainedModelCache cache;
    std::vector<double> value;

    EXPECT_FALSE(cache.lookup(keyOf(1), value));
    cache.store(keyOf(1), {1.5, 2.5});
    ASSERT_TRUE(cache.lookup(keyOf(1), value));
    EXPECT_EQ(value, (std::vector<double>{1.5, 2.5}));
    EXPECT_FALSE(cache.lookup(keyOf(2), value));

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(TrainedModelCache, ClearKeepsCounters)
{
    TrainedModelCache cache;
    std::vector<double> value;
    cache.store(keyOf(1), {1.0});
    ASSERT_TRUE(cache.lookup(keyOf(1), value));
    cache.clear();
    EXPECT_FALSE(cache.lookup(keyOf(1), value));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(TrainedModelCache, EvictsFifoUnderSmallCapacity)
{
    // Capacity 16 resolves to one entry per shard; inserting many
    // distinct keys must evict and keep the resident count bounded
    // while the evicted keys simply re-miss (never wrong values).
    TrainedModelCache cache(16);
    EXPECT_EQ(cache.capacity(), 16u);
    for (std::uint64_t i = 0; i < 200; ++i)
        cache.store(keyOf(i), {static_cast<double>(i)});

    const auto stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.entries, 16u);
    EXPECT_EQ(stats.entries + stats.evictions, 200u);

    // Whatever is still resident must hold its own value.
    std::vector<double> value;
    std::size_t resident = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        if (cache.lookup(keyOf(i), value)) {
            ++resident;
            EXPECT_EQ(value,
                      (std::vector<double>{static_cast<double>(i)}));
        }
    }
    EXPECT_EQ(resident, stats.entries);
}

TEST(TrainedModelCache, StoreIsFirstWriterWins)
{
    // Two workers can race to compute the same pure value; the second
    // store must not disturb the resident entry.
    TrainedModelCache cache;
    cache.store(keyOf(7), {1.0});
    cache.store(keyOf(7), {1.0});
    std::vector<double> value;
    ASSERT_TRUE(cache.lookup(keyOf(7), value));
    EXPECT_EQ(value, (std::vector<double>{1.0}));
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(CachedFitnessMemo, RoundTripsAndIsolatesModels)
{
    TrainedModelCache cache;
    experiments::CachedFitnessMemo memo_a(cache, keyOf(100));
    experiments::CachedFitnessMemo memo_b(cache, keyOf(200));

    const std::vector<double> genome = {0.25, 0.5, 0.75};
    double fitness = 0.0;
    EXPECT_FALSE(memo_a.lookup(genome, fitness));
    memo_a.store(genome, -3.5);
    ASSERT_TRUE(memo_a.lookup(genome, fitness));
    EXPECT_EQ(fitness, -3.5);

    // Same genome under a different model key must not collide.
    EXPECT_FALSE(memo_b.lookup(genome, fitness));
}

// ---------------------------------------------------------------------
// Cache on/off bit-identity across the full method suite.
// ---------------------------------------------------------------------

experiments::MethodSuiteConfig
fastSuite(std::size_t threads,
          std::shared_ptr<TrainedModelCache> cache = nullptr)
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 20;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 4;
    config.parallel.threads = threads;
    config.modelCache = std::move(cache);
    return config;
}

/** Exact, field-by-field comparison of two split evaluations. */
void
expectIdentical(const experiments::SplitResults &a,
                const experiments::SplitResults &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[method, a_tasks] : a) {
        SCOPED_TRACE(experiments::methodName(method));
        const auto it = b.find(method);
        ASSERT_NE(it, b.end());
        const auto &b_tasks = it->second;
        ASSERT_EQ(a_tasks.size(), b_tasks.size());
        for (std::size_t i = 0; i < a_tasks.size(); ++i) {
            const experiments::TaskResult &s = a_tasks[i];
            const experiments::TaskResult &p = b_tasks[i];
            EXPECT_EQ(s.benchmark, p.benchmark);
            EXPECT_EQ(s.predicted, p.predicted);
            EXPECT_EQ(s.actual, p.actual);
            EXPECT_EQ(s.metrics.rankCorrelation,
                      p.metrics.rankCorrelation);
            EXPECT_EQ(s.metrics.top1ErrorPercent,
                      p.metrics.top1ErrorPercent);
            EXPECT_EQ(s.metrics.meanErrorPercent,
                      p.metrics.meanErrorPercent);
            EXPECT_EQ(s.metrics.maxErrorPercent,
                      p.metrics.maxErrorPercent);
        }
    }
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
};

TEST(ModelCacheDeterminism, CacheOnOffIdenticalForAllMethods)
{
    Fixture f;
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < 10; ++m)
        predictive.push_back(m);
    const std::vector<std::size_t> target = {30, 31, 32};

    const experiments::SplitEvaluator plain(f.db, f.chars, fastSuite(1));
    const auto reference = plain.evaluateSplit(
        predictive, target, experiments::extendedMethods(), 3);

    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(threads);
        auto cache = std::make_shared<TrainedModelCache>();
        const experiments::SplitEvaluator cached(
            f.db, f.chars, fastSuite(threads, cache));
        expectIdentical(reference,
                        cached.evaluateSplit(
                            predictive, target,
                            experiments::extendedMethods(), 3));
        // The GA re-scores its elites every generation, so even one
        // split registers hits; repeating the split hits end to end.
        EXPECT_GT(cache->stats().hits, 0u);
        const auto first_pass = cache->stats();
        expectIdentical(reference,
                        cached.evaluateSplit(
                            predictive, target,
                            experiments::extendedMethods(), 3));
        EXPECT_GT(cache->stats().hits, first_pass.hits);
    }
}

TEST(ModelCacheDeterminism, TinyCapacityStillIdentical)
{
    // A cache that is constantly evicting must degrade performance
    // only, never results.
    Fixture f;
    const std::vector<std::size_t> predictive = {0, 1, 2, 3, 4, 5};
    const std::vector<std::size_t> target = {40, 41};

    const experiments::SplitEvaluator plain(f.db, f.chars, fastSuite(1));
    auto tiny = std::make_shared<TrainedModelCache>(16);
    const experiments::SplitEvaluator cached(f.db, f.chars,
                                             fastSuite(2, tiny));

    expectIdentical(
        plain.evaluateSplit(predictive, target,
                            experiments::allMethods(), 1),
        cached.evaluateSplit(predictive, target,
                             experiments::allMethods(), 1));
}

} // namespace
