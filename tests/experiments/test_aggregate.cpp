/**
 * @file
 * Unit tests for the metric aggregation helpers.
 */

#include <gtest/gtest.h>

#include "experiments/aggregate.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using core::PredictionMetrics;

PredictionMetrics
metrics(double rank, double top1, double mean, double max)
{
    PredictionMetrics m;
    m.rankCorrelation = rank;
    m.top1ErrorPercent = top1;
    m.meanErrorPercent = mean;
    m.maxErrorPercent = max;
    return m;
}

TEST(Aggregate, RankWorstIsMinimum)
{
    const auto a = experiments::aggregateRankCorrelation(
        {metrics(0.9, 0, 0, 0), metrics(0.5, 0, 0, 0),
         metrics(0.7, 0, 0, 0)});
    EXPECT_NEAR(a.average, 0.7, 1e-12);
    EXPECT_DOUBLE_EQ(a.worst, 0.5);
}

TEST(Aggregate, Top1WorstIsMaximum)
{
    const auto a = experiments::aggregateTop1Error(
        {metrics(0, 1, 0, 0), metrics(0, 150, 0, 0),
         metrics(0, 5, 0, 0)});
    EXPECT_NEAR(a.average, 52.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.worst, 150.0);
}

TEST(Aggregate, MeanErrorWorstUsesSinglePredictionMax)
{
    const auto a = experiments::aggregateMeanError(
        {metrics(0, 0, 3.0, 40.0), metrics(0, 0, 5.0, 10.0)});
    EXPECT_NEAR(a.average, 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.worst, 40.0);
}

TEST(Aggregate, EmptyInputThrows)
{
    EXPECT_THROW(experiments::aggregateRankCorrelation({}),
                 util::InvalidArgument);
    EXPECT_THROW(experiments::aggregateTop1Error({}),
                 util::InvalidArgument);
    EXPECT_THROW(experiments::aggregateMeanError({}),
                 util::InvalidArgument);
}

TEST(Aggregate, FormatMatchesPaperStyle)
{
    experiments::MetricAggregate a;
    a.average = 0.934;
    a.worst = 0.715;
    EXPECT_EQ(experiments::formatAggregate(a, 2), "0.93 (0.71)");
    EXPECT_EQ(experiments::formatAggregate(a, 1), "0.9 (0.7)");
}

} // namespace
