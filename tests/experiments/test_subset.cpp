/**
 * @file
 * Tests for the limited-predictive-machines protocol (Table 4).
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/subset.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using experiments::Method;

experiments::MethodSuiteConfig
fastSuite()
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 15;
    config.gaKnn.ga.populationSize = 8;
    config.gaKnn.ga.generations = 3;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
    experiments::SplitEvaluator evaluator{db, chars, fastSuite()};
};

experiments::SubsetExperimentConfig
fastSubsetConfig()
{
    experiments::SubsetExperimentConfig config;
    config.subsetSizes = {5, 3};
    config.draws = 2;
    return config;
}

TEST(SubsetExperiment, ProducesOneCellPerSizeAndMethod)
{
    Fixture f;
    const experiments::SubsetExperiment protocol(f.evaluator,
                                                 fastSubsetConfig());
    const auto results = protocol.run({Method::NnT, Method::GaKnn});
    EXPECT_EQ(results.subsetSizes, (std::vector<std::size_t>{5, 3}));
    for (std::size_t size : results.subsetSizes) {
        const auto &row = results.cells.at(size);
        EXPECT_TRUE(row.count(Method::NnT));
        EXPECT_TRUE(row.count(Method::GaKnn));
        EXPECT_FALSE(row.count(Method::MlpT));
    }
}

TEST(SubsetExperiment, MetricsWithinSaneRanges)
{
    Fixture f;
    const experiments::SubsetExperiment protocol(f.evaluator,
                                                 fastSubsetConfig());
    const auto results = protocol.run({Method::NnT});
    for (std::size_t size : results.subsetSizes) {
        const auto &cell = results.cells.at(size).at(Method::NnT);
        EXPECT_GE(cell.rankCorrelation, -1.0);
        EXPECT_LE(cell.rankCorrelation, 1.0);
        EXPECT_GE(cell.top1ErrorPercent, 0.0);
        EXPECT_GE(cell.meanErrorPercent, 0.0);
    }
}

TEST(SubsetExperiment, NnTStaysInformativeWithTenMachines)
{
    Fixture f;
    experiments::SubsetExperimentConfig config;
    config.subsetSizes = {10};
    config.draws = 2;
    const experiments::SubsetExperiment protocol(f.evaluator, config);
    const auto results = protocol.run({Method::NnT});
    EXPECT_GT(results.cells.at(10).at(Method::NnT).rankCorrelation,
              0.6);
}

TEST(SubsetExperiment, DeterministicForFixedSeed)
{
    Fixture f;
    const experiments::SubsetExperiment a(f.evaluator,
                                          fastSubsetConfig());
    const experiments::SubsetExperiment b(f.evaluator,
                                          fastSubsetConfig());
    const auto ra = a.run({Method::NnT});
    const auto rb = b.run({Method::NnT});
    EXPECT_DOUBLE_EQ(ra.cells.at(5).at(Method::NnT).rankCorrelation,
                     rb.cells.at(5).at(Method::NnT).rankCorrelation);
}

TEST(SubsetExperiment, ValidatesConfig)
{
    Fixture f;
    experiments::SubsetExperimentConfig bad;
    bad.subsetSizes = {};
    EXPECT_THROW(experiments::SubsetExperiment(f.evaluator, bad),
                 util::InvalidArgument);

    bad = experiments::SubsetExperimentConfig{};
    bad.draws = 0;
    EXPECT_THROW(experiments::SubsetExperiment(f.evaluator, bad),
                 util::InvalidArgument);

    // Subset larger than the candidate pool is rejected at run time.
    experiments::SubsetExperimentConfig huge;
    huge.subsetSizes = {10000};
    huge.draws = 1;
    const experiments::SubsetExperiment protocol(f.evaluator, huge);
    EXPECT_THROW(protocol.run({Method::NnT}), util::InvalidArgument);
}

} // namespace
