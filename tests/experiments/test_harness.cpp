/**
 * @file
 * Tests for the shared split evaluator.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/harness.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using experiments::Method;

experiments::MethodSuiteConfig
fastSuite()
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 20;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 4;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
};

TEST(MethodNames, MatchThePaper)
{
    EXPECT_EQ(experiments::methodName(Method::NnT), "NN^T");
    EXPECT_EQ(experiments::methodName(Method::MlpT), "MLP^T");
    EXPECT_EQ(experiments::methodName(Method::GaKnn), "GA-10NN");
    EXPECT_EQ(experiments::allMethods().size(), 3u);
}

TEST(MethodNames, ExtensionsAreSuperset)
{
    EXPECT_EQ(experiments::methodName(Method::SplT), "SPL^T");
    EXPECT_EQ(experiments::methodName(Method::MultiNnT), "kNN^T");
    EXPECT_EQ(experiments::methodName(Method::DeepT), "DEEP^T");
    const auto &ext = experiments::extendedMethods();
    EXPECT_EQ(ext.size(), 6u);
    for (Method m : experiments::allMethods())
        EXPECT_TRUE(std::find(ext.begin(), ext.end(), m) != ext.end());
}

TEST(SplitEvaluator, RunsTheExtensionMethods)
{
    Fixture f;
    const experiments::SplitEvaluator evaluator(f.db, f.chars,
                                                fastSuite());
    const std::vector<std::size_t> predictive = {0, 3, 6, 9, 12, 15};
    const std::vector<std::size_t> target = {40, 41, 42, 43};
    const auto results = evaluator.evaluateSplit(
        predictive, target, {Method::SplT, Method::MultiNnT});
    for (Method m : {Method::SplT, Method::MultiNnT}) {
        const auto &tasks = results.at(m);
        EXPECT_EQ(tasks.size(), f.db.benchmarkCount());
        for (const auto &task : tasks)
            for (double v : task.predicted)
                EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(SplitEvaluator, ValidatesCharacteristicShape)
{
    Fixture f;
    EXPECT_THROW(experiments::SplitEvaluator(
                     f.db, linalg::Matrix(3, 12), fastSuite()),
                 util::InvalidArgument);
}

TEST(SplitEvaluator, ProducesOneTaskPerBenchmarkPerMethod)
{
    Fixture f;
    const experiments::SplitEvaluator evaluator(f.db, f.chars,
                                                fastSuite());
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < 20; ++m)
        predictive.push_back(m);
    const std::vector<std::size_t> target = {30, 31, 32, 33};

    const auto results = evaluator.evaluateSplit(
        predictive, target, {Method::NnT, Method::GaKnn});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &[method, tasks] : results) {
        EXPECT_EQ(tasks.size(), f.db.benchmarkCount());
        for (const auto &task : tasks) {
            EXPECT_EQ(task.predicted.size(), target.size());
            EXPECT_EQ(task.actual.size(), target.size());
        }
    }
}

TEST(SplitEvaluator, ActualScoresComeFromTheDatabase)
{
    Fixture f;
    const experiments::SplitEvaluator evaluator(f.db, f.chars,
                                                fastSuite());
    const std::vector<std::size_t> predictive = {0, 1, 2, 3, 4};
    const std::vector<std::size_t> target = {10, 11};
    const auto results =
        evaluator.evaluateSplit(predictive, target, {Method::NnT});
    const auto &tasks = results.at(Method::NnT);
    for (const auto &task : tasks) {
        const std::size_t b = f.db.benchmarkIndex(task.benchmark);
        EXPECT_DOUBLE_EQ(task.actual[0], f.db.score(b, 10));
        EXPECT_DOUBLE_EQ(task.actual[1], f.db.score(b, 11));
    }
}

TEST(SplitEvaluator, DeterministicForFixedTag)
{
    Fixture f;
    const experiments::SplitEvaluator evaluator(f.db, f.chars,
                                                fastSuite());
    const std::vector<std::size_t> predictive = {0, 1, 2, 3, 4, 5};
    const std::vector<std::size_t> target = {20, 21, 22};
    const auto a = evaluator.evaluateSplit(predictive, target,
                                           {Method::MlpT}, 7);
    const auto b = evaluator.evaluateSplit(predictive, target,
                                           {Method::MlpT}, 7);
    EXPECT_EQ(a.at(Method::MlpT)[0].predicted,
              b.at(Method::MlpT)[0].predicted);
}

TEST(SplitEvaluator, SplitTagChangesMlpSeeds)
{
    Fixture f;
    const experiments::SplitEvaluator evaluator(f.db, f.chars,
                                                fastSuite());
    const std::vector<std::size_t> predictive = {0, 1, 2, 3, 4, 5};
    const std::vector<std::size_t> target = {20, 21, 22};
    const auto a = evaluator.evaluateSplit(predictive, target,
                                           {Method::MlpT}, 1);
    const auto b = evaluator.evaluateSplit(predictive, target,
                                           {Method::MlpT}, 2);
    EXPECT_NE(a.at(Method::MlpT)[0].predicted,
              b.at(Method::MlpT)[0].predicted);
}

TEST(SplitEvaluator, RequiresMethodsAndEnoughTargets)
{
    Fixture f;
    const experiments::SplitEvaluator evaluator(f.db, f.chars,
                                                fastSuite());
    EXPECT_THROW(evaluator.evaluateSplit({0, 1}, {2, 3}, {}),
                 util::InvalidArgument);
    EXPECT_THROW(evaluator.evaluateSplit({0, 1}, {2}, {Method::NnT}),
                 util::InvalidArgument);
}

} // namespace
