/**
 * @file
 * Tests for the predictive-machine selection sweep (Figure 8).
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/selection_sweep.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

experiments::MethodSuiteConfig
fastSuite()
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 30;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
    experiments::SplitEvaluator evaluator{db, chars, fastSuite()};
};

experiments::SelectionSweepConfig
fastSweepConfig()
{
    experiments::SelectionSweepConfig config;
    config.maxK = 4;
    config.randomDraws = 2;
    return config;
}

TEST(SelectionSweep, ProducesOnePointPerK)
{
    Fixture f;
    const experiments::SelectionSweep sweep(f.evaluator,
                                            fastSweepConfig());
    const auto results = sweep.run();
    ASSERT_EQ(results.points.size(), 4u);
    for (std::size_t k = 1; k <= 4; ++k)
        EXPECT_EQ(results.points[k - 1].k, k);
}

TEST(SelectionSweep, RSquaredBounded)
{
    Fixture f;
    const experiments::SelectionSweep sweep(f.evaluator,
                                            fastSweepConfig());
    const auto results = sweep.run();
    for (const auto &point : results.points) {
        EXPECT_LE(point.kmedoidsR2, 1.0);
        EXPECT_LE(point.randomR2, 1.0);
        EXPECT_GE(point.kmedoidsR2, 0.0); // squared correlation
        EXPECT_GE(point.randomR2, 0.0);
    }
}

TEST(SelectionSweep, MoreMachinesFitBetterEventually)
{
    // Not necessarily monotone point to point, but the largest k must
    // beat the smallest by a clear margin for the clustered picks.
    Fixture f;
    experiments::SelectionSweepConfig config = fastSweepConfig();
    config.maxK = 5;
    const experiments::SelectionSweep sweep(f.evaluator, config);
    const auto results = sweep.run();
    EXPECT_GT(results.points.back().kmedoidsR2,
              results.points.front().kmedoidsR2 - 0.05);
}

TEST(SelectionSweep, PooledR2MatchesDirectComputation)
{
    Fixture f;
    const experiments::SelectionSweep sweep(f.evaluator,
                                            fastSweepConfig());
    const auto targets = f.db.machineIndicesByYear(2009);
    const std::vector<std::size_t> predictive = {0, 10, 40, 70};
    const double r2a = sweep.pooledR2(predictive, targets, 42);
    const double r2b = sweep.pooledR2(predictive, targets, 42);
    EXPECT_DOUBLE_EQ(r2a, r2b);
    EXPECT_LE(r2a, 1.0);
}

TEST(SelectionSweep, ValidatesConfig)
{
    Fixture f;
    experiments::SelectionSweepConfig bad = fastSweepConfig();
    bad.maxK = 0;
    EXPECT_THROW(experiments::SelectionSweep(f.evaluator, bad),
                 util::InvalidArgument);
    bad = fastSweepConfig();
    bad.randomDraws = 0;
    EXPECT_THROW(experiments::SelectionSweep(f.evaluator, bad),
                 util::InvalidArgument);
}

} // namespace
