/**
 * @file
 * Unit tests for the markdown report renderer.
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/markdown_report.h"
#include "util/error.h"

namespace
{

using namespace dtrank;
using experiments::Method;

experiments::MethodSuiteConfig
fastSuite()
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 10;
    config.gaKnn.ga.populationSize = 8;
    config.gaKnn.ga.generations = 2;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
    experiments::SplitEvaluator evaluator{db, chars, fastSuite()};
};

TEST(MarkdownTable, RendersHeaderSeparatorAndRows)
{
    experiments::MarkdownTable table({"a", "b"});
    table.addRow({"1", "2"});
    const std::string md = table.toString();
    EXPECT_NE(md.find("| a | b |"), std::string::npos);
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
    EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(MarkdownTable, Validation)
{
    EXPECT_THROW(experiments::MarkdownTable({}),
                 util::InvalidArgument);
    experiments::MarkdownTable table({"a"});
    EXPECT_THROW(table.addRow({"1", "2"}), util::InvalidArgument);
}

TEST(MarkdownReport, FamilyCvSummaryContainsAllMethods)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});
    const std::string md = experiments::renderFamilyCvSummary(
        results, {Method::NnT});
    EXPECT_NE(md.find("NN^T"), std::string::npos);
    EXPECT_NE(md.find("Rank correlation"), std::string::npos);
    EXPECT_NE(md.find("Top-1 error"), std::string::npos);
    EXPECT_NE(md.find("Mean error"), std::string::npos);
    // "avg (worst)" cells contain parentheses.
    EXPECT_NE(md.find("("), std::string::npos);
}

TEST(MarkdownReport, PerBenchmarkTablesListEveryBenchmark)
{
    Fixture f;
    const experiments::FamilyCrossValidation cv(f.evaluator);
    const auto results = cv.run({Method::NnT});

    const std::string rank = experiments::renderPerBenchmarkRank(
        results, {Method::NnT});
    const std::string top1 = experiments::renderPerBenchmarkTop1(
        results, {Method::NnT});
    for (const std::string &bench : results.benchmarks) {
        EXPECT_NE(rank.find(bench), std::string::npos) << bench;
        EXPECT_NE(top1.find(bench), std::string::npos) << bench;
    }
    EXPECT_NE(rank.find("**Minimum**"), std::string::npos);
    EXPECT_NE(rank.find("**Average**"), std::string::npos);
    EXPECT_NE(top1.find("**Maximum**"), std::string::npos);
}

TEST(MarkdownReport, FutureSummaryListsEras)
{
    Fixture f;
    const experiments::FuturePrediction protocol(f.evaluator, 2009);
    const auto results = protocol.run({Method::NnT});
    const std::string md =
        experiments::renderFutureSummary(results, Method::NnT);
    EXPECT_NE(md.find("2008"), std::string::npos);
    EXPECT_NE(md.find("2007"), std::string::npos);
    EXPECT_NE(md.find("older"), std::string::npos);
}

TEST(MarkdownReport, SubsetSummaryListsSizes)
{
    Fixture f;
    experiments::SubsetExperimentConfig config;
    config.subsetSizes = {5, 3};
    config.draws = 1;
    const experiments::SubsetExperiment protocol(f.evaluator, config);
    const auto results = protocol.run({Method::NnT});
    const std::string md =
        experiments::renderSubsetSummary(results, Method::NnT);
    EXPECT_NE(md.find("| 5 |"), std::string::npos);
    EXPECT_NE(md.find("| 3 |"), std::string::npos);
}

TEST(MarkdownReport, SelectionSweepListsEveryK)
{
    experiments::SelectionSweepResults results;
    for (std::size_t k = 1; k <= 3; ++k) {
        experiments::SelectionSweepPoint p;
        p.k = k;
        p.kmedoidsR2 = 0.5 + 0.1 * static_cast<double>(k);
        p.randomR2 = 0.4;
        results.points.push_back(p);
    }
    const std::string md =
        experiments::renderSelectionSweep(results);
    EXPECT_NE(md.find("| 1 |"), std::string::npos);
    EXPECT_NE(md.find("| 3 |"), std::string::npos);
    EXPECT_NE(md.find("0.800"), std::string::npos);
}

} // namespace
