/**
 * @file
 * Verifies the central guarantee of the parallel execution layer: a
 * split evaluated with N worker threads produces bit-identical results
 * to the serial run, for every method, because each (method, held-out
 * benchmark) task derives its seed from its indices and writes into its
 * own pre-sized slot.
 */

#include <gtest/gtest.h>

#include "dataset/mica.h"
#include "dataset/synthetic_spec.h"
#include "experiments/family_cv.h"
#include "experiments/harness.h"

namespace
{

using namespace dtrank;
using experiments::Method;

experiments::MethodSuiteConfig
fastSuite(std::size_t threads)
{
    experiments::MethodSuiteConfig config;
    config.mlp.mlp.epochs = 20;
    config.gaKnn.ga.populationSize = 10;
    config.gaKnn.ga.generations = 4;
    config.parallel.threads = threads;
    return config;
}

struct Fixture
{
    dataset::PerfDatabase db = dataset::makePaperDataset();
    linalg::Matrix chars = dataset::MicaGenerator().generateForCatalog();
};

/** Exact, field-by-field comparison of two split evaluations. */
void
expectIdentical(const experiments::SplitResults &serial,
                const experiments::SplitResults &parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[method, serial_tasks] : serial) {
        SCOPED_TRACE(experiments::methodName(method));
        const auto it = parallel.find(method);
        ASSERT_NE(it, parallel.end());
        const auto &parallel_tasks = it->second;
        ASSERT_EQ(serial_tasks.size(), parallel_tasks.size());
        for (std::size_t i = 0; i < serial_tasks.size(); ++i) {
            const experiments::TaskResult &s = serial_tasks[i];
            const experiments::TaskResult &p = parallel_tasks[i];
            EXPECT_EQ(s.benchmark, p.benchmark);
            // Bit-identical, not approximately equal: the task bodies
            // are byte-for-byte the same work in both schedules.
            EXPECT_EQ(s.predicted, p.predicted);
            EXPECT_EQ(s.actual, p.actual);
            EXPECT_EQ(s.metrics.rankCorrelation,
                      p.metrics.rankCorrelation);
            EXPECT_EQ(s.metrics.top1ErrorPercent,
                      p.metrics.top1ErrorPercent);
            EXPECT_EQ(s.metrics.meanErrorPercent,
                      p.metrics.meanErrorPercent);
            EXPECT_EQ(s.metrics.maxErrorPercent,
                      p.metrics.maxErrorPercent);
        }
    }
}

TEST(ParallelDeterminism, EvaluateSplitMatchesSerialForAllMethods)
{
    Fixture f;
    const experiments::SplitEvaluator serial(f.db, f.chars,
                                             fastSuite(1));
    const experiments::SplitEvaluator parallel(f.db, f.chars,
                                               fastSuite(4));
    std::vector<std::size_t> predictive;
    for (std::size_t m = 0; m < 12; ++m)
        predictive.push_back(m);
    const std::vector<std::size_t> target = {30, 31, 32, 33};

    expectIdentical(
        serial.evaluateSplit(predictive, target,
                             experiments::extendedMethods(), 5),
        parallel.evaluateSplit(predictive, target,
                               experiments::extendedMethods(), 5));
}

TEST(ParallelDeterminism, HardwareThreadCountAlsoMatches)
{
    Fixture f;
    const experiments::SplitEvaluator serial(f.db, f.chars,
                                             fastSuite(1));
    // 0 resolves to the hardware concurrency, whatever that is here.
    const experiments::SplitEvaluator parallel(f.db, f.chars,
                                               fastSuite(0));
    const std::vector<std::size_t> predictive = {0, 2, 4, 6, 8, 10};
    const std::vector<std::size_t> target = {40, 41, 42};

    expectIdentical(
        serial.evaluateSplit(predictive, target,
                             {Method::NnT, Method::MlpT}, 9),
        parallel.evaluateSplit(predictive, target,
                               {Method::NnT, Method::MlpT}, 9));
}

TEST(ParallelDeterminism, FamilyCvMatchesSerial)
{
    Fixture f;
    const experiments::SplitEvaluator serial(f.db, f.chars,
                                             fastSuite(1));
    const experiments::SplitEvaluator parallel(f.db, f.chars,
                                               fastSuite(4));
    const std::vector<Method> methods = {Method::NnT, Method::MlpT};

    const auto a = experiments::FamilyCrossValidation(serial).run(methods);
    const auto b =
        experiments::FamilyCrossValidation(parallel).run(methods);
    ASSERT_EQ(a.families, b.families);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (const auto &[method, cells] : a.cells) {
        const auto &other = b.cells.at(method);
        ASSERT_EQ(cells.size(), other.size());
        for (std::size_t i = 0; i < cells.size(); ++i) {
            EXPECT_EQ(cells[i].family, other[i].family);
            EXPECT_EQ(cells[i].task.benchmark, other[i].task.benchmark);
            EXPECT_EQ(cells[i].task.predicted, other[i].task.predicted);
            EXPECT_EQ(cells[i].task.actual, other[i].task.actual);
        }
    }
}

} // namespace
