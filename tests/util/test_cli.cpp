/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "util/cli.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

util::ArgParser
makeParser()
{
    util::ArgParser args("prog");
    args.addFlag("verbose", "chatty output");
    args.addOption("seed", "rng seed", "42");
    args.addOption("rate", "a rate", "0.5");
    return args;
}

bool
parse(util::ArgParser &args, std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApply)
{
    auto args = makeParser();
    ASSERT_TRUE(parse(args, {}));
    EXPECT_FALSE(args.getFlag("verbose"));
    EXPECT_EQ(args.getLong("seed"), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 0.5);
}

TEST(ArgParser, FlagSet)
{
    auto args = makeParser();
    ASSERT_TRUE(parse(args, {"--verbose"}));
    EXPECT_TRUE(args.getFlag("verbose"));
}

TEST(ArgParser, OptionWithSpace)
{
    auto args = makeParser();
    ASSERT_TRUE(parse(args, {"--seed", "7"}));
    EXPECT_EQ(args.getLong("seed"), 7);
}

TEST(ArgParser, OptionWithEquals)
{
    auto args = makeParser();
    ASSERT_TRUE(parse(args, {"--rate=0.25"}));
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 0.25);
}

TEST(ArgParser, PositionalArguments)
{
    auto args = makeParser();
    ASSERT_TRUE(parse(args, {"input.csv", "--seed", "1", "out.csv"}));
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "input.csv");
    EXPECT_EQ(args.positional()[1], "out.csv");
}

TEST(ArgParser, UnknownOptionThrows)
{
    auto args = makeParser();
    EXPECT_THROW(parse(args, {"--bogus"}), util::InvalidArgument);
}

TEST(ArgParser, MissingValueThrows)
{
    auto args = makeParser();
    EXPECT_THROW(parse(args, {"--seed"}), util::InvalidArgument);
}

TEST(ArgParser, FlagWithValueThrows)
{
    auto args = makeParser();
    EXPECT_THROW(parse(args, {"--verbose=1"}), util::InvalidArgument);
}

TEST(ArgParser, HelpReturnsFalse)
{
    auto args = makeParser();
    ::testing::internal::CaptureStdout();
    EXPECT_FALSE(parse(args, {"--help"}));
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("usage: prog"), std::string::npos);
    EXPECT_NE(out.find("--seed"), std::string::npos);
}

TEST(ArgParser, UnknownLookupThrows)
{
    auto args = makeParser();
    ASSERT_TRUE(parse(args, {}));
    EXPECT_THROW(args.get("nope"), util::InvalidArgument);
    EXPECT_THROW(args.getFlag("seed"), util::InvalidArgument);
}

TEST(ArgParser, UsageListsDefaults)
{
    auto args = makeParser();
    const std::string usage = args.usage();
    EXPECT_NE(usage.find("default: 42"), std::string::npos);
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

} // namespace
