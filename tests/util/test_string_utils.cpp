/**
 * @file
 * Unit tests for the string helpers.
 */

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/string_utils.h"

namespace
{

using namespace dtrank;

TEST(Split, BasicFields)
{
    const auto parts = util::split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields)
{
    const auto parts = util::split(",x,,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyStringYieldsOneEmptyField)
{
    const auto parts = util::split("", '|');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Trim, RemovesSurroundingWhitespace)
{
    EXPECT_EQ(util::trim("  hello \t\n"), "hello");
    EXPECT_EQ(util::trim("nochange"), "nochange");
    EXPECT_EQ(util::trim("   "), "");
    EXPECT_EQ(util::trim(""), "");
    EXPECT_EQ(util::trim(" a b "), "a b");
}

TEST(Join, ConcatenatesWithSeparator)
{
    EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(util::join({"only"}, ","), "only");
    EXPECT_EQ(util::join({}, ","), "");
}

TEST(JoinSplit, RoundTrip)
{
    const std::vector<std::string> parts = {"x", "", "yy", "z"};
    EXPECT_EQ(util::split(util::join(parts, "|"), '|'), parts);
}

TEST(ToLower, AsciiOnly)
{
    EXPECT_EQ(util::toLower("MiXeD123!"), "mixed123!");
    EXPECT_EQ(util::toLower(""), "");
}

TEST(StartsEndsWith, Basics)
{
    EXPECT_TRUE(util::startsWith("benchmark", "bench"));
    EXPECT_FALSE(util::startsWith("bench", "benchmark"));
    EXPECT_TRUE(util::startsWith("x", ""));
    EXPECT_TRUE(util::endsWith("score.csv", ".csv"));
    EXPECT_FALSE(util::endsWith("csv", "score.csv"));
    EXPECT_TRUE(util::endsWith("x", ""));
}

TEST(FormatFixed, Decimals)
{
    EXPECT_EQ(util::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(util::formatFixed(2.0, 0), "2");
    EXPECT_EQ(util::formatFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(util::formatFixed(1.005e2, 1), "100.5");
}

TEST(ParseDouble, ValidInputs)
{
    EXPECT_DOUBLE_EQ(util::parseDouble("3.5"), 3.5);
    EXPECT_DOUBLE_EQ(util::parseDouble("  -2e3 "), -2000.0);
    EXPECT_DOUBLE_EQ(util::parseDouble("0"), 0.0);
}

TEST(ParseDouble, RejectsMalformed)
{
    EXPECT_THROW(util::parseDouble(""), util::InvalidArgument);
    EXPECT_THROW(util::parseDouble("abc"), util::InvalidArgument);
    EXPECT_THROW(util::parseDouble("1.5x"), util::InvalidArgument);
    EXPECT_THROW(util::parseDouble("1.5 2"), util::InvalidArgument);
}

TEST(ParseLong, ValidInputs)
{
    EXPECT_EQ(util::parseLong("42"), 42);
    EXPECT_EQ(util::parseLong(" -7 "), -7);
}

TEST(ParseLong, RejectsMalformed)
{
    EXPECT_THROW(util::parseLong(""), util::InvalidArgument);
    EXPECT_THROW(util::parseLong("12.5"), util::InvalidArgument);
    EXPECT_THROW(util::parseLong("x"), util::InvalidArgument);
}

} // namespace
