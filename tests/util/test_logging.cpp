/**
 * @file
 * Unit tests for the logging verbosity gates.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

namespace
{

using namespace dtrank;

class LoggingTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        util::setLogLevel(util::LogLevel::Warn); // restore default
    }

    static std::string
    captureWarn(const std::string &msg)
    {
        ::testing::internal::CaptureStderr();
        util::warn(msg);
        return ::testing::internal::GetCapturedStderr();
    }

    static std::string
    captureInform(const std::string &msg)
    {
        ::testing::internal::CaptureStderr();
        util::inform(msg);
        return ::testing::internal::GetCapturedStderr();
    }

    static std::string
    captureDebug(const std::string &msg)
    {
        ::testing::internal::CaptureStderr();
        util::debug(msg);
        return ::testing::internal::GetCapturedStderr();
    }
};

TEST_F(LoggingTest, DefaultLevelIsWarn)
{
    EXPECT_EQ(util::logLevel(), util::LogLevel::Warn);
}

TEST_F(LoggingTest, WarnPrintsAtDefaultLevel)
{
    const std::string out = captureWarn("something odd");
    EXPECT_NE(out.find("warn: something odd"), std::string::npos);
}

TEST_F(LoggingTest, InfoSuppressedAtDefaultLevel)
{
    EXPECT_TRUE(captureInform("progress").empty());
    EXPECT_TRUE(captureDebug("detail").empty());
}

TEST_F(LoggingTest, InfoPrintsAtInfoLevel)
{
    util::setLogLevel(util::LogLevel::Info);
    EXPECT_NE(captureInform("progress").find("info: progress"),
              std::string::npos);
    EXPECT_TRUE(captureDebug("detail").empty());
}

TEST_F(LoggingTest, DebugPrintsAtDebugLevel)
{
    util::setLogLevel(util::LogLevel::Debug);
    EXPECT_NE(captureDebug("detail").find("debug: detail"),
              std::string::npos);
}

TEST_F(LoggingTest, QuietSuppressesEverything)
{
    util::setLogLevel(util::LogLevel::Quiet);
    EXPECT_TRUE(captureWarn("suppressed").empty());
    EXPECT_TRUE(captureInform("suppressed").empty());
    EXPECT_TRUE(captureDebug("suppressed").empty());
}

} // namespace
