/**
 * @file
 * Unit tests for the CSV reader/writer, including quoting rules and
 * file round trips.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/error.h"

namespace
{

using namespace dtrank;

util::CsvRows
parse(const std::string &text)
{
    std::istringstream in(text);
    return util::readCsv(in);
}

TEST(CsvRead, SimpleRows)
{
    const auto rows = parse("a,b,c\n1,2,3\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvRead, MissingTrailingNewline)
{
    const auto rows = parse("a,b\n1,2");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvRead, EmptyFields)
{
    const auto rows = parse(",x,\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvRead, QuotedFieldWithDelimiter)
{
    const auto rows = parse("\"a,b\",c\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvRead, EscapedQuotes)
{
    const auto rows = parse("\"say \"\"hi\"\"\",x\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvRead, QuotedNewline)
{
    const auto rows = parse("\"line1\nline2\",x\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvRead, CrLfLineEndings)
{
    const auto rows = parse("a,b\r\n1,2\r\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvRead, UnterminatedQuoteThrows)
{
    EXPECT_THROW(parse("\"oops\n"), util::IoError);
}

TEST(CsvRead, BlankLinesIgnored)
{
    const auto rows = parse("a\n\nb\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], "a");
    EXPECT_EQ(rows[1][0], "b");
}

TEST(CsvFormat, QuotesOnlyWhenNeeded)
{
    EXPECT_EQ(util::formatCsvRow({"plain", "1.5"}), "plain,1.5");
    EXPECT_EQ(util::formatCsvRow({"a,b"}), "\"a,b\"");
    EXPECT_EQ(util::formatCsvRow({"q\"q"}), "\"q\"\"q\"");
    EXPECT_EQ(util::formatCsvRow({"nl\nnl"}), "\"nl\nnl\"");
}

TEST(CsvRoundTrip, ArbitraryContent)
{
    const util::CsvRows rows = {
        {"name", "value", "note"},
        {"x,y", "1.25", "say \"hi\""},
        {"", "with\nnewline", "plain"},
    };
    std::ostringstream out;
    util::writeCsv(out, rows);
    std::istringstream in(out.str());
    EXPECT_EQ(util::readCsv(in), rows);
}

TEST(CsvFile, RoundTripAndMissingFile)
{
    const std::string path = ::testing::TempDir() + "dtrank_csv_test.csv";
    const util::CsvRows rows = {{"a", "b"}, {"1", "2"}};
    util::writeCsvFile(path, rows);
    EXPECT_EQ(util::readCsvFile(path), rows);
    std::remove(path.c_str());
    EXPECT_THROW(util::readCsvFile(path), util::IoError);
}

TEST(CsvRead, AlternativeDelimiter)
{
    std::istringstream in("a;b\n1;2\n");
    const auto rows = util::readCsv(in, ';');
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

} // namespace
