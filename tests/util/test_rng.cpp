/**
 * @file
 * Unit and property tests for the deterministic Rng wrapper.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace
{

using namespace dtrank;

TEST(Rng, SameSeedSameStream)
{
    util::Rng a(42);
    util::Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    util::Rng a(1);
    util::Rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        if (a.uniform() != b.uniform())
            any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(Rng, ReseedRestartsStream)
{
    util::Rng a(7);
    const double first = a.uniform();
    a.uniform();
    a.seed(7);
    EXPECT_DOUBLE_EQ(a.uniform(), first);
}

TEST(Rng, UniformStaysInRange)
{
    util::Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.5, 4.0);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 4.0);
    }
}

TEST(Rng, UniformRejectsEmptyRange)
{
    util::Rng rng(1);
    EXPECT_THROW(rng.uniform(1.0, 1.0), util::InvalidArgument);
    EXPECT_THROW(rng.uniform(2.0, 1.0), util::InvalidArgument);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    util::Rng rng(5);
    std::set<int> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 3));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_TRUE(seen.count(0));
    EXPECT_TRUE(seen.count(3));
}

TEST(Rng, IndexWithinBounds)
{
    util::Rng rng(6);
    for (int i = 0; i < 500; ++i)
        EXPECT_LT(rng.index(7), 7u);
    EXPECT_THROW(rng.index(0), util::InvalidArgument);
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    util::Rng rng(8);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian(3.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, GaussianZeroStddevIsDeterministic)
{
    util::Rng rng(9);
    EXPECT_DOUBLE_EQ(rng.gaussian(5.0, 0.0), 5.0);
}

TEST(Rng, GaussianRejectsNegativeStddev)
{
    util::Rng rng(9);
    EXPECT_THROW(rng.gaussian(0.0, -1.0), util::InvalidArgument);
}

TEST(Rng, BernoulliExtremes)
{
    util::Rng rng(10);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
    EXPECT_THROW(rng.bernoulli(-0.1), util::InvalidArgument);
    EXPECT_THROW(rng.bernoulli(1.1), util::InvalidArgument);
}

TEST(Rng, ShuffleIsPermutation)
{
    util::Rng rng(11);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<int> original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    util::Rng rng(12);
    for (int trial = 0; trial < 50; ++trial) {
        const auto sample = rng.sampleWithoutReplacement(20, 8);
        EXPECT_EQ(sample.size(), 8u);
        std::set<std::size_t> uniq(sample.begin(), sample.end());
        EXPECT_EQ(uniq.size(), 8u);
        for (std::size_t s : sample)
            EXPECT_LT(s, 20u);
    }
}

TEST(Rng, SampleWholePopulation)
{
    util::Rng rng(13);
    const auto sample = rng.sampleWithoutReplacement(5, 5);
    std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleRejectsOversizedRequest)
{
    util::Rng rng(14);
    EXPECT_THROW(rng.sampleWithoutReplacement(3, 4),
                 util::InvalidArgument);
}

TEST(Rng, SampleZeroIsEmpty)
{
    util::Rng rng(15);
    EXPECT_TRUE(rng.sampleWithoutReplacement(3, 0).empty());
}

/** Every index should be sampled roughly uniformly often. */
TEST(Rng, SampleWithoutReplacementIsUnbiased)
{
    util::Rng rng(16);
    std::vector<int> counts(10, 0);
    const int trials = 5000;
    for (int t = 0; t < trials; ++t)
        for (std::size_t i : rng.sampleWithoutReplacement(10, 3))
            ++counts[i];
    // Expected count per index: trials * 3 / 10 = 1500.
    for (int c : counts)
        EXPECT_NEAR(c, 1500, 150);
}

TEST(Rng, LogNormalIsPositive)
{
    util::Rng rng(17);
    for (int i = 0; i < 200; ++i)
        EXPECT_GT(rng.logNormal(0.0, 0.5), 0.0);
    EXPECT_THROW(rng.logNormal(0.0, -0.5), util::InvalidArgument);
}

} // namespace
