/**
 * @file
 * Unit tests for the ASCII table printer.
 */

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/table.h"

namespace
{

using namespace dtrank;

TEST(TablePrinter, RejectsEmptyHeader)
{
    EXPECT_THROW(util::TablePrinter({}), util::InvalidArgument);
}

TEST(TablePrinter, RejectsMismatchedRow)
{
    util::TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), util::InvalidArgument);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), util::InvalidArgument);
}

TEST(TablePrinter, CountsDataRowsOnly)
{
    util::TablePrinter t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TablePrinter, RendersHeaderAndRule)
{
    util::TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TablePrinter, FirstColumnLeftAlignedOthersRight)
{
    util::TablePrinter t({"aaaa", "bbbb"});
    t.addRow({"x", "1"});
    const std::string out = t.toString();
    // Find the data line.
    const auto last_nl = out.rfind('\n', out.size() - 2);
    const std::string data =
        out.substr(last_nl + 1, out.size() - last_nl - 2);
    // Left-aligned first cell: starts with 'x' then padding.
    EXPECT_EQ(data.substr(0, 4), "x   ");
    // Right-aligned second cell: ends with '1'.
    EXPECT_EQ(data.back(), '1');
}

TEST(TablePrinter, AlignOverride)
{
    util::TablePrinter t({"aaaa", "bbbb"});
    t.setAlign(1, util::Align::Left);
    t.addRow({"x", "1"});
    const std::string out = t.toString();
    const auto last_nl = out.rfind('\n', out.size() - 2);
    const std::string data =
        out.substr(last_nl + 1, out.size() - last_nl - 2);
    // Second cell is left-aligned now: "1" right after the 2-space gap.
    EXPECT_NE(data.find("  1"), std::string::npos);
}

TEST(TablePrinter, SetAlignOutOfRangeThrows)
{
    util::TablePrinter t({"a"});
    EXPECT_THROW(t.setAlign(1, util::Align::Left),
                 util::InvalidArgument);
}

TEST(TablePrinter, WidthAdaptsToWidestCell)
{
    util::TablePrinter t({"h"});
    t.addRow({"very-long-cell"});
    const std::string out = t.toString();
    // The rule line must be at least as wide as the longest cell.
    const auto first_nl = out.find('\n');
    const auto second_nl = out.find('\n', first_nl + 1);
    const std::string rule =
        out.substr(first_nl + 1, second_nl - first_nl - 1);
    EXPECT_GE(rule.size(), std::string("very-long-cell").size());
}

TEST(TablePrinter, SeparatorRendersRule)
{
    util::TablePrinter t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.toString();
    // Two rules total: one under the header, one mid-table.
    std::size_t rules = 0;
    std::size_t pos = 0;
    while ((pos = out.find("-\n", pos)) != std::string::npos) {
        ++rules;
        pos += 2;
    }
    EXPECT_EQ(rules, 2u);
}

} // namespace
