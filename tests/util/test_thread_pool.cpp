/**
 * @file
 * Tests for the thread pool and the parallel loop helpers.
 */

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/thread_pool.h"

namespace
{

using namespace dtrank;

TEST(ParallelConfig, DefaultIsSerial)
{
    util::ParallelConfig config;
    EXPECT_EQ(config.threads, 1u);
    EXPECT_EQ(config.resolved(), 1u);
}

TEST(ParallelConfig, ZeroResolvesToHardware)
{
    util::ParallelConfig config;
    config.threads = 0;
    EXPECT_GE(config.resolved(), 1u);
}

TEST(ThreadPool, RequiresAtLeastOneWorker)
{
    EXPECT_THROW(util::ThreadPool(0), util::InvalidArgument);
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    util::ThreadPool pool(2);
    EXPECT_EQ(pool.workerCount(), 2u);
    auto doubled = pool.submit([] { return 21 * 2; });
    auto text = pool.submit([] { return std::string("done"); });
    EXPECT_EQ(doubled.get(), 42);
    EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    util::ThreadPool pool(2);
    auto failing = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(failing.get(), std::runtime_error);
    // The pool must survive a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, InsideWorkerIsVisibleFromTasks)
{
    EXPECT_FALSE(util::ThreadPool::insideWorker());
    util::ThreadPool pool(1);
    EXPECT_TRUE(pool.submit([] {
                        return util::ThreadPool::insideWorker();
                    }).get());
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> done{0};
    {
        util::ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&done] { ++done; });
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, PostRunsFireAndForgetTasks)
{
    std::atomic<int> done{0};
    {
        util::ThreadPool pool(2);
        for (int i = 0; i < 16; ++i)
            pool.post([&done] { ++done; });
    }
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, StealingDrainsUnbalancedLoads)
{
    // All the long tasks are dealt round-robin onto the same few home
    // deques; idle workers must steal them. Every task records which
    // worker slot ran it — with stealing at work and enough tasks,
    // more than one slot shows up, and all tasks complete exactly
    // once regardless.
    for (std::size_t workers : {1u, 2u, 4u, 8u, 16u}) {
        const std::size_t count = 64;
        std::vector<std::atomic<int>> runs(count);
        std::vector<std::atomic<std::size_t>> slot(count);
        {
            util::ThreadPool pool(workers);
            for (std::size_t i = 0; i < count; ++i)
                pool.post([&runs, &slot, i] {
                    // Unbalanced: every 4th task spins much longer.
                    volatile double sink = 0.0;
                    const int spins = i % 4 == 0 ? 20000 : 50;
                    for (int s = 0; s < spins; ++s)
                        sink = sink + 1.0;
                    slot[i] = util::ThreadPool::workerSlot();
                    ++runs[i];
                });
        }
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(runs[i].load(), 1)
                << "workers=" << workers << " index " << i;
            EXPECT_GE(slot[i].load(), 1u);
            EXPECT_LE(slot[i].load(), workers);
        }
    }
}

TEST(TaskGroup, RunWaitCompletesAllTasks)
{
    util::ThreadPool pool(4);
    util::TaskGroup group(pool);
    std::atomic<int> done{0};
    for (int i = 0; i < 40; ++i)
        group.run([&done] { ++done; });
    group.wait();
    EXPECT_EQ(done.load(), 40);
    // The group is reusable after wait().
    group.run([&done] { ++done; });
    group.wait();
    EXPECT_EQ(done.load(), 41);
}

TEST(TaskGroup, WaitRethrowsATaskError)
{
    util::ThreadPool pool(2);
    util::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i)
        group.run([i] {
            if (i == 5)
                throw std::runtime_error("group task failed");
        });
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The error was consumed; the group works again.
    group.run([] {});
    group.wait();
}

TEST(TaskGroup, NestedGroupsRunInlineInsideWorkers)
{
    util::ThreadPool pool(2);
    util::TaskGroup outer(pool);
    std::atomic<int> inner_runs{0};
    for (int i = 0; i < 4; ++i)
        outer.run([&pool, &inner_runs] {
            // Inside a worker a nested group must execute inline on
            // this thread instead of re-queueing (which could starve
            // a fully busy pool).
            util::TaskGroup inner(pool);
            for (int j = 0; j < 3; ++j)
                inner.run([&inner_runs] {
                    EXPECT_TRUE(util::ThreadPool::insideWorker());
                    ++inner_runs;
                });
            inner.wait();
        });
    outer.wait();
    EXPECT_EQ(inner_runs.load(), 12);
}

TEST(ParallelFor, ZeroTasksIsANoOp)
{
    bool called = false;
    util::parallelFor(4, 0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, VisitsEveryIndexOnceWithMoreTasksThanWorkers)
{
    const std::size_t count = 100;
    std::vector<std::atomic<int>> visits(count);
    util::parallelFor(4, count,
                      [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialFallbackRunsInOrder)
{
    std::vector<std::size_t> order;
    util::parallelFor(1, 5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsTheLowestIndexedException)
{
    try {
        util::parallelFor(4, 16, [](std::size_t i) {
            if (i == 3 || i == 11)
                throw std::runtime_error("iteration " +
                                         std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "iteration 3");
    }
}

TEST(ParallelFor, NestedRegionsRunInline)
{
    std::atomic<int> inner_runs{0};
    util::parallelFor(4, 4, [&](std::size_t) {
        // Inside a worker a nested region must degrade to the serial
        // loop instead of spawning a second pool.
        util::parallelFor(4, 3, [&](std::size_t) {
            EXPECT_TRUE(util::ThreadPool::insideWorker());
            ++inner_runs;
        });
    });
    EXPECT_EQ(inner_runs.load(), 12);
}

TEST(ParallelMap, FillsSlotsByIndex)
{
    const auto squares = util::parallelMap(
        4, 50, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 50u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, MatchesSerialResult)
{
    const auto serial = util::parallelMap(
        1, 33, [](std::size_t i) { return 3.5 * static_cast<double>(i); });
    const auto parallel = util::parallelMap(
        4, 33, [](std::size_t i) { return 3.5 * static_cast<double>(i); });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelMap, StolenExecutionIsBitIdenticalToSerial)
{
    // Unbalanced per-iteration cost forces heavy stealing; the result
    // vector must still match the serial run bit for bit at every
    // thread count, because stealing only moves who executes an
    // iteration, never what it computes or where it writes.
    const std::size_t count = 96;
    const auto work = [](std::size_t i) {
        double acc = 0.0;
        const std::size_t terms = i % 5 == 0 ? 4000 : 37;
        for (std::size_t t = 1; t <= terms; ++t)
            acc += 1.0 / static_cast<double>(t * t + i);
        return acc;
    };
    const auto serial = util::parallelMap(1, count, work);
    for (std::size_t threads : {2u, 4u, 8u, 16u}) {
        const auto parallel = util::parallelMap(threads, count, work);
        EXPECT_EQ(serial, parallel) << "threads=" << threads;
    }
}

} // namespace
