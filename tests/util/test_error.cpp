/**
 * @file
 * Unit tests for the error-handling primitives.
 */

#include <gtest/gtest.h>

#include "util/error.h"

namespace
{

using namespace dtrank;

TEST(Error, RequirePassesOnTrueCondition)
{
    EXPECT_NO_THROW(util::require(true, "should not throw"));
}

TEST(Error, RequireThrowsInvalidArgument)
{
    EXPECT_THROW(util::require(false, "boom"), util::InvalidArgument);
}

TEST(Error, RequireMessagePropagates)
{
    try {
        util::require(false, "specific message");
        FAIL() << "expected InvalidArgument";
    } catch (const util::InvalidArgument &e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
}

TEST(Error, HierarchyIsCatchableAsBase)
{
    EXPECT_THROW(throw util::InvalidArgument("x"), util::Error);
    EXPECT_THROW(throw util::IoError("x"), util::Error);
    EXPECT_THROW(throw util::NumericalError("x"), util::Error);
    EXPECT_THROW(throw util::Error("x"), std::runtime_error);
}

TEST(Error, DistinctTypesAreDistinguishable)
{
    bool caught_io = false;
    try {
        throw util::IoError("file gone");
    } catch (const util::InvalidArgument &) {
        FAIL() << "IoError must not be an InvalidArgument";
    } catch (const util::IoError &) {
        caught_io = true;
    }
    EXPECT_TRUE(caught_io);
}

TEST(ErrorDeathTest, AssertAbortsOnFailure)
{
    EXPECT_DEATH({ DTRANK_ASSERT(1 == 2); }, "assertion");
}

TEST(ErrorDeathTest, AssertMsgIncludesMessage)
{
    EXPECT_DEATH({ DTRANK_ASSERT_MSG(false, "my-detail"); }, "my-detail");
}

TEST(Error, AssertPassesSilently)
{
    DTRANK_ASSERT(1 + 1 == 2);
    DTRANK_ASSERT_MSG(true, "never shown");
    SUCCEED();
}

} // namespace
